#!/usr/bin/env python3
"""Assemble EXPERIMENTS.md from the narrative template and the measured
tables in bench_results/ (run after the experiment harnesses)."""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
TEMPLATE = ROOT / "scripts" / "experiments_template.md"
RESULTS = ROOT / "bench_results"
OUT = ROOT / "EXPERIMENTS.md"


def main() -> int:
    text = TEMPLATE.read_text()

    def sub(m: re.Match) -> str:
        name = m.group(1)
        path = RESULTS / f"{name}.txt"
        if not path.exists():
            print(f"warning: missing {path}", file=sys.stderr)
            return f"(missing: run the `{name}` harness)"
        return "```text\n" + path.read_text().rstrip() + "\n```"

    text = re.sub(r"\{\{RESULT:([a-z0-9_]+)\}\}", sub, text)
    OUT.write_text(text)
    print(f"wrote {OUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
