#!/usr/bin/env bash
# Pre-merge gate for this repository (see ROADMAP.md). Runs the tier-1
# release build, then the full `cargo xtask ci` chain:
#   fmt --check -> clippy (-D warnings, unwrap/expect stay advisory)
#   -> xtask lint (panic-path / lock-discipline / error-hygiene)
#   -> cargo test --workspace
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo xtask ci
