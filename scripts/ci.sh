#!/usr/bin/env bash
# Pre-merge gate for this repository (see ROADMAP.md). Runs the tier-1
# release build, then the full `cargo xtask ci` chain:
#   fmt --check -> clippy (-D warnings, unwrap/expect stay advisory)
#   -> xtask lint (panic-path / lock-discipline / error-hygiene)
#   -> xtask analyze (lock-order graph + instrumentation coverage)
#   -> cargo test --workspace -> fault enumeration -> chaos soak
#   -> obskit snapshot + lockcheck witness validation
#   -> bench-gate perf baselines (checked-in twins, fast live subset,
#      streaming-series invariants)
# Machine-readable lint/analyze/bench-gate reports are archived under
# target/ci-artifacts/ regardless of pass/fail, so a red run still
# leaves its findings behind for tooling.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release

mkdir -p target/ci-artifacts
cargo xtask lint --json > target/ci-artifacts/lint.json || true
cargo xtask analyze --json > target/ci-artifacts/analyze.json || true
cargo xtask bench-gate --json > target/ci-artifacts/bench-gate.json || true

cargo xtask ci
