#!/usr/bin/env bash
# Pre-merge gate for this repository (see ROADMAP.md). Runs the tier-1
# release build, then the full `cargo xtask ci` chain:
#   fmt --check -> clippy (-D warnings, unwrap/expect stay advisory)
#   -> xtask lint (panic-path / lock-discipline / error-hygiene)
#   -> xtask analyze (lock-order graph + instrumentation coverage)
#   -> cargo test --workspace -> fault enumeration -> chaos soak
#   -> obskit snapshot + lockcheck witness validation
# Machine-readable lint/analyze reports are archived under
# target/ci-artifacts/ regardless of pass/fail, so a red run still
# leaves its findings behind for tooling.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release

mkdir -p target/ci-artifacts
cargo xtask lint --json > target/ci-artifacts/lint.json || true
cargo xtask analyze --json > target/ci-artifacts/analyze.json || true

cargo xtask ci
