//! Offline shim exposing the subset of the `proptest` API this
//! workspace's property tests use: the [`proptest!`] macro, [`Strategy`]
//! with `prop_map`, `any::<T>()`, `Just`, ranges and tuples as
//! strategies, regex-literal string strategies, `prop::collection::vec`,
//! `prop::option::of`, `prop_oneof!` and the `prop_assert*` macros.
//!
//! Unlike the real crate there is NO shrinking and no failure
//! persistence: inputs are drawn from a deterministic per-case RNG and
//! assertion failures surface as plain panics with the generated values
//! printed by the assert message. See `compat/README.md` for why
//! external dependencies are stubbed.

pub mod test_runner {
    /// Per-test configuration (mirrors `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic RNG driving value generation (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for the `case`-th iteration of a property; deterministic
        /// so failures reproduce run-to-run.
        pub fn for_case(case: u32) -> TestRng {
            TestRng {
                state: 0x50D5_ECCA_11D0_5EED ^ ((case as u64) << 1),
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object-safe core is [`Strategy::new_value`]; combinators require
    /// `Sized`. No shrinking in this shim.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Type-erase for heterogeneous composition (`prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            (**self).new_value(rng)
        }
    }

    /// Strategy yielding a clone of one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn new_value(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs >= 1 option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// `&str` regex-literal strategies over the subset the tests use:
    /// a sequence of literal chars or `[...]` classes (with `a-z`
    /// ranges), each optionally quantified by `{n}` or `{m,n}`.
    impl Strategy for &str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            let atoms = parse_pattern(self);
            let mut out = String::new();
            for (chars, lo, hi) in &atoms {
                let n = *lo + rng.below((*hi - *lo + 1) as u64) as usize;
                for _ in 0..n {
                    out.push(chars[rng.below(chars.len() as u64) as usize]);
                }
            }
            out
        }
    }

    /// Parsed atom: (candidate chars, min repeats, max repeats).
    type Atom = (Vec<char>, usize, usize);

    fn parse_pattern(pat: &str) -> Vec<Atom> {
        let chars: Vec<char> = pat.chars().collect();
        let mut i = 0;
        let mut atoms: Vec<Atom> = Vec::new();
        while i < chars.len() {
            let set = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated [ in pattern {pat:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    // `a-z` range (a lone `-` at either edge is literal).
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad class range in {pat:?}");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                assert!(
                    !"(){}|*+?.\\^$".contains(c),
                    "unsupported regex syntax {c:?} in {pat:?} (shim supports \
                     literals and [...] classes with {{m,n}} quantifiers only)"
                );
                i += 1;
                vec![c]
            };
            // Optional {n} / {m,n} quantifier.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated {{ in pattern {pat:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("bad {{m,n}} in {pat:?}")),
                        n.trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("bad {{m,n}} in {pat:?}")),
                    ),
                    None => {
                        let n = body
                            .trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("bad {{n}} in {pat:?}"));
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(lo <= hi, "bad quantifier in {pat:?}");
            atoms.push((set, lo, hi));
        }
        atoms
    }

    /// `any::<T>()` marker strategy.
    pub struct Any<T>(PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Any<T> {
            Any(PhantomData)
        }
    }

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Weight edge values so "any" hits extremes the way
                    // the real crate's biased generators do.
                    match rng.below(16) {
                        0 => 0,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            match rng.below(16) {
                0 => 0.0,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => f64::NAN,
                _ => f64::from_bits(rng.next_u64()),
            }
        }
    }
}

pub mod arbitrary {
    use super::strategy::{Any, Arbitrary};

    /// Strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::default()
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `sizes`.
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        assert!(sizes.start < sizes.end, "empty size range");
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.sizes.end - self.sizes.start) as u64;
            let len = self.sizes.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Option`s: `None` half the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `prop::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(2) == 0 {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies; each body runs `config.cases` times with fresh inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        );
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                $(let $arg = $crate::strategy::Strategy::new_value(&$strat, &mut __rng);)+
                $body
            }
        }
    )*};
}

/// Asserts a property holds; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two expressions are equal; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts two expressions differ; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies sharing a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_regex_subset_generates_within_class() {
        let mut rng = crate::test_runner::TestRng::for_case(0);
        for _ in 0..200 {
            let s = Strategy::new_value(&"[ab%_]{0,6}", &mut rng);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| "ab%_".contains(c)));
            let t = Strategy::new_value(&"[a-c]{2}x{3}", &mut rng);
            assert_eq!(t.len(), 5);
            assert!(t.ends_with("xxx"));
        }
    }

    #[test]
    fn ranges_tuples_and_oneof_compose() {
        let mut rng = crate::test_runner::TestRng::for_case(1);
        let strat = prop_oneof![
            ((0u64..4), prop::option::of(0u64..2)).prop_map(|(a, b)| (a, b)),
            Just((9u64, None)),
        ];
        for _ in 0..200 {
            let (a, b) = strat.new_value(&mut rng);
            assert!(a < 4 || (a == 9 && b.is_none()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_bounds(xs in prop::collection::vec(0i64..10, 1..8)) {
            prop_assert!(!xs.is_empty() && xs.len() < 8);
            prop_assert!(xs.iter().all(|&x| (0..10).contains(&x)));
        }

        #[test]
        fn multiple_args_draw_independently(a in 0u32..5, b in 5u32..10) {
            prop_assert_ne!(a, b);
        }
    }
}
