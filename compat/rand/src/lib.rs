//! Offline shim exposing the subset of the `rand` crate this workspace
//! uses: [`RngCore`], [`Rng`] (`gen_range`/`gen_bool`/`fill_bytes`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`rngs::mock::StepRng`].
//!
//! The generators are deterministic per seed but do NOT reproduce the
//! real crate's streams — workload data generated here differs in
//! content (not in shape) from a build against crates.io `rand`.
//! See `compat/README.md` for why external dependencies are stubbed.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types uniformly samplable from an interval (mirrors
/// `rand::distributions::uniform::SampleUniform` in role: it lets
/// `SampleRange` be a single blanket impl, which is what makes integer
/// literal inference behave like the real crate).
pub trait SampleUniform: Sized {
    /// Draw uniformly from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                let span = (hi as i128 - lo as i128 + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "cannot sample empty range");
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                assert!(lo < hi || (inclusive && lo <= hi), "cannot sample empty range");
                let denom = if inclusive { (1u64 << 53) - 1 } else { 1u64 << 53 };
                let unit = (rng.next_u64() >> 11) as $t / denom as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Types that can describe a sampling interval for [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the interval.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_in(rng, lo, hi, true)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic general-purpose generator (xoshiro256** seeded via
    /// SplitMix64 — NOT the crates.io `StdRng` stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Mock generators for tests.
    pub mod mock {
        use super::super::RngCore;

        /// Arithmetic-progression generator (mirrors
        /// `rand::rngs::mock::StepRng`): yields `initial`,
        /// `initial + increment`, ...
        #[derive(Debug, Clone)]
        pub struct StepRng {
            v: u64,
            step: u64,
        }

        impl StepRng {
            /// New generator starting at `initial`, stepping by `increment`.
            pub fn new(initial: u64, increment: u64) -> StepRng {
                StepRng {
                    v: initial,
                    step: increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }

            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.step);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let w = rng.gen_range(3u32..=9);
            assert!((3..=9).contains(&w));
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let u = rng.gen_range(0usize..4);
            assert!(u < 4);
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn step_rng_steps() {
        let mut r = StepRng::new(10, 3);
        assert_eq!(r.next_u64(), 10);
        assert_eq!(r.next_u64(), 13);
        let mut buf = [0u8; 10];
        r.fill_bytes(&mut buf);
        assert_eq!(&buf[..8], &16u64.to_le_bytes());
        assert_eq!(&buf[8..], &19u64.to_le_bytes()[..2]);
    }
}
