//! Offline shim exposing the subset of the `parking_lot` API this
//! workspace uses, implemented over `std::sync`.
//!
//! The build environment has no crates.io access, so external
//! dependencies are replaced by API-compatible local stubs (see
//! `compat/README.md`). Semantic differences from the real crate:
//!
//! - Poisoning is transparently swallowed (`parking_lot` has no
//!   poisoning; we recover the inner guard on `PoisonError`).
//! - No fairness/eventual-fairness guarantees beyond what `std` gives.
//!
//! Only the types the workspace imports are provided: [`Mutex`],
//! [`RwLock`], [`Condvar`] and their guards.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Duration;

/// Mutual exclusion primitive (shim over [`std::sync::Mutex`]).
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; unlocks on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait_for` can temporarily take the std guard
    // (std's wait API consumes and returns it). Outside that window the
    // slot is always `Some`.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match self.inner.as_ref() {
            Some(g) => g,
            // Invariant: `inner` is only `None` inside `Condvar::wait_for`,
            // which holds the guard exclusively for the whole window.
            None => unreachable!("MutexGuard used while parked in Condvar"),
        }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match self.inner.as_mut() {
            Some(g) => g,
            None => unreachable!("MutexGuard used while parked in Condvar"),
        }
    }
}

/// Reader-writer lock (shim over [`std::sync::RwLock`]).
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner: guard }
    }

    /// Acquires an exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner: guard }
    }

    /// Attempts to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire an exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable (shim over [`std::sync::Condvar`]).
///
/// Unlike `std`, waits take `&mut MutexGuard` (parking_lot style) rather
/// than consuming the guard.
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified. Spurious wakeups are possible.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = match guard.inner.take() {
            Some(g) => g,
            None => unreachable!("re-entrant Condvar wait on one guard"),
        };
        let back = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(back);
    }

    /// Blocks until notified or `timeout` elapses. Spurious wakeups are
    /// possible; callers must re-check their predicate.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = match guard.inner.take() {
            Some(g) => g,
            None => unreachable!("re-entrant Condvar wait on one guard"),
        };
        let (back, res) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok(pair) => pair,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(back);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_coexist() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let res = cv.wait_for(&mut g, Duration::from_millis(30));
        assert!(res.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(25));
        // Guard is usable again after the wait.
        assert!(!*g);
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                cv.wait_for(&mut done, Duration::from_millis(100));
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().expect("waiter thread panicked");
    }
}
