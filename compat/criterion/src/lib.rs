//! Offline shim exposing the subset of the `criterion` API the bench
//! harnesses use: [`Criterion`], [`BenchmarkGroup`], [`Bencher`] with
//! `iter`/`iter_custom`, [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros (both positional and `name =`/`config =`/
//! `targets =` forms).
//!
//! Statistics are deliberately simple — median over fixed-size samples,
//! no outlier analysis, plain-text output only — but timings are real,
//! so relative comparisons between benchmarks remain meaningful.
//! See `compat/README.md` for why external dependencies are stubbed.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be > 0");
        self.sample_size = n;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            id,
            None,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A named set of benchmarks sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput unit.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Per-group sample-size override.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be > 0");
        self.criterion.sample_size = n;
        self
    }

    /// Per-group measurement-time override.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(
            &full,
            self.throughput,
            self.criterion.sample_size,
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            &mut f,
        );
        self
    }

    /// Finish the group (no-op beyond matching the real API).
    pub fn finish(self) {}
}

/// Hands the measured routine to the driver.
pub struct Bencher {
    /// Iterations the routine should run when using `iter_custom`.
    iters: u64,
    /// Measured wall time for the sample.
    elapsed: Duration,
    mode_custom: bool,
}

impl Bencher {
    /// Time `routine`, called `self.iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Delegate timing to the routine: it receives an iteration count
    /// and returns the elapsed time for exactly that many iterations.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        self.mode_custom = true;
        self.elapsed = routine(self.iters);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    f: &mut F,
) {
    // Warm-up: run single iterations until the warm-up budget is spent,
    // and use the observed rate to pick a per-sample iteration count
    // that roughly fits the measurement budget.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < warm_up || warm_iters == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
            mode_custom: false,
        };
        f(&mut b);
        warm_iters += 1;
        if warm_iters >= 1000 {
            break;
        }
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
    let budget_per_sample = measurement.as_secs_f64() / sample_size as f64;
    let iters = ((budget_per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
            mode_custom: false,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    print!(
        "{id:<50} time: [{} {} {}]",
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi)
    );
    match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            println!("  thrpt: {:.0} elem/s", n as f64 / median);
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            println!("  thrpt: {:.1} MiB/s", n as f64 / median / (1 << 20) as f64);
        }
        _ => println!(),
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.2} s", secs)
    }
}

/// Bundle benchmark functions into a named group runner (both the
/// positional and the `name = ...; config = ...; targets = ...` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given groups. `--test` (as passed by
/// `cargo test` to `harness = false` bench targets) skips measurement.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_without_panicking() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut count = 0u64;
        c.bench_function("smoke/add", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn iter_custom_uses_reported_duration() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(1));
        group.bench_function("custom", |b| {
            b.iter_custom(|iters| Duration::from_nanos(10 * iters))
        });
        group.finish();
    }
}
