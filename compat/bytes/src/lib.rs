//! Offline shim exposing the subset of the `bytes` crate this workspace
//! uses: the [`Buf`] and [`BufMut`] traits, implemented for `&[u8]` and
//! `Vec<u8>` respectively. All multi-byte accessors are big-endian,
//! matching the real crate's `get_u32`/`put_u32` family.
//!
//! See `compat/README.md` for why external dependencies are stubbed.

/// Read cursor over a contiguous byte source. Matches the `bytes::Buf`
/// methods the workspace calls; numeric reads are big-endian and panic
/// when fewer than the required bytes remain (as in the real crate —
/// callers bounds-check with [`Buf::remaining`] first).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy `dst.len()` bytes out, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "buffer underflow: {} < {}",
            self.remaining(),
            dst.len()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Read a big-endian `i32`.
    fn get_i32(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_be_bytes(b)
    }

    /// Read a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_be_bytes(b)
    }

    /// Read a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(
            cnt <= self.len(),
            "advance past end: {} > {}",
            cnt,
            self.len()
        );
        *self = &self[cnt..];
    }
}

/// Write cursor appending to a growable byte sink. Matches the
/// `bytes::BufMut` methods the workspace calls; numeric writes are
/// big-endian.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_round_trip_is_big_endian() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u16(0x0102);
        out.put_u32(0x0304_0506);
        out.put_u64(0x0708_090a_0b0c_0d0e);
        out.put_i32(-5);
        out.put_i64(-6);
        out.put_f64(1.5);
        out.put_slice(b"xyz");

        // Big-endian on the wire.
        assert_eq!(&out[1..3], &[0x01, 0x02]);

        let mut buf: &[u8] = &out;
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u16(), 0x0102);
        assert_eq!(buf.get_u32(), 0x0304_0506);
        assert_eq!(buf.get_u64(), 0x0708_090a_0b0c_0d0e);
        assert_eq!(buf.get_i32(), -5);
        assert_eq!(buf.get_i64(), -6);
        assert_eq!(buf.get_f64(), 1.5);
        assert_eq!(buf.remaining(), 3);
        let mut rest = [0u8; 3];
        buf.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xyz");
        assert!(!buf.has_remaining());
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut buf: &[u8] = &[1, 2];
        let _ = buf.get_u32();
    }
}
