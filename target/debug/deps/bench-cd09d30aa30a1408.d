/root/repo/target/debug/deps/bench-cd09d30aa30a1408.d: crates/bench/src/lib.rs crates/bench/src/measure.rs

/root/repo/target/debug/deps/bench-cd09d30aa30a1408: crates/bench/src/lib.rs crates/bench/src/measure.rs

crates/bench/src/lib.rs:
crates/bench/src/measure.rs:
