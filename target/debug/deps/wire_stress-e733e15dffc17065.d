/root/repo/target/debug/deps/wire_stress-e733e15dffc17065.d: crates/wire/tests/wire_stress.rs Cargo.toml

/root/repo/target/debug/deps/libwire_stress-e733e15dffc17065.rmeta: crates/wire/tests/wire_stress.rs Cargo.toml

crates/wire/tests/wire_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
