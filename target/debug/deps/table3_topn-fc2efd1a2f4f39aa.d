/root/repo/target/debug/deps/table3_topn-fc2efd1a2f4f39aa.d: crates/bench/src/bin/table3_topn.rs

/root/repo/target/debug/deps/table3_topn-fc2efd1a2f4f39aa: crates/bench/src/bin/table3_topn.rs

crates/bench/src/bin/table3_topn.rs:
