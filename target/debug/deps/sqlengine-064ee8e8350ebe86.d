/root/repo/target/debug/deps/sqlengine-064ee8e8350ebe86.d: crates/sqlengine/src/lib.rs crates/sqlengine/src/catalog.rs crates/sqlengine/src/engine.rs crates/sqlengine/src/error.rs crates/sqlengine/src/exec/mod.rs crates/sqlengine/src/exec/binding.rs crates/sqlengine/src/exec/eval.rs crates/sqlengine/src/exec/select.rs crates/sqlengine/src/schema.rs crates/sqlengine/src/session.rs crates/sqlengine/src/sql/mod.rs crates/sqlengine/src/sql/ast.rs crates/sqlengine/src/sql/lexer.rs crates/sqlengine/src/sql/parser.rs crates/sqlengine/src/storage/mod.rs crates/sqlengine/src/storage/buffer.rs crates/sqlengine/src/storage/disk.rs crates/sqlengine/src/storage/heap.rs crates/sqlengine/src/storage/page.rs crates/sqlengine/src/txn/mod.rs crates/sqlengine/src/txn/locks.rs crates/sqlengine/src/types.rs crates/sqlengine/src/wal/mod.rs crates/sqlengine/src/wal/log.rs crates/sqlengine/src/wal/recovery.rs Cargo.toml

/root/repo/target/debug/deps/libsqlengine-064ee8e8350ebe86.rmeta: crates/sqlengine/src/lib.rs crates/sqlengine/src/catalog.rs crates/sqlengine/src/engine.rs crates/sqlengine/src/error.rs crates/sqlengine/src/exec/mod.rs crates/sqlengine/src/exec/binding.rs crates/sqlengine/src/exec/eval.rs crates/sqlengine/src/exec/select.rs crates/sqlengine/src/schema.rs crates/sqlengine/src/session.rs crates/sqlengine/src/sql/mod.rs crates/sqlengine/src/sql/ast.rs crates/sqlengine/src/sql/lexer.rs crates/sqlengine/src/sql/parser.rs crates/sqlengine/src/storage/mod.rs crates/sqlengine/src/storage/buffer.rs crates/sqlengine/src/storage/disk.rs crates/sqlengine/src/storage/heap.rs crates/sqlengine/src/storage/page.rs crates/sqlengine/src/txn/mod.rs crates/sqlengine/src/txn/locks.rs crates/sqlengine/src/types.rs crates/sqlengine/src/wal/mod.rs crates/sqlengine/src/wal/log.rs crates/sqlengine/src/wal/recovery.rs Cargo.toml

crates/sqlengine/src/lib.rs:
crates/sqlengine/src/catalog.rs:
crates/sqlengine/src/engine.rs:
crates/sqlengine/src/error.rs:
crates/sqlengine/src/exec/mod.rs:
crates/sqlengine/src/exec/binding.rs:
crates/sqlengine/src/exec/eval.rs:
crates/sqlengine/src/exec/select.rs:
crates/sqlengine/src/schema.rs:
crates/sqlengine/src/session.rs:
crates/sqlengine/src/sql/mod.rs:
crates/sqlengine/src/sql/ast.rs:
crates/sqlengine/src/sql/lexer.rs:
crates/sqlengine/src/sql/parser.rs:
crates/sqlengine/src/storage/mod.rs:
crates/sqlengine/src/storage/buffer.rs:
crates/sqlengine/src/storage/disk.rs:
crates/sqlengine/src/storage/heap.rs:
crates/sqlengine/src/storage/page.rs:
crates/sqlengine/src/txn/mod.rs:
crates/sqlengine/src/txn/locks.rs:
crates/sqlengine/src/types.rs:
crates/sqlengine/src/wal/mod.rs:
crates/sqlengine/src/wal/log.rs:
crates/sqlengine/src/wal/recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
