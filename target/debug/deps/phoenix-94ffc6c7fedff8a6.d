/root/repo/target/debug/deps/phoenix-94ffc6c7fedff8a6.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/intercept.rs crates/core/src/persist.rs crates/core/src/session.rs

/root/repo/target/debug/deps/phoenix-94ffc6c7fedff8a6: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/intercept.rs crates/core/src/persist.rs crates/core/src/session.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/intercept.rs:
crates/core/src/persist.rs:
crates/core/src/session.rs:
