/root/repo/target/debug/deps/odbcsim-7210800a8a035330.d: crates/odbcsim/src/lib.rs

/root/repo/target/debug/deps/libodbcsim-7210800a8a035330.rlib: crates/odbcsim/src/lib.rs

/root/repo/target/debug/deps/libodbcsim-7210800a8a035330.rmeta: crates/odbcsim/src/lib.rs

crates/odbcsim/src/lib.rs:
