/root/repo/target/debug/deps/integration_tests-ca79f9613862d483.d: crates/integration/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_tests-ca79f9613862d483.rmeta: crates/integration/src/lib.rs Cargo.toml

crates/integration/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
