/root/repo/target/debug/deps/fig4_recovery_server-d716777f6f5e6a1f.d: crates/bench/src/bin/fig4_recovery_server.rs

/root/repo/target/debug/deps/fig4_recovery_server-d716777f6f5e6a1f: crates/bench/src/bin/fig4_recovery_server.rs

crates/bench/src/bin/fig4_recovery_server.rs:
