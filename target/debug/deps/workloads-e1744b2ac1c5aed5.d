/root/repo/target/debug/deps/workloads-e1744b2ac1c5aed5.d: crates/workloads/src/lib.rs crates/workloads/src/client.rs crates/workloads/src/tpcc/mod.rs crates/workloads/src/tpcc/driver.rs crates/workloads/src/tpcc/gen.rs crates/workloads/src/tpcc/txns.rs crates/workloads/src/tpch/mod.rs crates/workloads/src/tpch/gen.rs crates/workloads/src/tpch/queries.rs crates/workloads/src/tpch/refresh.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads-e1744b2ac1c5aed5.rmeta: crates/workloads/src/lib.rs crates/workloads/src/client.rs crates/workloads/src/tpcc/mod.rs crates/workloads/src/tpcc/driver.rs crates/workloads/src/tpcc/gen.rs crates/workloads/src/tpcc/txns.rs crates/workloads/src/tpch/mod.rs crates/workloads/src/tpch/gen.rs crates/workloads/src/tpch/queries.rs crates/workloads/src/tpch/refresh.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/client.rs:
crates/workloads/src/tpcc/mod.rs:
crates/workloads/src/tpcc/driver.rs:
crates/workloads/src/tpcc/gen.rs:
crates/workloads/src/tpcc/txns.rs:
crates/workloads/src/tpch/mod.rs:
crates/workloads/src/tpch/gen.rs:
crates/workloads/src/tpch/queries.rs:
crates/workloads/src/tpch/refresh.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
