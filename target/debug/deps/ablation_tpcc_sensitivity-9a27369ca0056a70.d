/root/repo/target/debug/deps/ablation_tpcc_sensitivity-9a27369ca0056a70.d: crates/bench/src/bin/ablation_tpcc_sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libablation_tpcc_sensitivity-9a27369ca0056a70.rmeta: crates/bench/src/bin/ablation_tpcc_sensitivity.rs Cargo.toml

crates/bench/src/bin/ablation_tpcc_sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
