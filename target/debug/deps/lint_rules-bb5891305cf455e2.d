/root/repo/target/debug/deps/lint_rules-bb5891305cf455e2.d: crates/xtask/tests/lint_rules.rs Cargo.toml

/root/repo/target/debug/deps/liblint_rules-bb5891305cf455e2.rmeta: crates/xtask/tests/lint_rules.rs Cargo.toml

crates/xtask/tests/lint_rules.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
