/root/repo/target/debug/deps/workload_smoke-e7286e65acdfb8c6.d: crates/workloads/tests/workload_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libworkload_smoke-e7286e65acdfb8c6.rmeta: crates/workloads/tests/workload_smoke.rs Cargo.toml

crates/workloads/tests/workload_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
