/root/repo/target/debug/deps/ablation_cache_sweep-73e47ab54c4955cc.d: crates/bench/src/bin/ablation_cache_sweep.rs

/root/repo/target/debug/deps/ablation_cache_sweep-73e47ab54c4955cc: crates/bench/src/bin/ablation_cache_sweep.rs

crates/bench/src/bin/ablation_cache_sweep.rs:
