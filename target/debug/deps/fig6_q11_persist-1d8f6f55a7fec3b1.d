/root/repo/target/debug/deps/fig6_q11_persist-1d8f6f55a7fec3b1.d: crates/bench/src/bin/fig6_q11_persist.rs

/root/repo/target/debug/deps/fig6_q11_persist-1d8f6f55a7fec3b1: crates/bench/src/bin/fig6_q11_persist.rs

crates/bench/src/bin/fig6_q11_persist.rs:
