/root/repo/target/debug/deps/phoenix_behaviour-9b7fd49cb7f7e216.d: crates/core/tests/phoenix_behaviour.rs

/root/repo/target/debug/deps/phoenix_behaviour-9b7fd49cb7f7e216: crates/core/tests/phoenix_behaviour.rs

crates/core/tests/phoenix_behaviour.rs:
