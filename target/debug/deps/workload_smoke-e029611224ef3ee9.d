/root/repo/target/debug/deps/workload_smoke-e029611224ef3ee9.d: crates/workloads/tests/workload_smoke.rs

/root/repo/target/debug/deps/workload_smoke-e029611224ef3ee9: crates/workloads/tests/workload_smoke.rs

crates/workloads/tests/workload_smoke.rs:
