/root/repo/target/debug/deps/fault_injection-38e187573499607e.d: crates/integration/../../tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-38e187573499607e: crates/integration/../../tests/fault_injection.rs

crates/integration/../../tests/fault_injection.rs:
