/root/repo/target/debug/deps/ablation_reconnect-273534edc881f278.d: crates/bench/src/bin/ablation_reconnect.rs Cargo.toml

/root/repo/target/debug/deps/libablation_reconnect-273534edc881f278.rmeta: crates/bench/src/bin/ablation_reconnect.rs Cargo.toml

crates/bench/src/bin/ablation_reconnect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
