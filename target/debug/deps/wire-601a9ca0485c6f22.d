/root/repo/target/debug/deps/wire-601a9ca0485c6f22.d: crates/wire/src/lib.rs crates/wire/src/protocol.rs crates/wire/src/server.rs crates/wire/src/transport.rs

/root/repo/target/debug/deps/libwire-601a9ca0485c6f22.rlib: crates/wire/src/lib.rs crates/wire/src/protocol.rs crates/wire/src/server.rs crates/wire/src/transport.rs

/root/repo/target/debug/deps/libwire-601a9ca0485c6f22.rmeta: crates/wire/src/lib.rs crates/wire/src/protocol.rs crates/wire/src/server.rs crates/wire/src/transport.rs

crates/wire/src/lib.rs:
crates/wire/src/protocol.rs:
crates/wire/src/server.rs:
crates/wire/src/transport.rs:
