/root/repo/target/debug/deps/phoenix-d5e5081ea5aab63c.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/intercept.rs crates/core/src/persist.rs crates/core/src/session.rs

/root/repo/target/debug/deps/libphoenix-d5e5081ea5aab63c.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/intercept.rs crates/core/src/persist.rs crates/core/src/session.rs

/root/repo/target/debug/deps/libphoenix-d5e5081ea5aab63c.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/intercept.rs crates/core/src/persist.rs crates/core/src/session.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/intercept.rs:
crates/core/src/persist.rs:
crates/core/src/session.rs:
