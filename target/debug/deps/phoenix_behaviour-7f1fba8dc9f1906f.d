/root/repo/target/debug/deps/phoenix_behaviour-7f1fba8dc9f1906f.d: crates/core/tests/phoenix_behaviour.rs Cargo.toml

/root/repo/target/debug/deps/libphoenix_behaviour-7f1fba8dc9f1906f.rmeta: crates/core/tests/phoenix_behaviour.rs Cargo.toml

crates/core/tests/phoenix_behaviour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
