/root/repo/target/debug/deps/integration_tests-57f77917f36d51e0.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/libintegration_tests-57f77917f36d51e0.rlib: crates/integration/src/lib.rs

/root/repo/target/debug/deps/libintegration_tests-57f77917f36d51e0.rmeta: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
