/root/repo/target/debug/deps/ablation_reconnect-4beb156a59987492.d: crates/bench/src/bin/ablation_reconnect.rs

/root/repo/target/debug/deps/ablation_reconnect-4beb156a59987492: crates/bench/src/bin/ablation_reconnect.rs

crates/bench/src/bin/ablation_reconnect.rs:
