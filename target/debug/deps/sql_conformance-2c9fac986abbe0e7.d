/root/repo/target/debug/deps/sql_conformance-2c9fac986abbe0e7.d: crates/sqlengine/tests/sql_conformance.rs Cargo.toml

/root/repo/target/debug/deps/libsql_conformance-2c9fac986abbe0e7.rmeta: crates/sqlengine/tests/sql_conformance.rs Cargo.toml

crates/sqlengine/tests/sql_conformance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
