/root/repo/target/debug/deps/fig3_recovery_client-2b145e8ee45ee17e.d: crates/bench/src/bin/fig3_recovery_client.rs

/root/repo/target/debug/deps/fig3_recovery_client-2b145e8ee45ee17e: crates/bench/src/bin/fig3_recovery_client.rs

crates/bench/src/bin/fig3_recovery_client.rs:
