/root/repo/target/debug/deps/end_to_end-e56fa224bb40380f.d: crates/integration/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-e56fa224bb40380f: crates/integration/../../tests/end_to_end.rs

crates/integration/../../tests/end_to_end.rs:
