/root/repo/target/debug/deps/workloads-9b560fcf36a4f2b5.d: crates/workloads/src/lib.rs crates/workloads/src/client.rs crates/workloads/src/tpcc/mod.rs crates/workloads/src/tpcc/driver.rs crates/workloads/src/tpcc/gen.rs crates/workloads/src/tpcc/txns.rs crates/workloads/src/tpch/mod.rs crates/workloads/src/tpch/gen.rs crates/workloads/src/tpch/queries.rs crates/workloads/src/tpch/refresh.rs

/root/repo/target/debug/deps/libworkloads-9b560fcf36a4f2b5.rlib: crates/workloads/src/lib.rs crates/workloads/src/client.rs crates/workloads/src/tpcc/mod.rs crates/workloads/src/tpcc/driver.rs crates/workloads/src/tpcc/gen.rs crates/workloads/src/tpcc/txns.rs crates/workloads/src/tpch/mod.rs crates/workloads/src/tpch/gen.rs crates/workloads/src/tpch/queries.rs crates/workloads/src/tpch/refresh.rs

/root/repo/target/debug/deps/libworkloads-9b560fcf36a4f2b5.rmeta: crates/workloads/src/lib.rs crates/workloads/src/client.rs crates/workloads/src/tpcc/mod.rs crates/workloads/src/tpcc/driver.rs crates/workloads/src/tpcc/gen.rs crates/workloads/src/tpcc/txns.rs crates/workloads/src/tpch/mod.rs crates/workloads/src/tpch/gen.rs crates/workloads/src/tpch/queries.rs crates/workloads/src/tpch/refresh.rs

crates/workloads/src/lib.rs:
crates/workloads/src/client.rs:
crates/workloads/src/tpcc/mod.rs:
crates/workloads/src/tpcc/driver.rs:
crates/workloads/src/tpcc/gen.rs:
crates/workloads/src/tpcc/txns.rs:
crates/workloads/src/tpch/mod.rs:
crates/workloads/src/tpch/gen.rs:
crates/workloads/src/tpch/queries.rs:
crates/workloads/src/tpch/refresh.rs:
