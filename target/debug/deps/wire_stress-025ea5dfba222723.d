/root/repo/target/debug/deps/wire_stress-025ea5dfba222723.d: crates/wire/tests/wire_stress.rs

/root/repo/target/debug/deps/wire_stress-025ea5dfba222723: crates/wire/tests/wire_stress.rs

crates/wire/tests/wire_stress.rs:
