/root/repo/target/debug/deps/fig6_q11_persist-f7854cbb22abad99.d: crates/bench/src/bin/fig6_q11_persist.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_q11_persist-f7854cbb22abad99.rmeta: crates/bench/src/bin/fig6_q11_persist.rs Cargo.toml

crates/bench/src/bin/fig6_q11_persist.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
