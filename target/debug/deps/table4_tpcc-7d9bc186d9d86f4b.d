/root/repo/target/debug/deps/table4_tpcc-7d9bc186d9d86f4b.d: crates/bench/src/bin/table4_tpcc.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_tpcc-7d9bc186d9d86f4b.rmeta: crates/bench/src/bin/table4_tpcc.rs Cargo.toml

crates/bench/src/bin/table4_tpcc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
