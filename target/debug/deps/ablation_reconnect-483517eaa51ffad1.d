/root/repo/target/debug/deps/ablation_reconnect-483517eaa51ffad1.d: crates/bench/src/bin/ablation_reconnect.rs

/root/repo/target/debug/deps/ablation_reconnect-483517eaa51ffad1: crates/bench/src/bin/ablation_reconnect.rs

crates/bench/src/bin/ablation_reconnect.rs:
