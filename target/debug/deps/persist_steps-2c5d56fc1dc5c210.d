/root/repo/target/debug/deps/persist_steps-2c5d56fc1dc5c210.d: crates/bench/benches/persist_steps.rs Cargo.toml

/root/repo/target/debug/deps/libpersist_steps-2c5d56fc1dc5c210.rmeta: crates/bench/benches/persist_steps.rs Cargo.toml

crates/bench/benches/persist_steps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
