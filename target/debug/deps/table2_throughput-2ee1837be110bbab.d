/root/repo/target/debug/deps/table2_throughput-2ee1837be110bbab.d: crates/bench/src/bin/table2_throughput.rs

/root/repo/target/debug/deps/table2_throughput-2ee1837be110bbab: crates/bench/src/bin/table2_throughput.rs

crates/bench/src/bin/table2_throughput.rs:
