/root/repo/target/debug/deps/workloads-4085cdd6ff36b967.d: crates/workloads/src/lib.rs crates/workloads/src/client.rs crates/workloads/src/tpcc/mod.rs crates/workloads/src/tpcc/driver.rs crates/workloads/src/tpcc/gen.rs crates/workloads/src/tpcc/txns.rs crates/workloads/src/tpch/mod.rs crates/workloads/src/tpch/gen.rs crates/workloads/src/tpch/queries.rs crates/workloads/src/tpch/refresh.rs

/root/repo/target/debug/deps/workloads-4085cdd6ff36b967: crates/workloads/src/lib.rs crates/workloads/src/client.rs crates/workloads/src/tpcc/mod.rs crates/workloads/src/tpcc/driver.rs crates/workloads/src/tpcc/gen.rs crates/workloads/src/tpcc/txns.rs crates/workloads/src/tpch/mod.rs crates/workloads/src/tpch/gen.rs crates/workloads/src/tpch/queries.rs crates/workloads/src/tpch/refresh.rs

crates/workloads/src/lib.rs:
crates/workloads/src/client.rs:
crates/workloads/src/tpcc/mod.rs:
crates/workloads/src/tpcc/driver.rs:
crates/workloads/src/tpcc/gen.rs:
crates/workloads/src/tpcc/txns.rs:
crates/workloads/src/tpch/mod.rs:
crates/workloads/src/tpch/gen.rs:
crates/workloads/src/tpch/queries.rs:
crates/workloads/src/tpch/refresh.rs:
