/root/repo/target/debug/deps/engine_micro-19573beee8c6c69b.d: crates/bench/benches/engine_micro.rs Cargo.toml

/root/repo/target/debug/deps/libengine_micro-19573beee8c6c69b.rmeta: crates/bench/benches/engine_micro.rs Cargo.toml

crates/bench/benches/engine_micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
