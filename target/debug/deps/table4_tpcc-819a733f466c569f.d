/root/repo/target/debug/deps/table4_tpcc-819a733f466c569f.d: crates/bench/src/bin/table4_tpcc.rs

/root/repo/target/debug/deps/table4_tpcc-819a733f466c569f: crates/bench/src/bin/table4_tpcc.rs

crates/bench/src/bin/table4_tpcc.rs:
