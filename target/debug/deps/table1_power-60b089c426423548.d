/root/repo/target/debug/deps/table1_power-60b089c426423548.d: crates/bench/src/bin/table1_power.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_power-60b089c426423548.rmeta: crates/bench/src/bin/table1_power.rs Cargo.toml

crates/bench/src/bin/table1_power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
