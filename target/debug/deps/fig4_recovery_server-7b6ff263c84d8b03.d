/root/repo/target/debug/deps/fig4_recovery_server-7b6ff263c84d8b03.d: crates/bench/src/bin/fig4_recovery_server.rs

/root/repo/target/debug/deps/fig4_recovery_server-7b6ff263c84d8b03: crates/bench/src/bin/fig4_recovery_server.rs

crates/bench/src/bin/fig4_recovery_server.rs:
