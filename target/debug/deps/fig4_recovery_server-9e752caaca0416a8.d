/root/repo/target/debug/deps/fig4_recovery_server-9e752caaca0416a8.d: crates/bench/src/bin/fig4_recovery_server.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_recovery_server-9e752caaca0416a8.rmeta: crates/bench/src/bin/fig4_recovery_server.rs Cargo.toml

crates/bench/src/bin/fig4_recovery_server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
