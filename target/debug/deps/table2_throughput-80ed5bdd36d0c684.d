/root/repo/target/debug/deps/table2_throughput-80ed5bdd36d0c684.d: crates/bench/src/bin/table2_throughput.rs

/root/repo/target/debug/deps/table2_throughput-80ed5bdd36d0c684: crates/bench/src/bin/table2_throughput.rs

crates/bench/src/bin/table2_throughput.rs:
