/root/repo/target/debug/deps/properties-ee37696ce9982077.d: crates/integration/../../tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-ee37696ce9982077.rmeta: crates/integration/../../tests/properties.rs Cargo.toml

crates/integration/../../tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
