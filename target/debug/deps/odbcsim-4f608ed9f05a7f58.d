/root/repo/target/debug/deps/odbcsim-4f608ed9f05a7f58.d: crates/odbcsim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libodbcsim-4f608ed9f05a7f58.rmeta: crates/odbcsim/src/lib.rs Cargo.toml

crates/odbcsim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
