/root/repo/target/debug/deps/ablation_tpcc_sensitivity-b29c09d5172a6ac2.d: crates/bench/src/bin/ablation_tpcc_sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libablation_tpcc_sensitivity-b29c09d5172a6ac2.rmeta: crates/bench/src/bin/ablation_tpcc_sensitivity.rs Cargo.toml

crates/bench/src/bin/ablation_tpcc_sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
