/root/repo/target/debug/deps/table1_power-27c87ae09865f2a9.d: crates/bench/src/bin/table1_power.rs

/root/repo/target/debug/deps/table1_power-27c87ae09865f2a9: crates/bench/src/bin/table1_power.rs

crates/bench/src/bin/table1_power.rs:
