/root/repo/target/debug/deps/wire-f3853336759a3053.d: crates/wire/src/lib.rs crates/wire/src/protocol.rs crates/wire/src/server.rs crates/wire/src/transport.rs

/root/repo/target/debug/deps/wire-f3853336759a3053: crates/wire/src/lib.rs crates/wire/src/protocol.rs crates/wire/src/server.rs crates/wire/src/transport.rs

crates/wire/src/lib.rs:
crates/wire/src/protocol.rs:
crates/wire/src/server.rs:
crates/wire/src/transport.rs:
