/root/repo/target/debug/deps/fig6_q11_persist-f19d805b76aa7189.d: crates/bench/src/bin/fig6_q11_persist.rs

/root/repo/target/debug/deps/fig6_q11_persist-f19d805b76aa7189: crates/bench/src/bin/fig6_q11_persist.rs

crates/bench/src/bin/fig6_q11_persist.rs:
