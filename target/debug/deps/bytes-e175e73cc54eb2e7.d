/root/repo/target/debug/deps/bytes-e175e73cc54eb2e7.d: compat/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-e175e73cc54eb2e7.rmeta: compat/bytes/src/lib.rs Cargo.toml

compat/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
