/root/repo/target/debug/deps/integration_tests-8cc04b30393954aa.d: crates/integration/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_tests-8cc04b30393954aa.rmeta: crates/integration/src/lib.rs Cargo.toml

crates/integration/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
