/root/repo/target/debug/deps/table4_tpcc-f78b84d1dfbe1634.d: crates/bench/src/bin/table4_tpcc.rs

/root/repo/target/debug/deps/table4_tpcc-f78b84d1dfbe1634: crates/bench/src/bin/table4_tpcc.rs

crates/bench/src/bin/table4_tpcc.rs:
