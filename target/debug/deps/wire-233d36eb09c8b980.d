/root/repo/target/debug/deps/wire-233d36eb09c8b980.d: crates/wire/src/lib.rs crates/wire/src/protocol.rs crates/wire/src/server.rs crates/wire/src/transport.rs Cargo.toml

/root/repo/target/debug/deps/libwire-233d36eb09c8b980.rmeta: crates/wire/src/lib.rs crates/wire/src/protocol.rs crates/wire/src/server.rs crates/wire/src/transport.rs Cargo.toml

crates/wire/src/lib.rs:
crates/wire/src/protocol.rs:
crates/wire/src/server.rs:
crates/wire/src/transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
