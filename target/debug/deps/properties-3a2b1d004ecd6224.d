/root/repo/target/debug/deps/properties-3a2b1d004ecd6224.d: crates/integration/../../tests/properties.rs

/root/repo/target/debug/deps/properties-3a2b1d004ecd6224: crates/integration/../../tests/properties.rs

crates/integration/../../tests/properties.rs:
