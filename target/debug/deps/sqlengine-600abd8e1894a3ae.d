/root/repo/target/debug/deps/sqlengine-600abd8e1894a3ae.d: crates/sqlengine/src/lib.rs crates/sqlengine/src/catalog.rs crates/sqlengine/src/engine.rs crates/sqlengine/src/error.rs crates/sqlengine/src/exec/mod.rs crates/sqlengine/src/exec/binding.rs crates/sqlengine/src/exec/eval.rs crates/sqlengine/src/exec/select.rs crates/sqlengine/src/schema.rs crates/sqlengine/src/session.rs crates/sqlengine/src/sql/mod.rs crates/sqlengine/src/sql/ast.rs crates/sqlengine/src/sql/lexer.rs crates/sqlengine/src/sql/parser.rs crates/sqlengine/src/storage/mod.rs crates/sqlengine/src/storage/buffer.rs crates/sqlengine/src/storage/disk.rs crates/sqlengine/src/storage/heap.rs crates/sqlengine/src/storage/page.rs crates/sqlengine/src/txn/mod.rs crates/sqlengine/src/txn/locks.rs crates/sqlengine/src/types.rs crates/sqlengine/src/wal/mod.rs crates/sqlengine/src/wal/log.rs crates/sqlengine/src/wal/recovery.rs

/root/repo/target/debug/deps/libsqlengine-600abd8e1894a3ae.rlib: crates/sqlengine/src/lib.rs crates/sqlengine/src/catalog.rs crates/sqlengine/src/engine.rs crates/sqlengine/src/error.rs crates/sqlengine/src/exec/mod.rs crates/sqlengine/src/exec/binding.rs crates/sqlengine/src/exec/eval.rs crates/sqlengine/src/exec/select.rs crates/sqlengine/src/schema.rs crates/sqlengine/src/session.rs crates/sqlengine/src/sql/mod.rs crates/sqlengine/src/sql/ast.rs crates/sqlengine/src/sql/lexer.rs crates/sqlengine/src/sql/parser.rs crates/sqlengine/src/storage/mod.rs crates/sqlengine/src/storage/buffer.rs crates/sqlengine/src/storage/disk.rs crates/sqlengine/src/storage/heap.rs crates/sqlengine/src/storage/page.rs crates/sqlengine/src/txn/mod.rs crates/sqlengine/src/txn/locks.rs crates/sqlengine/src/types.rs crates/sqlengine/src/wal/mod.rs crates/sqlengine/src/wal/log.rs crates/sqlengine/src/wal/recovery.rs

/root/repo/target/debug/deps/libsqlengine-600abd8e1894a3ae.rmeta: crates/sqlengine/src/lib.rs crates/sqlengine/src/catalog.rs crates/sqlengine/src/engine.rs crates/sqlengine/src/error.rs crates/sqlengine/src/exec/mod.rs crates/sqlengine/src/exec/binding.rs crates/sqlengine/src/exec/eval.rs crates/sqlengine/src/exec/select.rs crates/sqlengine/src/schema.rs crates/sqlengine/src/session.rs crates/sqlengine/src/sql/mod.rs crates/sqlengine/src/sql/ast.rs crates/sqlengine/src/sql/lexer.rs crates/sqlengine/src/sql/parser.rs crates/sqlengine/src/storage/mod.rs crates/sqlengine/src/storage/buffer.rs crates/sqlengine/src/storage/disk.rs crates/sqlengine/src/storage/heap.rs crates/sqlengine/src/storage/page.rs crates/sqlengine/src/txn/mod.rs crates/sqlengine/src/txn/locks.rs crates/sqlengine/src/types.rs crates/sqlengine/src/wal/mod.rs crates/sqlengine/src/wal/log.rs crates/sqlengine/src/wal/recovery.rs

crates/sqlengine/src/lib.rs:
crates/sqlengine/src/catalog.rs:
crates/sqlengine/src/engine.rs:
crates/sqlengine/src/error.rs:
crates/sqlengine/src/exec/mod.rs:
crates/sqlengine/src/exec/binding.rs:
crates/sqlengine/src/exec/eval.rs:
crates/sqlengine/src/exec/select.rs:
crates/sqlengine/src/schema.rs:
crates/sqlengine/src/session.rs:
crates/sqlengine/src/sql/mod.rs:
crates/sqlengine/src/sql/ast.rs:
crates/sqlengine/src/sql/lexer.rs:
crates/sqlengine/src/sql/parser.rs:
crates/sqlengine/src/storage/mod.rs:
crates/sqlengine/src/storage/buffer.rs:
crates/sqlengine/src/storage/disk.rs:
crates/sqlengine/src/storage/heap.rs:
crates/sqlengine/src/storage/page.rs:
crates/sqlengine/src/txn/mod.rs:
crates/sqlengine/src/txn/locks.rs:
crates/sqlengine/src/types.rs:
crates/sqlengine/src/wal/mod.rs:
crates/sqlengine/src/wal/log.rs:
crates/sqlengine/src/wal/recovery.rs:
