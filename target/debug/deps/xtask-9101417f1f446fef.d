/root/repo/target/debug/deps/xtask-9101417f1f446fef.d: crates/xtask/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxtask-9101417f1f446fef.rmeta: crates/xtask/src/lib.rs Cargo.toml

crates/xtask/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
