/root/repo/target/debug/deps/concurrency-4be4144cb7ec4d2f.d: crates/sqlengine/tests/concurrency.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrency-4be4144cb7ec4d2f.rmeta: crates/sqlengine/tests/concurrency.rs Cargo.toml

crates/sqlengine/tests/concurrency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
