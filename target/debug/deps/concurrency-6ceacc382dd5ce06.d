/root/repo/target/debug/deps/concurrency-6ceacc382dd5ce06.d: crates/sqlengine/tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-6ceacc382dd5ce06: crates/sqlengine/tests/concurrency.rs

crates/sqlengine/tests/concurrency.rs:
