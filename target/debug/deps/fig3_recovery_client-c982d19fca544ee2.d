/root/repo/target/debug/deps/fig3_recovery_client-c982d19fca544ee2.d: crates/bench/src/bin/fig3_recovery_client.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_recovery_client-c982d19fca544ee2.rmeta: crates/bench/src/bin/fig3_recovery_client.rs Cargo.toml

crates/bench/src/bin/fig3_recovery_client.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
