/root/repo/target/debug/deps/fig3_recovery_client-ab3f233f134722ab.d: crates/bench/src/bin/fig3_recovery_client.rs

/root/repo/target/debug/deps/fig3_recovery_client-ab3f233f134722ab: crates/bench/src/bin/fig3_recovery_client.rs

crates/bench/src/bin/fig3_recovery_client.rs:
