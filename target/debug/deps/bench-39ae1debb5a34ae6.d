/root/repo/target/debug/deps/bench-39ae1debb5a34ae6.d: crates/bench/src/lib.rs crates/bench/src/measure.rs Cargo.toml

/root/repo/target/debug/deps/libbench-39ae1debb5a34ae6.rmeta: crates/bench/src/lib.rs crates/bench/src/measure.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/measure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
