/root/repo/target/debug/deps/lint_rules-38b741a26f08f3a0.d: crates/xtask/tests/lint_rules.rs

/root/repo/target/debug/deps/lint_rules-38b741a26f08f3a0: crates/xtask/tests/lint_rules.rs

crates/xtask/tests/lint_rules.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
