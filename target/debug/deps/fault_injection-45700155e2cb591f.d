/root/repo/target/debug/deps/fault_injection-45700155e2cb591f.d: crates/integration/../../tests/fault_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfault_injection-45700155e2cb591f.rmeta: crates/integration/../../tests/fault_injection.rs Cargo.toml

crates/integration/../../tests/fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
