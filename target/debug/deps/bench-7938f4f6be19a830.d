/root/repo/target/debug/deps/bench-7938f4f6be19a830.d: crates/bench/src/lib.rs crates/bench/src/measure.rs

/root/repo/target/debug/deps/libbench-7938f4f6be19a830.rlib: crates/bench/src/lib.rs crates/bench/src/measure.rs

/root/repo/target/debug/deps/libbench-7938f4f6be19a830.rmeta: crates/bench/src/lib.rs crates/bench/src/measure.rs

crates/bench/src/lib.rs:
crates/bench/src/measure.rs:
