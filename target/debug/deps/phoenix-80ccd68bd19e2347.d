/root/repo/target/debug/deps/phoenix-80ccd68bd19e2347.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/intercept.rs crates/core/src/persist.rs crates/core/src/session.rs Cargo.toml

/root/repo/target/debug/deps/libphoenix-80ccd68bd19e2347.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/intercept.rs crates/core/src/persist.rs crates/core/src/session.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/intercept.rs:
crates/core/src/persist.rs:
crates/core/src/session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
