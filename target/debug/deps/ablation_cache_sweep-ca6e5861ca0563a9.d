/root/repo/target/debug/deps/ablation_cache_sweep-ca6e5861ca0563a9.d: crates/bench/src/bin/ablation_cache_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libablation_cache_sweep-ca6e5861ca0563a9.rmeta: crates/bench/src/bin/ablation_cache_sweep.rs Cargo.toml

crates/bench/src/bin/ablation_cache_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
