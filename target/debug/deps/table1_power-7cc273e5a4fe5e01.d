/root/repo/target/debug/deps/table1_power-7cc273e5a4fe5e01.d: crates/bench/src/bin/table1_power.rs

/root/repo/target/debug/deps/table1_power-7cc273e5a4fe5e01: crates/bench/src/bin/table1_power.rs

crates/bench/src/bin/table1_power.rs:
