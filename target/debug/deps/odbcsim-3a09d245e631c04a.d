/root/repo/target/debug/deps/odbcsim-3a09d245e631c04a.d: crates/odbcsim/src/lib.rs

/root/repo/target/debug/deps/odbcsim-3a09d245e631c04a: crates/odbcsim/src/lib.rs

crates/odbcsim/src/lib.rs:
