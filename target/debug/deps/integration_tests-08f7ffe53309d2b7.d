/root/repo/target/debug/deps/integration_tests-08f7ffe53309d2b7.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/integration_tests-08f7ffe53309d2b7: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
