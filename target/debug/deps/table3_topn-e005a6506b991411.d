/root/repo/target/debug/deps/table3_topn-e005a6506b991411.d: crates/bench/src/bin/table3_topn.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_topn-e005a6506b991411.rmeta: crates/bench/src/bin/table3_topn.rs Cargo.toml

crates/bench/src/bin/table3_topn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
