/root/repo/target/debug/deps/ablation_cache_sweep-e8f9d3ab384adb86.d: crates/bench/src/bin/ablation_cache_sweep.rs

/root/repo/target/debug/deps/ablation_cache_sweep-e8f9d3ab384adb86: crates/bench/src/bin/ablation_cache_sweep.rs

crates/bench/src/bin/ablation_cache_sweep.rs:
