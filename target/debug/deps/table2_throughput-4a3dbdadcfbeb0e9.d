/root/repo/target/debug/deps/table2_throughput-4a3dbdadcfbeb0e9.d: crates/bench/src/bin/table2_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_throughput-4a3dbdadcfbeb0e9.rmeta: crates/bench/src/bin/table2_throughput.rs Cargo.toml

crates/bench/src/bin/table2_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
