/root/repo/target/debug/deps/table3_topn-b6d1af40967bf798.d: crates/bench/src/bin/table3_topn.rs

/root/repo/target/debug/deps/table3_topn-b6d1af40967bf798: crates/bench/src/bin/table3_topn.rs

crates/bench/src/bin/table3_topn.rs:
