/root/repo/target/debug/deps/sql_conformance-ba57282a7cb5b474.d: crates/sqlengine/tests/sql_conformance.rs

/root/repo/target/debug/deps/sql_conformance-ba57282a7cb5b474: crates/sqlengine/tests/sql_conformance.rs

crates/sqlengine/tests/sql_conformance.rs:
