/root/repo/target/debug/deps/parking_lot-0bbd030ffaf083e2.d: compat/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-0bbd030ffaf083e2.rmeta: compat/parking_lot/src/lib.rs Cargo.toml

compat/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
