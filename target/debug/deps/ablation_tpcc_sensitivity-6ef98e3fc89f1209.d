/root/repo/target/debug/deps/ablation_tpcc_sensitivity-6ef98e3fc89f1209.d: crates/bench/src/bin/ablation_tpcc_sensitivity.rs

/root/repo/target/debug/deps/ablation_tpcc_sensitivity-6ef98e3fc89f1209: crates/bench/src/bin/ablation_tpcc_sensitivity.rs

crates/bench/src/bin/ablation_tpcc_sensitivity.rs:
