/root/repo/target/debug/deps/ablation_tpcc_sensitivity-ff3b7ff0c3111d2f.d: crates/bench/src/bin/ablation_tpcc_sensitivity.rs

/root/repo/target/debug/deps/ablation_tpcc_sensitivity-ff3b7ff0c3111d2f: crates/bench/src/bin/ablation_tpcc_sensitivity.rs

crates/bench/src/bin/ablation_tpcc_sensitivity.rs:
