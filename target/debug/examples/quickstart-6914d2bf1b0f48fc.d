/root/repo/target/debug/examples/quickstart-6914d2bf1b0f48fc.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6914d2bf1b0f48fc: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
