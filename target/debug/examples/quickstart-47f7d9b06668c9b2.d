/root/repo/target/debug/examples/quickstart-47f7d9b06668c9b2.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-47f7d9b06668c9b2.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
