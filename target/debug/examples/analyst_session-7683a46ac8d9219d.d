/root/repo/target/debug/examples/analyst_session-7683a46ac8d9219d.d: crates/core/../../examples/analyst_session.rs

/root/repo/target/debug/examples/analyst_session-7683a46ac8d9219d: crates/core/../../examples/analyst_session.rs

crates/core/../../examples/analyst_session.rs:
