/root/repo/target/debug/examples/analyst_session-fb660501e81865e0.d: crates/core/../../examples/analyst_session.rs Cargo.toml

/root/repo/target/debug/examples/libanalyst_session-fb660501e81865e0.rmeta: crates/core/../../examples/analyst_session.rs Cargo.toml

crates/core/../../examples/analyst_session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
