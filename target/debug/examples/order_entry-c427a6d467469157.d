/root/repo/target/debug/examples/order_entry-c427a6d467469157.d: crates/core/../../examples/order_entry.rs Cargo.toml

/root/repo/target/debug/examples/liborder_entry-c427a6d467469157.rmeta: crates/core/../../examples/order_entry.rs Cargo.toml

crates/core/../../examples/order_entry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
