/root/repo/target/debug/examples/order_entry-bb5bd557f1085187.d: crates/core/../../examples/order_entry.rs

/root/repo/target/debug/examples/order_entry-bb5bd557f1085187: crates/core/../../examples/order_entry.rs

crates/core/../../examples/order_entry.rs:
