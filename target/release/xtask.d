/root/repo/target/release/xtask: /root/repo/crates/xtask/src/lib.rs /root/repo/crates/xtask/src/main.rs
