/root/repo/target/release/deps/table1_power-39954210efac1100.d: crates/bench/src/bin/table1_power.rs

/root/repo/target/release/deps/table1_power-39954210efac1100: crates/bench/src/bin/table1_power.rs

crates/bench/src/bin/table1_power.rs:
