/root/repo/target/release/deps/bench-ea13dc6403acb616.d: crates/bench/src/lib.rs crates/bench/src/measure.rs

/root/repo/target/release/deps/libbench-ea13dc6403acb616.rlib: crates/bench/src/lib.rs crates/bench/src/measure.rs

/root/repo/target/release/deps/libbench-ea13dc6403acb616.rmeta: crates/bench/src/lib.rs crates/bench/src/measure.rs

crates/bench/src/lib.rs:
crates/bench/src/measure.rs:
