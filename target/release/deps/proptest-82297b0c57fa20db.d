/root/repo/target/release/deps/proptest-82297b0c57fa20db.d: compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-82297b0c57fa20db.rlib: compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-82297b0c57fa20db.rmeta: compat/proptest/src/lib.rs

compat/proptest/src/lib.rs:
