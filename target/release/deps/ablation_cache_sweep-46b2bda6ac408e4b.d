/root/repo/target/release/deps/ablation_cache_sweep-46b2bda6ac408e4b.d: crates/bench/src/bin/ablation_cache_sweep.rs

/root/repo/target/release/deps/ablation_cache_sweep-46b2bda6ac408e4b: crates/bench/src/bin/ablation_cache_sweep.rs

crates/bench/src/bin/ablation_cache_sweep.rs:
