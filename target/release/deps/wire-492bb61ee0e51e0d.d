/root/repo/target/release/deps/wire-492bb61ee0e51e0d.d: crates/wire/src/lib.rs crates/wire/src/protocol.rs crates/wire/src/server.rs crates/wire/src/transport.rs

/root/repo/target/release/deps/libwire-492bb61ee0e51e0d.rlib: crates/wire/src/lib.rs crates/wire/src/protocol.rs crates/wire/src/server.rs crates/wire/src/transport.rs

/root/repo/target/release/deps/libwire-492bb61ee0e51e0d.rmeta: crates/wire/src/lib.rs crates/wire/src/protocol.rs crates/wire/src/server.rs crates/wire/src/transport.rs

crates/wire/src/lib.rs:
crates/wire/src/protocol.rs:
crates/wire/src/server.rs:
crates/wire/src/transport.rs:
