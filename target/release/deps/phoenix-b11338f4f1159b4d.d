/root/repo/target/release/deps/phoenix-b11338f4f1159b4d.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/intercept.rs crates/core/src/persist.rs crates/core/src/session.rs

/root/repo/target/release/deps/libphoenix-b11338f4f1159b4d.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/intercept.rs crates/core/src/persist.rs crates/core/src/session.rs

/root/repo/target/release/deps/libphoenix-b11338f4f1159b4d.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/intercept.rs crates/core/src/persist.rs crates/core/src/session.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/intercept.rs:
crates/core/src/persist.rs:
crates/core/src/session.rs:
