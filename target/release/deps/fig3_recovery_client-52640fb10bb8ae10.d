/root/repo/target/release/deps/fig3_recovery_client-52640fb10bb8ae10.d: crates/bench/src/bin/fig3_recovery_client.rs

/root/repo/target/release/deps/fig3_recovery_client-52640fb10bb8ae10: crates/bench/src/bin/fig3_recovery_client.rs

crates/bench/src/bin/fig3_recovery_client.rs:
