/root/repo/target/release/deps/odbcsim-63147e12ebda4b9c.d: crates/odbcsim/src/lib.rs

/root/repo/target/release/deps/libodbcsim-63147e12ebda4b9c.rlib: crates/odbcsim/src/lib.rs

/root/repo/target/release/deps/libodbcsim-63147e12ebda4b9c.rmeta: crates/odbcsim/src/lib.rs

crates/odbcsim/src/lib.rs:
