/root/repo/target/release/deps/integration_tests-78e077dda15b6c27.d: crates/integration/src/lib.rs

/root/repo/target/release/deps/libintegration_tests-78e077dda15b6c27.rlib: crates/integration/src/lib.rs

/root/repo/target/release/deps/libintegration_tests-78e077dda15b6c27.rmeta: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
