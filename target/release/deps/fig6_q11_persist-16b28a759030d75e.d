/root/repo/target/release/deps/fig6_q11_persist-16b28a759030d75e.d: crates/bench/src/bin/fig6_q11_persist.rs

/root/repo/target/release/deps/fig6_q11_persist-16b28a759030d75e: crates/bench/src/bin/fig6_q11_persist.rs

crates/bench/src/bin/fig6_q11_persist.rs:
