/root/repo/target/release/deps/ablation_reconnect-3ebf69946c011c29.d: crates/bench/src/bin/ablation_reconnect.rs

/root/repo/target/release/deps/ablation_reconnect-3ebf69946c011c29: crates/bench/src/bin/ablation_reconnect.rs

crates/bench/src/bin/ablation_reconnect.rs:
