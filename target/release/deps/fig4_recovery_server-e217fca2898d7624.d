/root/repo/target/release/deps/fig4_recovery_server-e217fca2898d7624.d: crates/bench/src/bin/fig4_recovery_server.rs

/root/repo/target/release/deps/fig4_recovery_server-e217fca2898d7624: crates/bench/src/bin/fig4_recovery_server.rs

crates/bench/src/bin/fig4_recovery_server.rs:
