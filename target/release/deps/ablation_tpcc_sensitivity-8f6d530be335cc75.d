/root/repo/target/release/deps/ablation_tpcc_sensitivity-8f6d530be335cc75.d: crates/bench/src/bin/ablation_tpcc_sensitivity.rs

/root/repo/target/release/deps/ablation_tpcc_sensitivity-8f6d530be335cc75: crates/bench/src/bin/ablation_tpcc_sensitivity.rs

crates/bench/src/bin/ablation_tpcc_sensitivity.rs:
