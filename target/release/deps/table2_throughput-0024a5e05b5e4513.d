/root/repo/target/release/deps/table2_throughput-0024a5e05b5e4513.d: crates/bench/src/bin/table2_throughput.rs

/root/repo/target/release/deps/table2_throughput-0024a5e05b5e4513: crates/bench/src/bin/table2_throughput.rs

crates/bench/src/bin/table2_throughput.rs:
