/root/repo/target/release/deps/workloads-40ebbaa82b85284b.d: crates/workloads/src/lib.rs crates/workloads/src/client.rs crates/workloads/src/tpcc/mod.rs crates/workloads/src/tpcc/driver.rs crates/workloads/src/tpcc/gen.rs crates/workloads/src/tpcc/txns.rs crates/workloads/src/tpch/mod.rs crates/workloads/src/tpch/gen.rs crates/workloads/src/tpch/queries.rs crates/workloads/src/tpch/refresh.rs

/root/repo/target/release/deps/libworkloads-40ebbaa82b85284b.rlib: crates/workloads/src/lib.rs crates/workloads/src/client.rs crates/workloads/src/tpcc/mod.rs crates/workloads/src/tpcc/driver.rs crates/workloads/src/tpcc/gen.rs crates/workloads/src/tpcc/txns.rs crates/workloads/src/tpch/mod.rs crates/workloads/src/tpch/gen.rs crates/workloads/src/tpch/queries.rs crates/workloads/src/tpch/refresh.rs

/root/repo/target/release/deps/libworkloads-40ebbaa82b85284b.rmeta: crates/workloads/src/lib.rs crates/workloads/src/client.rs crates/workloads/src/tpcc/mod.rs crates/workloads/src/tpcc/driver.rs crates/workloads/src/tpcc/gen.rs crates/workloads/src/tpcc/txns.rs crates/workloads/src/tpch/mod.rs crates/workloads/src/tpch/gen.rs crates/workloads/src/tpch/queries.rs crates/workloads/src/tpch/refresh.rs

crates/workloads/src/lib.rs:
crates/workloads/src/client.rs:
crates/workloads/src/tpcc/mod.rs:
crates/workloads/src/tpcc/driver.rs:
crates/workloads/src/tpcc/gen.rs:
crates/workloads/src/tpcc/txns.rs:
crates/workloads/src/tpch/mod.rs:
crates/workloads/src/tpch/gen.rs:
crates/workloads/src/tpch/queries.rs:
crates/workloads/src/tpch/refresh.rs:
