/root/repo/target/release/deps/parking_lot-1f086c5a719e1276.d: compat/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-1f086c5a719e1276.rlib: compat/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-1f086c5a719e1276.rmeta: compat/parking_lot/src/lib.rs

compat/parking_lot/src/lib.rs:
