/root/repo/target/release/deps/table4_tpcc-811b562cf919f20a.d: crates/bench/src/bin/table4_tpcc.rs

/root/repo/target/release/deps/table4_tpcc-811b562cf919f20a: crates/bench/src/bin/table4_tpcc.rs

crates/bench/src/bin/table4_tpcc.rs:
