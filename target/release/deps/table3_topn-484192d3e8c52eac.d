/root/repo/target/release/deps/table3_topn-484192d3e8c52eac.d: crates/bench/src/bin/table3_topn.rs

/root/repo/target/release/deps/table3_topn-484192d3e8c52eac: crates/bench/src/bin/table3_topn.rs

crates/bench/src/bin/table3_topn.rs:
