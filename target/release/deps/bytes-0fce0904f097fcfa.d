/root/repo/target/release/deps/bytes-0fce0904f097fcfa.d: compat/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-0fce0904f097fcfa.rlib: compat/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-0fce0904f097fcfa.rmeta: compat/bytes/src/lib.rs

compat/bytes/src/lib.rs:
