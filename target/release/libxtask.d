/root/repo/target/release/libxtask.rlib: /root/repo/crates/xtask/src/lib.rs
