/root/repo/target/release/examples/order_entry-30101192feb9859f.d: crates/core/../../examples/order_entry.rs

/root/repo/target/release/examples/order_entry-30101192feb9859f: crates/core/../../examples/order_entry.rs

crates/core/../../examples/order_entry.rs:
