/root/repo/target/release/examples/quickstart-200b6ea58b410b86.d: crates/core/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-200b6ea58b410b86: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
