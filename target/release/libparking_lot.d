/root/repo/target/release/libparking_lot.rlib: /root/repo/compat/parking_lot/src/lib.rs
