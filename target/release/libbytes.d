/root/repo/target/release/libbytes.rlib: /root/repo/compat/bytes/src/lib.rs
