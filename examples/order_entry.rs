//! Order-entry example: the OLTP scenario from the paper's Section 4.
//!
//! Run with:
//! ```text
//! cargo run --release --example order_entry
//! ```
//!
//! A small order-entry application (the TPC-C motif) runs a stream of
//! order transactions through Phoenix with **client-side result caching**
//! enabled while a chaos thread repeatedly crashes and restarts the
//! database server. At the end the books must balance exactly: every
//! committed order appears exactly once, and the order counter matches —
//! despite the outages, the application code only handles ordinary
//! transaction aborts (retry), never connection failures.

// Integration tests unwrap freely; hygiene lints target library code.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use phoenix::{CacheMode, PhoenixConfig, PhoenixConnection};
use sqlengine::{Error, Value};
use wire::{DbServer, ServerConfig};

fn main() {
    let server = DbServer::start(ServerConfig::default()).expect("server");
    let cfg = PhoenixConfig {
        cache: CacheMode::enabled(64 * 1024),
        ..Default::default()
    };
    let px = PhoenixConnection::connect(&server, cfg).expect("connect");

    println!("== set up the shop ==");
    px.exec("CREATE TABLE counters (name VARCHAR(20) PRIMARY KEY, next_id INT)")
        .unwrap();
    px.exec("INSERT INTO counters VALUES ('order', 1)").unwrap();
    px.exec("CREATE TABLE orders (o_id INT PRIMARY KEY, item VARCHAR(20), qty INT, price FLOAT)")
        .unwrap();
    px.exec("CREATE TABLE stock (item VARCHAR(20) PRIMARY KEY, on_hand INT)")
        .unwrap();
    px.exec("INSERT INTO stock VALUES ('anvil', 10000), ('rocket', 10000), ('magnet', 10000)")
        .unwrap();

    // Chaos: crash the server twice while orders flow.
    let chaos_server = server.clone();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let chaos = std::thread::spawn(move || {
        for _ in 0..2 {
            std::thread::sleep(Duration::from_millis(400));
            if stop2.load(Ordering::Relaxed) {
                return;
            }
            println!("   !! server crash !!");
            chaos_server.crash();
            std::thread::sleep(Duration::from_millis(150));
            chaos_server.restart().expect("restart");
            println!("   !! server back up !!");
        }
    });

    println!("== place 60 orders while the server crashes underneath ==");
    let items = ["anvil", "rocket", "magnet"];
    let mut committed = 0u64;
    for n in 0..60 {
        let item = items[n % items.len()];
        let qty = (n % 5 + 1) as i64;
        // One order = one transaction; on abort, retry — the only failure
        // mode the application ever sees.
        loop {
            let r = (|| -> Result<(), Error> {
                px.exec("BEGIN TRAN")?;
                let id_rows = px.query_all("SELECT next_id FROM counters WHERE name = 'order'")?;
                let id = id_rows[0][0].as_i64().unwrap();
                px.exec(&format!(
                    "UPDATE counters SET next_id = {} WHERE name = 'order'",
                    id + 1
                ))?;
                px.exec(&format!(
                    "INSERT INTO orders VALUES ({id}, '{item}', {qty}, {})",
                    9.99 * qty as f64
                ))?;
                px.exec(&format!(
                    "UPDATE stock SET on_hand = on_hand - {qty} WHERE item = '{item}'"
                ))?;
                px.exec("COMMIT")?;
                Ok(())
            })();
            match r {
                Ok(()) => {
                    committed += 1;
                    break;
                }
                Err(Error::TxnAborted(_)) | Err(Error::Deadlock) => {
                    // Normal transaction failure: retry.
                    continue;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        std::thread::sleep(Duration::from_millis(15));
    }
    stop.store(true, Ordering::Relaxed);
    chaos.join().unwrap();

    println!("== audit the books ==");
    let n_orders = px.query_all("SELECT COUNT(*) FROM orders").unwrap()[0][0]
        .as_i64()
        .unwrap();
    let next_id = px
        .query_all("SELECT next_id FROM counters WHERE name = 'order'")
        .unwrap()[0][0]
        .as_i64()
        .unwrap();
    let sold = px.query_all("SELECT SUM(qty) FROM orders").unwrap()[0][0]
        .as_i64()
        .unwrap();
    let on_hand = px.query_all("SELECT SUM(on_hand) FROM stock").unwrap()[0][0]
        .as_i64()
        .unwrap();

    println!("   committed client-side: {committed}");
    println!("   orders in database:    {n_orders}");
    println!("   order counter:         {next_id} (= orders + 1)");
    println!(
        "   stock sold {sold}, on hand {on_hand} (= 30000 - sold: {})",
        30000 - sold
    );

    assert_eq!(
        n_orders as u64, committed,
        "every committed order exactly once"
    );
    assert_eq!(next_id, n_orders + 1, "counter consistent with orders");
    assert_eq!(on_hand, 30000 - sold, "stock consistent with orders");
    let ids = px
        .query_all("SELECT o_id FROM orders ORDER BY o_id")
        .unwrap();
    for (i, r) in ids.iter().enumerate() {
        assert_eq!(r[0], Value::Int(i as i64 + 1), "order ids dense");
    }

    let stats = px.stats();
    println!(
        "\nPhoenix stats: {} recoveries, {} txn aborts surfaced, {} results cached, {} tables persisted",
        stats.recoveries, stats.txn_aborts_surfaced, stats.results_cached, stats.results_persisted
    );
    px.close();
    println!("the books balance. done.");
}
