//! Analyst session example: the decision-support scenario (Sections 2–3).
//!
//! Run with:
//! ```text
//! cargo run --release --example analyst_session
//! ```
//!
//! An analyst runs an expensive aggregation report and pages through it
//! slowly. The server crashes mid-report. Because Phoenix persisted the
//! result set as a server table, recovery does **not** recompute the
//! query — it reopens the table and repositions, in a fraction of the
//! original query time. Both repositioning modes are demonstrated.

// Integration tests unwrap freely; hygiene lints target library code.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::time::{Duration, Instant};

use phoenix::{PhoenixConfig, PhoenixConnection, RepositionMode};
use wire::{DbServer, ServerConfig};

const REPORT: &str = "SELECT region, product, ROUND(amount, 0) AS bucket, \
     COUNT(*) AS sales, SUM(amount) AS revenue, AVG(amount) AS avg_ticket \
     FROM sales \
     WHERE amount > 5.0 \
     GROUP BY region, product, ROUND(amount, 0) \
     ORDER BY revenue DESC";

fn run_session(server: &DbServer, mode: RepositionMode) {
    println!("\n== analyst session, {mode:?} repositioning ==");
    let mut cfg = PhoenixConfig {
        reposition: mode,
        ..Default::default()
    };
    cfg.driver.buffer_bytes = 128; // page through the report slowly
    let px = PhoenixConnection::connect(server, cfg).expect("connect");

    let t = Instant::now();
    px.exec(REPORT).unwrap();
    let exec_time = t.elapsed();
    let timing = px.last_persist_timing().unwrap();
    println!(
        "   report executed+persisted in {:.1} ms (load step {:.1} ms)",
        exec_time.as_secs_f64() * 1e3,
        timing.load.as_secs_f64() * 1e3
    );

    // Page through most of the report (~176 lines at this data shape).
    let mut read = 0;
    while read < 120 {
        if px.fetch().unwrap().is_none() {
            break;
        }
        read += 1;
    }
    println!("   analyst has read {read} report lines; server crashes now");
    server.crash();
    server.restart().unwrap();

    let t = Instant::now();
    let mut rest = 0;
    while px.fetch().unwrap().is_some() {
        rest += 1;
    }
    let resume_time = t.elapsed();
    let rt = px.last_recovery_timing().expect("recovered");
    println!(
        "   crash masked: remaining {rest} lines delivered; resume took {:.1} ms",
        resume_time.as_secs_f64() * 1e3
    );
    println!(
        "   recovery split: virtual session {:.1} ms, SQL state (reopen+reposition) {:.1} ms",
        rt.virtual_session.as_secs_f64() * 1e3,
        rt.sql_state.as_secs_f64() * 1e3
    );
    println!(
        "   (recovering the session cost a fraction of the {:.1} ms recompute)",
        exec_time.as_secs_f64() * 1e3
    );
    px.close();
}

fn main() {
    let server = DbServer::start(ServerConfig::default()).expect("server");

    println!("== build the sales warehouse ==");
    {
        let engine = server.engine().unwrap();
        let sid = engine.create_session().unwrap();
        engine
            .execute(
                sid,
                "CREATE TABLE sales (s_id INT PRIMARY KEY, region VARCHAR(10), \
                 product VARCHAR(10), amount FLOAT)",
            )
            .unwrap();
        let regions = ["north", "south", "east", "west"];
        let products = [
            "anvil", "rocket", "magnet", "spring", "tnt", "glue", "paint", "rope",
        ];
        let mut batch = Vec::new();
        for i in 0..60_000 {
            let r = regions[(i * 7) % regions.len()];
            let p = products[(i * 13) % products.len()];
            let amount = (i % 100) as f64 / 3.0 + 1.0;
            batch.push(format!("({i}, '{r}', '{p}', {amount:.2})"));
            if batch.len() == 500 {
                engine
                    .execute(
                        sid,
                        &format!("INSERT INTO sales VALUES {}", batch.join(",")),
                    )
                    .unwrap();
                batch.clear();
            }
        }
        engine.close_session(sid);
        engine.checkpoint().unwrap();
        println!("   60,000 sales rows loaded");
    }

    run_session(&server, RepositionMode::Server);
    run_session(&server, RepositionMode::Client);

    println!("\ndone.");
    std::thread::sleep(Duration::from_millis(50));
}
