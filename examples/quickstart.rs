//! Quickstart: a persistent database session surviving a server crash.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The application connects through Phoenix/ODBC, opens a result set, and
//! keeps fetching while the database server is crashed and restarted
//! underneath it. The application code has **no** failure handling — that
//! is the whole point of the paper.

// Integration tests unwrap freely; hygiene lints target library code.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::time::Duration;

use phoenix::{PhoenixConfig, PhoenixConnection};
use wire::{DbServer, ServerConfig};

fn main() {
    // A crashable database server (own threads, simulated network).
    let server = DbServer::start(ServerConfig::default()).expect("server");

    // The application's *only* handle: a Phoenix persistent session.
    let mut cfg = PhoenixConfig::default();
    cfg.driver.buffer_bytes = 256; // small driver buffer for the demo
    let px = PhoenixConnection::connect(&server, cfg).expect("connect");

    println!("== populate ==");
    px.exec("CREATE TABLE accounts (id INT PRIMARY KEY, owner VARCHAR(20), balance FLOAT)")
        .unwrap();
    let mut values = Vec::new();
    for i in 0..200 {
        values.push(format!("({i}, 'owner-{i}', {}.00)", 100 + i));
    }
    px.exec(&format!("INSERT INTO accounts VALUES {}", values.join(",")))
        .unwrap();

    println!("== open a report and read the first half ==");
    px.exec("SELECT id, owner, balance FROM accounts ORDER BY id")
        .unwrap();
    let mut rows = Vec::new();
    for _ in 0..100 {
        rows.push(px.fetch().unwrap().expect("row"));
    }
    println!("   fetched {} rows", rows.len());

    println!("== CRASH the server mid-result (and restart it) ==");
    server.crash();
    let s2 = server.clone();
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        s2.restart().expect("restart");
        println!("   (server restarted; database recovery ran)");
    });

    println!("== keep fetching — the application never notices ==");
    while let Some(r) = px.fetch().unwrap() {
        rows.push(r);
    }
    println!(
        "   delivered {} rows total, in order, exactly once",
        rows.len()
    );
    assert_eq!(rows.len(), 200);
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(r[0], sqlengine::Value::Int(i as i64));
    }

    let t = px.last_recovery_timing().expect("a recovery happened");
    println!(
        "   recovery: virtual session {:.1} ms + SQL state {:.1} ms ({} attempt(s))",
        t.virtual_session.as_secs_f64() * 1e3,
        t.sql_state.as_secs_f64() * 1e3,
        t.attempts
    );

    println!("== updates are exactly-once across crashes too ==");
    px.exec("UPDATE accounts SET balance = balance + 1 WHERE id = 7")
        .unwrap();
    server.crash();
    server.restart().unwrap();
    px.exec("UPDATE accounts SET balance = balance + 1 WHERE id = 7")
        .unwrap();
    let bal = px
        .query_all("SELECT balance FROM accounts WHERE id = 7")
        .unwrap();
    println!("   balance of account 7: {} (= 107 + 2)", bal[0][0]);
    assert_eq!(bal[0][0], sqlengine::Value::Float(109.0));

    let stats = px.stats();
    println!(
        "\nPhoenix stats: {} recoveries, {} results persisted, {} updates wrapped",
        stats.recoveries, stats.results_persisted, stats.updates_wrapped
    );
    px.close();
    println!("done.");
}
