//! Seeded chaos soak: an order-entry workload runs under a randomized
//! schedule of network faults (drop / truncate / delay / stall / flap,
//! via [`faultkit::net::NetPlan::Seeded`]) interleaved with full server
//! crashes, and must come out exactly-once and gap/dup-free:
//!
//! * every wrapped modification leaves exactly one `phx_status` row and
//!   its effect is applied exactly once (the model comparison would
//!   diverge on any double-apply or loss);
//! * every SELECT delivers precisely the model's rows — no gaps, no
//!   duplicates, no mispositioned resume after recovery.
//!
//! Each seed is fully deterministic in the fault *schedule* (what fires
//! on which message of which pipe); a failing seed prints a one-line
//! `FAULTKIT_REPLAY='chaos_soak:seed#<n>'` reproduction, reusing the
//! crashpoint replay grammar. `CHAOS_SOAK_SEEDS` / `CHAOS_SOAK_BASE`
//! override how many and which seeds run.

use std::collections::BTreeMap;
use std::time::Duration;

use faultkit::net::{NetPlan, NetRates};
use integration_tests::{restart_with_retry, REPLAY_ENV};
use phoenix::{ExecKind, PhoenixConfig, PhoenixConnection, ReconnectPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlengine::Value;
use wire::{DbServer, GroupCommit, ServerConfig};

const SCENARIO: &str = "chaos_soak";

fn soak_cfg(seed: u64) -> PhoenixConfig {
    let mut cfg = PhoenixConfig {
        reconnect: ReconnectPolicy {
            max_attempts: 5_000,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(10),
            deadline: Duration::from_secs(30),
            masking_retries: 500,
            jitter_seed: seed,
        },
        ..Default::default()
    };
    cfg.driver.buffer_bytes = 512;
    // Both bounds sit below the faultkit stall length (400 ms): a stalled
    // or holed receive must surface as a detectable timeout quickly, or
    // every injected stall would cost the soak half a second.
    cfg.driver.query_timeout = Some(Duration::from_millis(150));
    cfg.driver.request_deadline = Some(Duration::from_millis(200));
    cfg
}

fn expect_rows(px: &PhoenixConnection, model: &BTreeMap<i64, (i64, String)>) {
    let rows = px
        .query_all("SELECT id, qty, note FROM orders ORDER BY id")
        .unwrap();
    let got: Vec<(i64, i64, String)> = rows
        .iter()
        .map(|r| {
            let Value::Int(id) = r[0] else {
                panic!("id: {r:?}")
            };
            let Value::Int(qty) = r[1] else {
                panic!("qty: {r:?}")
            };
            let Value::Str(note) = &r[2] else {
                panic!("note: {r:?}")
            };
            (id, qty, note.clone())
        })
        .collect();
    let want: Vec<(i64, i64, String)> = model
        .iter()
        .map(|(id, (qty, note))| (*id, *qty, note.clone()))
        .collect();
    assert_eq!(got, want, "orders diverged from the model");
}

fn modify(px: &PhoenixConnection, sql: &str) -> u64 {
    match px.exec(sql).unwrap() {
        ExecKind::RowCount(n) => n,
        other => panic!("expected row count for {sql:?}, got {other:?}"),
    }
}

fn run_seed(seed: u64) {
    // Trace the whole seed: on failure the last events are dumped next to
    // the FAULTKIT_REPLAY line, and `OBSKIT_SNAPSHOT` exports the final
    // timeline. Cleared per seed so a dump shows only the failing run.
    let _trace = obskit::trace::session();
    obskit::trace::clear();
    // Group commit on: the single session mostly forms batches of one,
    // but every commit takes the park/lead/wake path, so the soak's
    // crash schedule lands inside the batching protocol too.
    let mut cfg = ServerConfig::instant_net();
    cfg.group_commit = GroupCommit::on(4, Duration::from_micros(500));
    // A crash can abandon a connection mid-handshake with its hello
    // frame stalled by a net fault; a short handshake bound drains the
    // pending-accept slot promptly so the per-seed series marks see
    // clean teardown levels.
    cfg.admission.handshake_timeout = Duration::from_millis(100);
    let server = DbServer::start(cfg).unwrap();
    {
        let engine = server.engine().unwrap();
        let sid = engine.create_session().unwrap();
        engine
            .execute(
                sid,
                "CREATE TABLE orders (id INT PRIMARY KEY, qty INT, note VARCHAR(24))",
            )
            .unwrap();
        engine.close_session(sid);
        engine.checkpoint().unwrap();
    }
    let px = PhoenixConnection::connect(&server, soak_cfg(seed)).unwrap();

    // Chaos on: every pipe created from here draws a decorrelated seeded
    // fault schedule (bounded per pipe, so recovery always finds quiet).
    server.set_fault_plan(Some(NetPlan::seeded(seed, NetRates::mixed(), 6)));

    let mut rng = StdRng::seed_from_u64(seed);
    let mut model: BTreeMap<i64, (i64, String)> = BTreeMap::new();
    let mut next_id = 0i64;
    let mut wrapped = 0u64;
    const STEPS: u32 = 50;
    for step in 0..STEPS {
        // Occasionally a full crash lands on top of the network chaos.
        if rng.gen_range(0..STEPS) < 3 {
            server.crash();
            restart_with_retry(&server, 200);
        }
        match rng.gen_range(0..10u32) {
            0..=4 => {
                let id = next_id;
                next_id += 1;
                let qty = rng.gen_range(1..100i64);
                let note = format!("n-{id}-{step}");
                let n = modify(
                    &px,
                    &format!("INSERT INTO orders VALUES ({id}, {qty}, '{note}')"),
                );
                assert_eq!(n, 1, "insert of {id} applied once");
                model.insert(id, (qty, note));
                wrapped += 1;
            }
            5 | 6 if !model.is_empty() => {
                let idx = rng.gen_range(0..model.len());
                let (&id, _) = model.iter().nth(idx).unwrap();
                let d = rng.gen_range(1..5i64);
                let n = modify(
                    &px,
                    &format!("UPDATE orders SET qty = qty + {d} WHERE id = {id}"),
                );
                assert_eq!(n, 1, "update of {id} applied once");
                if let Some(e) = model.get_mut(&id) {
                    e.0 += d;
                }
                wrapped += 1;
            }
            7 if !model.is_empty() => {
                let idx = rng.gen_range(0..model.len());
                let (&id, _) = model.iter().nth(idx).unwrap();
                let n = modify(&px, &format!("DELETE FROM orders WHERE id = {id}"));
                assert_eq!(n, 1, "delete of {id} applied once");
                model.remove(&id);
                wrapped += 1;
            }
            _ => expect_rows(&px, &model),
        }
    }

    // The network heals; connections made from here get clean pipes (any
    // residual faults on the live pipes are masked the usual way).
    server.set_fault_plan(None);

    // Final verification: the table matches the model row for row…
    expect_rows(&px, &model);
    assert_eq!(px.stats().updates_wrapped, wrapped);

    // …and the status table holds exactly one row per wrapped request —
    // the exactly-once ledger has no holes and no duplicates.
    let status = px
        .query_all("SELECT req_id FROM phx_status ORDER BY req_id")
        .unwrap();
    let req_ids: Vec<i64> = status
        .iter()
        .map(|r| {
            let Value::Int(id) = r[0] else {
                panic!("req_id: {r:?}")
            };
            id
        })
        .collect();
    assert_eq!(
        req_ids,
        (1..=wrapped as i64).collect::<Vec<i64>>(),
        "phx_status must record every wrapped request exactly once"
    );
    px.close();
}

#[test]
fn chaos_soak_randomized_fault_schedules() {
    // Replay mode: `FAULTKIT_REPLAY='chaos_soak:seed#<n>'` runs exactly
    // that seed (specs naming other scenarios are ignored).
    if let Ok(spec) = std::env::var(REPLAY_ENV) {
        let (scen, plan_spec) = spec.rsplit_once(':').unwrap_or(("", spec.as_str()));
        if !scen.is_empty() && scen != SCENARIO {
            return;
        }
        let seed: u64 = plan_spec
            .strip_prefix("seed#")
            .and_then(|n| n.trim().parse().ok())
            .unwrap_or_else(|| panic!("bad {REPLAY_ENV} spec {spec:?} (want {SCENARIO}:seed#<n>)"));
        eprintln!("replaying single chaos seed {seed}");
        run_seed(seed);
        write_snapshot_if_requested(seed, 1);
        return;
    }

    let count: u64 = std::env::var("CHAOS_SOAK_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let base: u64 = std::env::var("CHAOS_SOAK_BASE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2026);
    if std::env::var("OBSKIT_LOCKCHECK").is_ok() {
        obskit::lockcheck::enable();
    }
    let series = series_recorder_if_requested(base, count);
    for seed in base..base + count {
        let outcome = std::panic::catch_unwind(|| run_seed(seed));
        if let Some(rec) = &series {
            rec.mark(&format!("seed-{seed}"), &settled_snapshot())
                .expect("series mark");
        }
        if let Err(payload) = outcome {
            eprintln!(
                "\nchaos seed failed — reproduce with:\n  {REPLAY_ENV}='{SCENARIO}:seed#{seed}' \
                 cargo test -p integration-tests --test chaos_soak\n"
            );
            eprintln!(
                "trace timeline before the failure:\n{}",
                obskit::trace::dump_last(40)
            );
            std::panic::resume_unwind(payload);
        }
    }
    write_snapshot_if_requested(base, count);
    write_lockcheck_if_requested();
}

/// When `OBSKIT_SERIES=<path>` is set, stream a JSON-lines time series
/// with one interval per soak seed (counter/histogram deltas, absolute
/// gauge levels) — `cargo xtask bench-gate --series` validates the file:
/// sequential intervals, non-negative deltas, the pending high-water
/// mark monotone, and every session/pending slot drained by the final
/// interval.
fn series_recorder_if_requested(base: u64, count: u64) -> Option<obskit::stream::Recorder> {
    let path = std::env::var("OBSKIT_SERIES").ok()?;
    let mut meta = BTreeMap::new();
    meta.insert("source".to_string(), SCENARIO.to_string());
    meta.insert("base".to_string(), base.to_string());
    meta.insert("seeds".to_string(), count.to_string());
    Some(
        obskit::stream::Recorder::create(std::path::Path::new(&path), &meta)
            .expect("create OBSKIT_SERIES"),
    )
}

/// The per-seed harness joins its client threads before returning, but
/// a server-side accept thread can still be dropping its pending-
/// admission guard when the seed's mark fires. Settle briefly so the
/// recorded gauge levels reflect teardown, not the race with it — the
/// series gate asserts `admission.pending` is zero by the final
/// interval, which is true once the guards finish dropping.
fn settled_snapshot() -> obskit::metrics::Snapshot {
    let deadline = std::time::Instant::now() + Duration::from_millis(500);
    loop {
        let snap = obskit::metrics::global().snapshot();
        let pending = snap.gauges.get("admission.pending").copied().unwrap_or(0);
        if pending == 0 || std::time::Instant::now() >= deadline {
            return snap;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// When `OBSKIT_SNAPSHOT=<path>` is set, export the global metrics
/// registry plus the retained trace timeline as deterministic JSON —
/// `cargo xtask ci` runs one seed this way and validates the output.
fn write_snapshot_if_requested(base: u64, count: u64) {
    let Ok(path) = std::env::var("OBSKIT_SNAPSHOT") else {
        return;
    };
    let mut meta = BTreeMap::new();
    meta.insert("source".to_string(), SCENARIO.to_string());
    meta.insert("base".to_string(), base.to_string());
    meta.insert("seeds".to_string(), count.to_string());
    let json = obskit::export::snapshot_json(
        &meta,
        &obskit::metrics::global().snapshot(),
        &obskit::trace::snapshot(),
    );
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&path, json).expect("write OBSKIT_SNAPSHOT");
}

/// When `OBSKIT_LOCKCHECK=<path>` is set, dump the runtime lock-order
/// witness recorded across the soak — `cargo xtask ci` validates it
/// against the statically inferred graph from `cargo xtask analyze`.
fn write_lockcheck_if_requested() {
    let Ok(path) = std::env::var("OBSKIT_LOCKCHECK") else {
        return;
    };
    obskit::lockcheck::disable();
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&path, obskit::lockcheck::snapshot_json()).expect("write OBSKIT_LOCKCHECK");
}
