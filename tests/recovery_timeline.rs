//! Recovery-timeline export test: a server crash mid-fetch must produce
//! the six-phase recovery breakdown — detect → ping → reconnect → rebind
//! → reinstall → reposition — consistently across all three views:
//!
//! * [`PhoenixConnection::last_recovery_phases`] (the structured struct),
//! * the obskit trace timeline (one span per phase, in causal order),
//! * the JSON export (one histogram per phase with at least one sample),
//!
//! with the phase durations summing to no more than the application-visible
//! wall-clock time of the recovering fetch.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use integration_tests::restart_with_retry;
use phoenix::{PhoenixConfig, PhoenixConnection, RecoveryPhases};
use wire::{DbServer, ServerConfig};

#[test]
fn crash_recovery_exports_six_phase_timeline() {
    let _trace = obskit::trace::session();
    obskit::trace::clear();

    // Row batches of 1 keep the tail of the result server-side, so the
    // post-crash fetch has to go back to the server (and hence recover).
    let mut config = ServerConfig::instant_net();
    config.row_batch = 1;
    let server = DbServer::start(config).unwrap();
    {
        let engine = server.engine().unwrap();
        let sid = engine.create_session().unwrap();
        engine
            .execute(sid, "CREATE TABLE t (a INT PRIMARY KEY, pad VARCHAR(32))")
            .unwrap();
        for chunk in (0..200i64).collect::<Vec<_>>().chunks(50) {
            let vals: Vec<String> = chunk
                .iter()
                .map(|i| format!("({i}, 'xxxxxxxxxxxxxxxx')"))
                .collect();
            engine
                .execute(sid, &format!("INSERT INTO t VALUES {}", vals.join(",")))
                .unwrap();
        }
        engine.close_session(sid);
        engine.checkpoint().unwrap();
    }

    let mut cfg = PhoenixConfig::default();
    // Tiny driver buffer so fetches keep hitting the server.
    cfg.driver.buffer_bytes = 64;
    cfg.driver.query_timeout = Some(Duration::from_secs(30));
    let px = PhoenixConnection::connect(&server, cfg).unwrap();
    px.exec("SELECT a, pad FROM t ORDER BY a").unwrap();
    for _ in 0..100 {
        px.fetch().unwrap().unwrap();
    }

    server.crash();
    restart_with_retry(&server, 200);

    let t0 = Instant::now();
    assert!(
        px.fetch().unwrap().is_some(),
        "rows must resume after crash"
    );
    let wall = t0.elapsed();

    // View 1: the structured per-phase breakdown.
    let phases = px
        .last_recovery_phases()
        .expect("recovery must have happened");
    assert!(phases.total() > Duration::ZERO);
    assert!(
        phases.reconnect > Duration::ZERO,
        "recovery must have rebuilt the connection pair"
    );
    assert!(
        phases.total() <= wall,
        "phase sum {:?} exceeds the recovering fetch's wall clock {:?}",
        phases.total(),
        wall
    );

    // View 2: the trace timeline — one span per phase, in causal order.
    let events = obskit::trace::snapshot();
    let phase_events: Vec<_> = events
        .iter()
        .filter(|e| RecoveryPhases::NAMES.contains(&e.name))
        .collect();
    let order: Vec<&str> = phase_events.iter().map(|e| e.name).collect();
    assert_eq!(
        order,
        RecoveryPhases::NAMES.to_vec(),
        "exactly one span per phase, in pipeline order"
    );
    for w in phase_events.windows(2) {
        assert!(w[0].seq < w[1].seq, "sequence numbers must be causal");
    }
    let span_sum: u64 = phase_events.iter().filter_map(|e| e.dur_nanos).sum();
    assert!(
        Duration::from_nanos(span_sum) <= wall,
        "span durations exceed the recovering fetch's wall clock"
    );

    // View 3: the JSON export parses and holds one histogram per phase
    // with at least one recorded sample.
    let json = obskit::export::snapshot_json(
        &BTreeMap::new(),
        &obskit::metrics::global().snapshot(),
        &events,
    );
    let doc = obskit::json::Json::parse(&json).expect("export must parse");
    let hists = doc
        .get("histograms")
        .and_then(|h| h.as_obj())
        .expect("histograms object");
    for name in RecoveryPhases::NAMES {
        let h = hists
            .get(name)
            .unwrap_or_else(|| panic!("missing histogram {name}"));
        let count = h.get("count").and_then(|c| c.as_f64()).unwrap_or(0.0);
        assert!(count >= 1.0, "{name} must have at least one sample");
    }

    // Drain the rest of the result: recovery repositioned correctly.
    let mut remaining = 1u64; // the fetch above
    while px.fetch().unwrap().is_some() {
        remaining += 1;
    }
    assert_eq!(remaining, 100, "all rows after the crash point, once each");
    px.close();
}
