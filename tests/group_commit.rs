//! Multi-session group-commit durability, proven deterministically.
//!
//! The WAL manager's group-commit path (`LogManager::commit_flush`)
//! parks concurrent committers and lets one batch leader fsync for all
//! of them. These tests drive K concurrent committing Phoenix sessions
//! through the schedule explorer, crashing the server at each new
//! `wal.group.*` crashpoint in turn — `wal.group.enqueue` (commit LSN
//! about to park), `wal.group.lead` (leader elected, fsync not yet
//! issued) and `wal.group.wake` (waiter acked, about to return) — and
//! assert the exactly-once ledger after restart: every acknowledged
//! commit is durable, every unacknowledged one is atomically absent (or
//! re-executed exactly once by Phoenix's status-table protocol, never
//! twice). A failing schedule prints a one-line
//! `FAULTKIT_REPLAY='group_commit:<name>#<nth>'` reproduction.
//!
//! The second test is the 4-session commit mix behind the `cargo xtask
//! ci` group-commit gate: it measures batching through the global
//! obskit registry (`wal.flush.batch_size`, `sqlengine.wal.flush`) and
//! exports an `OBSKIT_SNAPSHOT` for the p50 ≥ 2 check.

use std::collections::BTreeMap;
use std::sync::Barrier;
use std::time::Duration;

use integration_tests::{crash_restart_action, explore, record_trace, restart_with_retry};
use phoenix::{ExecKind, PhoenixConfig, PhoenixConnection, ReconnectPolicy};
use sqlengine::Value;
use wire::{DbServer, GroupCommit, ServerConfig};
use workloads::{EngineClient, SqlClient};

fn px_cfg() -> PhoenixConfig {
    let mut cfg = PhoenixConfig {
        reconnect: ReconnectPolicy::fixed(300, Duration::from_millis(5)),
        ..Default::default()
    };
    cfg.driver.buffer_bytes = 256;
    cfg.driver.query_timeout = Some(Duration::from_secs(20));
    cfg
}

/// Server with the batching window open wide enough that a round of
/// concurrent commits reliably coalesces under `instant_net` latencies.
fn grouped_server(max_batch: usize, max_wait: Duration) -> DbServer {
    let mut cfg = ServerConfig::instant_net();
    cfg.group_commit = GroupCommit::on(max_batch, max_wait);
    DbServer::start(cfg).unwrap()
}

fn create_table(server: &DbServer, ddl: &str) {
    let engine = server.engine().unwrap();
    let client = EngineClient::new(engine).unwrap();
    client.execute(ddl).unwrap();
    server.engine().unwrap().checkpoint().unwrap();
}

/// One wrapped insert through a Phoenix session; crashes are masked by
/// the exactly-once status protocol, so the row count is always 1.
fn insert_one(px: &PhoenixConnection, table: &str, id: i64, src: usize) {
    match px.exec(&format!("INSERT INTO {table} VALUES ({id}, {src})")) {
        Ok(ExecKind::RowCount(n)) => assert_eq!(n, 1, "insert of {id} applied once"),
        Ok(other) => panic!("expected row count for insert {id}, got {other:?}"),
        Err(e) => panic!("wrapped insert of {id} failed: {e}"),
    }
}

/// Collect `(id, src)` rows straight from the engine (bypassing Phoenix,
/// so the check sees exactly the durable state recovery produced).
fn table_rows(server: &DbServer, sql: &str) -> Vec<(i64, i64)> {
    let engine = server.engine().unwrap();
    let sid = engine.create_session().unwrap();
    let (_, rows) = engine.execute_collect(sid, sql).unwrap();
    engine.close_session(sid);
    rows.iter()
        .map(|r| {
            let Value::Int(a) = r[0] else {
                panic!("int column: {r:?}")
            };
            let Value::Int(b) = r[1] else {
                panic!("int column: {r:?}")
            };
            (a, b)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Headline: crash at every wal.group.* crashpoint under K sessions
// ---------------------------------------------------------------------------

const SESSIONS: usize = 3;
const ROUNDS: i64 = 2;

/// K committing sessions, ROUNDS commits each, every round released by a
/// barrier so the commits race into the same batching window.
fn run_commit_mix(pxs: &[PhoenixConnection], table: &str) {
    let barrier = Barrier::new(pxs.len());
    std::thread::scope(|s| {
        for (t, px) in pxs.iter().enumerate() {
            let barrier = &barrier;
            s.spawn(move || {
                for i in 0..ROUNDS {
                    barrier.wait();
                    insert_one(px, table, t as i64 * 1000 + i, t);
                }
            });
        }
    });
}

/// The exactly-once ledger, checked from durable state after a restart:
/// every wrapped insert applied exactly once, and `phx_status` holds one
/// contiguous run of request ids per session — no holes (a lost ack
/// would re-execute and collide on the primary key), no duplicates.
fn verify_exactly_once(server: &DbServer, table: &str) {
    let want: Vec<(i64, i64)> = (0..SESSIONS as i64)
        .flat_map(|t| (0..ROUNDS).map(move |i| (t * 1000 + i, t)))
        .collect();
    let mut want = want;
    want.sort_unstable();
    assert_eq!(
        table_rows(server, &format!("SELECT id, src FROM {table} ORDER BY id")),
        want,
        "every acknowledged commit durable, exactly once"
    );

    let status = {
        let engine = server.engine().unwrap();
        let sid = engine.create_session().unwrap();
        let (_, rows) = engine
            .execute_collect(
                sid,
                "SELECT app_key, req_id FROM phx_status ORDER BY app_key, req_id",
            )
            .unwrap();
        engine.close_session(sid);
        rows
    };
    let mut per_session: BTreeMap<String, Vec<i64>> = BTreeMap::new();
    for r in &status {
        let Value::Str(key) = &r[0] else {
            panic!("app_key: {r:?}")
        };
        let Value::Int(req) = r[1] else {
            panic!("req_id: {r:?}")
        };
        per_session.entry(key.clone()).or_default().push(req);
    }
    assert_eq!(
        per_session.len(),
        SESSIONS,
        "one status ledger per session: {per_session:?}"
    );
    for (key, reqs) in &per_session {
        assert_eq!(
            reqs,
            &(1..=ROUNDS).collect::<Vec<i64>>(),
            "session {key} must record every wrapped request exactly once"
        );
    }
}

fn mix_setup() -> (DbServer, Vec<PhoenixConnection>) {
    let server = grouped_server(4, Duration::from_millis(2));
    create_table(&server, "CREATE TABLE gc (id INT PRIMARY KEY, src INT)");
    let pxs = (0..SESSIONS)
        .map(|_| PhoenixConnection::connect(&server, px_cfg()).unwrap())
        .collect();
    (server, pxs)
}

/// Crash at each `wal.group.*` crashpoint per recorded hit: the commit
/// mix must still come out exactly-once after recovery.
#[test]
fn crash_at_each_group_commit_point_is_exactly_once() {
    let fk = faultkit::session();
    let (server, pxs) = mix_setup();
    let trace = record_trace(&fk, || run_commit_mix(&pxs, "gc"));
    drop(pxs);
    drop(server);

    // Keep the schedule space deterministic under thread-interleaving
    // noise: `wal.group.enqueue` fires exactly once per wrapped commit,
    // so every recorded hit recurs on replay. Leader and wake hit
    // counts depend on how the batches happened to form, but each of
    // the two barrier rounds needs at least one fresh flush (and its
    // leader then wakes), so the first two hits exist in every run.
    let picked: Vec<_> = trace
        .into_iter()
        .filter(|p| match p.name {
            "wal.group.enqueue" => true,
            "wal.group.lead" | "wal.group.wake" => p.nth <= 2,
            _ => false,
        })
        .collect();
    for name in ["wal.group.enqueue", "wal.group.lead", "wal.group.wake"] {
        assert!(
            picked.iter().any(|p| p.name == name),
            "recorded commit mix never hit {name}: {picked:?}"
        );
    }

    explore("group_commit", &picked, |plan| {
        let (server, pxs) = mix_setup();
        let armed = fk.arm(plan, crash_restart_action(&server));
        run_commit_mix(&pxs, "gc");
        let fired = armed.fired();
        drop(armed);
        assert!(fired.is_some(), "plan {plan:?} never fired");
        // One more clean crash/restart: the assertions below must hold
        // against recovered durable state, not the buffer pool.
        server.crash();
        restart_with_retry(&server, 200);
        verify_exactly_once(&server, "gc");
        drop(pxs);
    });
}

// ---------------------------------------------------------------------------
// The 4-session commit mix behind the `cargo xtask ci` batching gate
// ---------------------------------------------------------------------------

/// Four concurrent committing sessions must coalesce: fewer fsyncs than
/// commits overall, and the average batch a leader's fsync covers ≥ 2.
/// With `OBSKIT_SNAPSHOT` set, exports the registry for the CI check
/// that `wal.flush.batch_size` p50 ≥ 2.
#[test]
fn four_session_commit_mix_batches_fsyncs() {
    // Serializes against the explorer test above (the crashpoint
    // registry and metrics registry are process-global).
    let _fk = faultkit::session();
    let _trace = obskit::trace::session();
    obskit::trace::clear();
    let server = grouped_server(8, Duration::from_millis(2));
    create_table(&server, "CREATE TABLE mix (id INT PRIMARY KEY, src INT)");

    const MIX_SESSIONS: usize = 4;
    const MIX_ROUNDS: i64 = 24;
    let pxs: Vec<PhoenixConnection> = (0..MIX_SESSIONS)
        .map(|_| PhoenixConnection::connect(&server, px_cfg()).unwrap())
        .collect();

    // Deltas, not absolutes: the global registry may already hold
    // samples from other tests in this process.
    let batch_hist = obskit::metrics::global().histogram("wal.flush.batch_size");
    let flush_hist = obskit::metrics::global().histogram("sqlengine.wal.flush");
    let (b0, f0) = (batch_hist.snapshot(), flush_hist.snapshot());

    let barrier = Barrier::new(MIX_SESSIONS);
    std::thread::scope(|s| {
        for (t, px) in pxs.iter().enumerate() {
            let barrier = &barrier;
            s.spawn(move || {
                for i in 0..MIX_ROUNDS {
                    barrier.wait();
                    insert_one(px, "mix", t as i64 * 1000 + i, t);
                }
            });
        }
    });

    let (b1, f1) = (batch_hist.snapshot(), flush_hist.snapshot());
    let commits = (MIX_SESSIONS as u64) * (MIX_ROUNDS as u64);
    let batches = b1.count - b0.count;
    let covered = b1.sum - b0.sum;
    let fsyncs = f1.count - f0.count;
    assert!(
        batches > 0,
        "no batched flush observed over {commits} commits"
    );
    assert!(
        fsyncs < commits,
        "group commit must beat one fsync per commit: {fsyncs} fsyncs for {commits} commits"
    );
    assert!(
        covered >= 2 * batches,
        "mean batch per covering fsync must be ≥ 2: {covered} commits over {batches} fsyncs"
    );

    // Everything acked must survive recovery, exactly once.
    server.crash();
    restart_with_retry(&server, 200);
    let got = table_rows(&server, "SELECT id, src FROM mix ORDER BY id");
    let want: Vec<(i64, i64)> = (0..MIX_SESSIONS as i64)
        .flat_map(|t| (0..MIX_ROUNDS).map(move |i| (t * 1000 + i, t)))
        .collect();
    let mut want = want;
    want.sort_unstable();
    assert_eq!(got, want, "acked commits diverged after recovery");

    write_snapshot_if_requested();
    drop(pxs);
}

/// When `OBSKIT_SNAPSHOT=<path>` is set, export the global metrics
/// registry plus the trace timeline — `cargo xtask ci` runs the
/// 4-session mix this way and asserts `wal.flush.batch_size` p50 ≥ 2.
fn write_snapshot_if_requested() {
    let Ok(path) = std::env::var("OBSKIT_SNAPSHOT") else {
        return;
    };
    let mut meta = BTreeMap::new();
    meta.insert("source".to_string(), "group_commit".to_string());
    let json = obskit::export::snapshot_json(
        &meta,
        &obskit::metrics::global().snapshot(),
        &obskit::trace::snapshot(),
    );
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&path, json).expect("write OBSKIT_SNAPSHOT");
}
