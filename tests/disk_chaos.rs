//! Seeded storage chaos soak: an order-entry workload runs while the
//! simulated disk and WAL devices inject seeded faults — torn page
//! writes, bit flips, read/write errors on the data device
//! ([`DiskRates::mixed_data`]) and torn appends, write errors and fsync
//! failures on the WAL device ([`DiskRates::mixed_wal`]) — interleaved
//! with full server crashes, and must come out with **zero silent
//! corruption**:
//!
//! * every injected page corruption is either repaired transparently
//!   (WAL-redo on a pool miss, or the restart scrub) or surfaced as an
//!   explicit error — never served as wrong rows;
//! * a failed WAL flush poisons the log fail-stop; the soak restarts the
//!   server (the fsyncgate discipline) and re-executes, and the final
//!   tables still match the model exactly;
//! * the `phx_status` ledger holds exactly one row per *successful*
//!   wrapped modification (failed attempts burn a request id without a
//!   row — a duplicate or an unexpected hole fails the run).
//!
//! Each seed is fully deterministic in both devices' fault schedules; a
//! failing seed prints a one-line `FAULTKIT_REPLAY='disk_chaos:seed#<n>'`
//! reproduction. `DISK_SOAK_SEEDS` / `DISK_SOAK_BASE` override how many
//! and which seeds run.

use std::collections::BTreeMap;
use std::time::Duration;

use faultkit::disk::{DiskPlan, DiskRates};
use integration_tests::{restart_with_retry, REPLAY_ENV};
use phoenix::{ExecKind, PhoenixConfig, PhoenixConnection, ReconnectPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlengine::{Error, Value};
use wire::{DbServer, GroupCommit, ServerConfig};

const SCENARIO: &str = "disk_chaos";

fn soak_cfg(seed: u64) -> PhoenixConfig {
    let mut cfg = PhoenixConfig {
        reconnect: ReconnectPolicy {
            max_attempts: 5_000,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(10),
            deadline: Duration::from_secs(30),
            masking_retries: 500,
            jitter_seed: seed,
        },
        ..Default::default()
    };
    cfg.driver.query_timeout = Some(Duration::from_secs(10));
    cfg
}

/// A query with storage-fault handling: Phoenix's session-persistence
/// protocol writes durable cursor state, so even a SELECT can hit a
/// poisoned WAL or an injected device error. Restart and retry — the
/// rows delivered must still match the model exactly.
fn query_recovering(
    server: &DbServer,
    px: &PhoenixConnection,
    surfaced: &mut u64,
    sql: &str,
) -> Vec<Vec<Value>> {
    let mut attempts = 0u32;
    loop {
        match px.query_all(sql) {
            Ok(rows) => return rows,
            Err(e) => {
                attempts += 1;
                assert!(attempts <= 25, "query kept failing: {sql:?}: {e}");
                if matches!(e, Error::Corruption { .. }) {
                    *surfaced += 1;
                }
                server.crash();
                restart_with_retry(server, 500);
            }
        }
    }
}

fn expect_rows(
    server: &DbServer,
    px: &PhoenixConnection,
    surfaced: &mut u64,
    model: &BTreeMap<i64, (i64, String)>,
) {
    let rows = query_recovering(
        server,
        px,
        surfaced,
        "SELECT id, qty, note FROM orders ORDER BY id",
    );
    let got: Vec<(i64, i64, String)> = rows
        .iter()
        .map(|r| {
            let Value::Int(id) = r[0] else {
                panic!("id: {r:?}")
            };
            let Value::Int(qty) = r[1] else {
                panic!("qty: {r:?}")
            };
            let Value::Str(note) = &r[2] else {
                panic!("note: {r:?}")
            };
            (id, qty, note.clone())
        })
        .collect();
    let want: Vec<(i64, i64, String)> = model
        .iter()
        .map(|(id, (qty, note))| (*id, *qty, note.clone()))
        .collect();
    assert_eq!(got, want, "orders diverged from the model");
}

/// One wrapped modification with storage-fault handling. Every attempt
/// burns one Phoenix request id; the id of the attempt that *succeeded*
/// is pushed onto `status_ids` — the final ledger must hold exactly
/// those. A failed attempt means the wrapped transaction aborted (a
/// failed or torn WAL flush is never acknowledged, so it cannot have
/// durably committed); the soak then restarts the server — clearing the
/// fail-stop poison, truncating any torn tail, scrubbing pages — and
/// re-executes.
fn modify(
    server: &DbServer,
    px: &PhoenixConnection,
    next_req: &mut i64,
    status_ids: &mut Vec<i64>,
    surfaced: &mut u64,
    sql: &str,
) -> u64 {
    let mut attempts = 0u32;
    loop {
        *next_req += 1;
        match px.exec(sql) {
            Ok(ExecKind::RowCount(n)) => {
                status_ids.push(*next_req);
                return n;
            }
            Ok(other) => panic!("expected row count for {sql:?}, got {other:?}"),
            Err(e) => {
                attempts += 1;
                assert!(attempts <= 25, "statement kept failing: {sql:?}: {e}");
                if matches!(e, Error::Corruption { .. }) {
                    *surfaced += 1;
                }
                // The device fault poisoned the WAL or broke the
                // statement; restart to recover (recovery truncates any
                // torn tail and the scrub repairs page images).
                server.crash();
                restart_with_retry(server, 500);
            }
        }
    }
}

fn run_seed(seed: u64) {
    let _trace = obskit::trace::session();
    obskit::trace::clear();
    let mut cfg = ServerConfig::instant_net();
    cfg.scrub_on_restart = true;
    // Group commit on: the seeded WAL-device faults (FsyncFail,
    // FsyncLie, torn appends) now land on batch-leader flushes, so the
    // fail-stop broadcast to parked waiters is under storage chaos too.
    cfg.group_commit = GroupCommit::on(4, Duration::from_micros(500));
    // Short handshake bound so a connection abandoned mid-handshake by
    // a crash drains its pending-accept slot before the seed's series
    // mark (see chaos_soak.rs).
    cfg.admission.handshake_timeout = Duration::from_millis(100);
    let server = DbServer::start(cfg).unwrap();
    {
        let engine = server.engine().unwrap();
        let sid = engine.create_session().unwrap();
        engine
            .execute(
                sid,
                "CREATE TABLE orders (id INT PRIMARY KEY, qty INT, note VARCHAR(24))",
            )
            .unwrap();
        engine.close_session(sid);
        engine.checkpoint().unwrap();
    }
    let px = PhoenixConnection::connect(&server, soak_cfg(seed)).unwrap();

    // Storage chaos on: both devices draw decorrelated seeded schedules.
    // The WAL mix holds only fail-stop-maskable faults (a bit flip inside
    // acknowledged log records, or a lying fsync straddling a crash, is
    // deliberately unmaskable and surfaces as `Error::Corruption`).
    server.set_disk_fault_plan(
        Some(DiskPlan::seeded(seed, DiskRates::mixed_data(), 6)),
        Some(DiskPlan::seeded(seed, DiskRates::mixed_wal(), 6)),
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let mut model: BTreeMap<i64, (i64, String)> = BTreeMap::new();
    let mut next_id = 0i64;
    let mut next_req = 0i64;
    let mut status_ids: Vec<i64> = Vec::new();
    let mut surfaced = 0u64;
    const STEPS: u32 = 50;
    for step in 0..STEPS {
        // Occasionally a full crash lands on top of the storage chaos.
        if rng.gen_range(0..STEPS) < 3 {
            server.crash();
            restart_with_retry(&server, 500);
        }
        match rng.gen_range(0..10u32) {
            0..=4 => {
                let id = next_id;
                next_id += 1;
                let qty = rng.gen_range(1..100i64);
                let note = format!("n-{id}-{step}");
                let n = modify(
                    &server,
                    &px,
                    &mut next_req,
                    &mut status_ids,
                    &mut surfaced,
                    &format!("INSERT INTO orders VALUES ({id}, {qty}, '{note}')"),
                );
                assert_eq!(n, 1, "insert of {id} applied once");
                model.insert(id, (qty, note));
            }
            5 | 6 if !model.is_empty() => {
                let idx = rng.gen_range(0..model.len());
                let (&id, _) = model.iter().nth(idx).unwrap();
                let d = rng.gen_range(1..5i64);
                let n = modify(
                    &server,
                    &px,
                    &mut next_req,
                    &mut status_ids,
                    &mut surfaced,
                    &format!("UPDATE orders SET qty = qty + {d} WHERE id = {id}"),
                );
                assert_eq!(n, 1, "update of {id} applied once");
                if let Some(e) = model.get_mut(&id) {
                    e.0 += d;
                }
            }
            7 if !model.is_empty() => {
                let idx = rng.gen_range(0..model.len());
                let (&id, _) = model.iter().nth(idx).unwrap();
                let n = modify(
                    &server,
                    &px,
                    &mut next_req,
                    &mut status_ids,
                    &mut surfaced,
                    &format!("DELETE FROM orders WHERE id = {id}"),
                );
                assert_eq!(n, 1, "delete of {id} applied once");
                model.remove(&id);
            }
            _ => expect_rows(&server, &px, &mut surfaced, &model),
        }
    }

    // The devices heal; one final restart scrubs any latent corruption.
    server.set_disk_fault_plan(None, None);
    server.crash();
    restart_with_retry(&server, 500);

    // Final verification: the table matches the model row for row, and a
    // fresh scrub of the healed device finds nothing — no corruption
    // survived silently.
    expect_rows(&server, &px, &mut surfaced, &model);
    let report = server.engine().unwrap().scrub().unwrap();
    assert_eq!(
        report.detected, 0,
        "post-soak scrub found unrepaired corruption: {report:?} \
         (corruption errors surfaced to the app: {surfaced})"
    );
    assert_eq!(px.stats().updates_wrapped, next_req as u64);

    // The ledger holds exactly one row per successful wrapped request:
    // no duplicates, and no holes beyond the ids burned by attempts that
    // failed loudly before commit.
    let status = px
        .query_all("SELECT req_id FROM phx_status ORDER BY req_id")
        .unwrap();
    let req_ids: Vec<i64> = status
        .iter()
        .map(|r| {
            let Value::Int(id) = r[0] else {
                panic!("req_id: {r:?}")
            };
            id
        })
        .collect();
    assert_eq!(
        req_ids, status_ids,
        "phx_status must record every successful wrapped request exactly once"
    );
    px.close();
}

#[test]
fn disk_chaos_randomized_fault_schedules() {
    // Replay mode: `FAULTKIT_REPLAY='disk_chaos:seed#<n>'` runs exactly
    // that seed (specs naming other scenarios are ignored).
    if let Ok(spec) = std::env::var(REPLAY_ENV) {
        let (scen, plan_spec) = spec.rsplit_once(':').unwrap_or(("", spec.as_str()));
        if !scen.is_empty() && scen != SCENARIO {
            return;
        }
        let seed: u64 = plan_spec
            .strip_prefix("seed#")
            .and_then(|n| n.trim().parse().ok())
            .unwrap_or_else(|| panic!("bad {REPLAY_ENV} spec {spec:?} (want {SCENARIO}:seed#<n>)"));
        eprintln!("replaying single disk-chaos seed {seed}");
        run_seed(seed);
        return;
    }

    let count: u64 = std::env::var("DISK_SOAK_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let base: u64 = std::env::var("DISK_SOAK_BASE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2026);
    let series = series_recorder_if_requested(base, count);
    for seed in base..base + count {
        let outcome = std::panic::catch_unwind(|| run_seed(seed));
        if let Some(rec) = &series {
            rec.mark(&format!("seed-{seed}"), &settled_snapshot())
                .expect("series mark");
        }
        if let Err(payload) = outcome {
            eprintln!(
                "\ndisk-chaos seed failed — reproduce with:\n  {REPLAY_ENV}='{SCENARIO}:seed#{seed}' \
                 cargo test -p integration-tests --test disk_chaos\n"
            );
            eprintln!(
                "trace timeline before the failure:\n{}",
                obskit::trace::dump_last(40)
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// When `OBSKIT_SERIES=<path>` is set, stream a JSON-lines time series
/// with one interval per soak seed — validated by `cargo xtask
/// bench-gate --series` (sequential intervals, non-negative deltas,
/// every session drained by the final interval).
fn series_recorder_if_requested(base: u64, count: u64) -> Option<obskit::stream::Recorder> {
    let path = std::env::var("OBSKIT_SERIES").ok()?;
    let mut meta = BTreeMap::new();
    meta.insert("source".to_string(), SCENARIO.to_string());
    meta.insert("base".to_string(), base.to_string());
    meta.insert("seeds".to_string(), count.to_string());
    Some(
        obskit::stream::Recorder::create(std::path::Path::new(&path), &meta)
            .expect("create OBSKIT_SERIES"),
    )
}

/// The per-seed harness joins its client threads before returning, but
/// a server-side accept thread can still be dropping its pending-
/// admission guard when the seed's mark fires. Settle briefly so the
/// recorded gauge levels reflect teardown, not the race with it — the
/// series gate asserts `admission.pending` is zero by the final
/// interval, which is true once the guards finish dropping.
fn settled_snapshot() -> obskit::metrics::Snapshot {
    let deadline = std::time::Instant::now() + Duration::from_millis(500);
    loop {
        let snap = obskit::metrics::global().snapshot();
        let pending = snap.gauges.get("admission.pending").copied().unwrap_or(0);
        if pending == 0 || std::time::Instant::now() >= deadline {
            return snap;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}
