//! Reconnect-storm chaos harness: crash a server holding ~256 virtual
//! sessions mid-workload and prove the admission-control story end to
//! end:
//!
//! * every session's wrapped modifications stay exactly-once (each
//!   session's `phx_status` ledger is gap- and duplicate-free);
//! * the reconnect herd is *bounded*: the pending-accept gate's
//!   high-water mark never exceeds its cap, and the overflow is shed
//!   with `ServerBusy` + `retry_after` instead of queueing — no
//!   thundering herd, no stall, no OOM;
//! * every shed session eventually recovers (or surfaces a resumable
//!   `RecoveryExhausted`, proven separately below).
//!
//! Satellites live here too: idle eviction vs. the temp-table liveness
//! probe (an evicted session's next call routes through full phase-1/2
//! recovery, repositioned at `delivered`), per-session memory budgets
//! (statement-level shed, session preserved), `retry_after` clipping to
//! the recovery deadline, and single-crash enumeration over the
//! `admission.{admit,shed,evict}` crashpoint family.
//!
//! A failing storm seed prints a one-line
//! `FAULTKIT_REPLAY='reconnect_storm:seed#<n>'` reproduction.
//! `STORM_SESSIONS` / `STORM_SEEDS` / `STORM_BASE` tune the sweep.

use std::collections::BTreeMap;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use integration_tests::{
    crash_restart_action, explore, record_trace, restart_with_retry, REPLAY_ENV,
};
use odbcsim::{DriverConfig, OdbcConnection};
use phoenix::{ExecKind, PhoenixConfig, PhoenixConnection, ReconnectPolicy};
use sqlengine::{Error, Value};
use wire::{AdmissionConfig, DbServer, ServerConfig};
use workloads::{EngineClient, SqlClient};

const SCENARIO: &str = "reconnect_storm";

/// The bound on concurrent reconnect handshakes in the storm. Small
/// against ~256 sessions so the post-crash herd is guaranteed to shed.
const PENDING_CAP: usize = 8;

/// Wrapped modifications per session on each side of the crash.
const OPS: i64 = 3;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn storm_px_cfg(seed: u64) -> PhoenixConfig {
    let mut cfg = PhoenixConfig {
        reconnect: ReconnectPolicy {
            max_attempts: 10_000,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(20),
            deadline: Duration::from_secs(60),
            masking_retries: 1_000,
            // One configured seed for the whole fleet: per-session
            // schedules decorrelate via the connection-id stream.
            jitter_seed: seed,
        },
        ..Default::default()
    };
    cfg.driver.buffer_bytes = 512;
    // Generous driver timeouts: with hundreds of threads multiplexed
    // onto few cores, a tight query timeout misreads scheduling delay
    // as a dead server and cascades spurious recoveries through the
    // gate. Crash detection does not depend on these — a crashed
    // endpoint fails instantly with a connection-fatal error.
    cfg.driver.query_timeout = Some(Duration::from_secs(5));
    cfg.driver.request_deadline = Some(Duration::from_secs(8));
    cfg
}

fn create_orders(server: &DbServer) {
    let engine = server.engine().unwrap();
    let sid = engine.create_session().unwrap();
    engine
        .execute(sid, "CREATE TABLE orders (id INT PRIMARY KEY, qty INT)")
        .unwrap();
    engine.close_session(sid);
    engine.checkpoint().unwrap();
}

fn wrapped_insert(px: &PhoenixConnection, id: i64, qty: i64) {
    // An exhausted Deadlock is a definitively-not-applied failure (the
    // victim transaction aborted and its req_id was returned) and
    // RecoveryExhausted is resumable by contract (the next call
    // re-enters recovery), so application-level retries on both are
    // exactly-once safe — exactly what a real client would do.
    let n = loop {
        match px.exec(&format!("INSERT INTO orders VALUES ({id}, {qty})")) {
            Ok(ExecKind::RowCount(n)) => break n,
            Ok(other) => panic!("expected row count for insert {id}, got {other:?}"),
            Err(Error::Deadlock) => std::thread::sleep(Duration::from_millis(2)),
            Err(Error::RecoveryExhausted) => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => panic!("insert {id}: {e:?}"),
        }
    };
    assert_eq!(n, 1, "insert of {id} applied exactly once");
}

fn ledger_req_ids(px: &PhoenixConnection) -> Vec<i64> {
    let key = px.app_key();
    let sql = format!("SELECT req_id FROM phx_status WHERE app_key = '{key}' ORDER BY req_id");
    // Under the storm, hundreds of sessions read the ledger while others
    // append to it; a wait-die victim is retryable, like any client, and
    // an exhausted recovery is resumable.
    let rows = loop {
        match px.query_all(&sql) {
            Ok(rows) => break rows,
            Err(Error::Deadlock) => std::thread::sleep(Duration::from_millis(1)),
            Err(Error::RecoveryExhausted) => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => panic!("ledger query: {e:?}"),
        }
    };
    rows.iter()
        .map(|r| {
            let Value::Int(id) = r[0] else {
                panic!("req_id: {r:?}")
            };
            id
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Tentpole: the storm itself
// ---------------------------------------------------------------------------

fn run_storm(seed: u64) {
    let _trace = obskit::trace::session();
    obskit::trace::clear();
    let sessions = env_usize("STORM_SESSIONS", 256);
    let mut cfg = ServerConfig::instant_net();
    cfg.admission = AdmissionConfig {
        // Roomy registry: the storm stresses the pending gate, not the
        // session cap (the cap has its own tests below).
        max_sessions: sessions * 4,
        pending_accepts: PENDING_CAP,
        idle_timeout: Duration::from_secs(2),
        session_budget_bytes: u64::MAX,
        handshake_timeout: Duration::from_secs(10),
    };
    let server = DbServer::start(cfg).unwrap();
    create_orders(&server);

    // Three rendezvous points: everyone connected; everyone mid-workload
    // (then the crash lands while every session is live); server back up
    // (then every session's next call storms recovery at once — the
    // worst-case synchronized herd the jittered backoff must spread).
    let connected = Arc::new(Barrier::new(sessions + 1));
    let pre_crash = Arc::new(Barrier::new(sessions + 1));
    let post_restart = Arc::new(Barrier::new(sessions + 1));

    let mut handles = Vec::with_capacity(sessions);
    for k in 0..sessions {
        let server = server.clone();
        let connected = Arc::clone(&connected);
        let pre_crash = Arc::clone(&pre_crash);
        let post_restart = Arc::clone(&post_restart);
        handles.push(std::thread::spawn(move || {
            // Even the initial connect can be shed when the fleet arrives
            // at once: honor the hint and retry, like a driver would.
            let px = loop {
                match PhoenixConnection::connect(&server, storm_px_cfg(seed)) {
                    Ok(px) => break px,
                    Err(Error::ServerBusy { retry_after }) => {
                        std::thread::sleep(retry_after + Duration::from_micros(k as u64 % 97));
                    }
                    Err(e) => panic!("session {k}: initial connect: {e:?}"),
                }
            };
            connected.wait();
            let base = k as i64 * 1_000;
            for i in 0..OPS {
                wrapped_insert(&px, base + i, i);
            }
            pre_crash.wait();
            post_restart.wait();
            for i in OPS..2 * OPS {
                wrapped_insert(&px, base + i, i);
            }
            // Exactly-once ledger for this session: one status row per
            // wrapped request, no holes, no duplicates.
            assert_eq!(
                ledger_req_ids(&px),
                (1..=2 * OPS).collect::<Vec<i64>>(),
                "session {k}: phx_status ledger"
            );
            px.close();
        }));
    }

    connected.wait();
    pre_crash.wait();
    server.crash();
    restart_with_retry(&server, 200);
    post_restart.wait();
    for h in handles {
        h.join().unwrap();
    }

    let st = server.admission_stats();
    // The herd was real (it shed) and bounded (the gate's high-water mark
    // respected the cap — max concurrent reconnects never exceeded it).
    // A scaled-down run (STORM_SESSIONS < 64) may slip through the gate
    // without shedding; the full-size storm cannot.
    assert!(
        sessions < 64 || st.shed > 0,
        "{sessions} sessions reconnecting through a gate of {PENDING_CAP} must shed: {st:?}"
    );
    assert!(
        st.pending_peak >= 1 && st.pending_peak <= PENDING_CAP as i64,
        "pending peak outside (0, {PENDING_CAP}]: {st:?}"
    );
    assert!(
        st.admitted >= sessions as u64 * 2,
        "admit underflow: {st:?}"
    );

    // Every slot drains once the fleet disconnects — no leaked sessions,
    // no leaked bytes.
    let t = Instant::now();
    loop {
        let st = server.admission_stats();
        if st.active == 0 && st.pending == 0 {
            assert_eq!(st.bytes_active, 0, "byte charge must drain with the slots");
            break;
        }
        assert!(
            t.elapsed() < Duration::from_secs(10),
            "admission slots leaked after the storm: {st:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Global model check: every insert from every session landed once.
    let client = EngineClient::new(server.engine().unwrap()).unwrap();
    let rows = client.query("SELECT id FROM orders ORDER BY id").unwrap();
    assert_eq!(
        rows.len(),
        sessions * (2 * OPS) as usize,
        "orders row count diverged"
    );
}

#[test]
fn reconnect_storm_sheds_bounded_and_recovers_every_session() {
    let _fk = faultkit::session();
    // Replay mode: `FAULTKIT_REPLAY='reconnect_storm:seed#<n>'` runs
    // exactly that seed (specs naming other scenarios are ignored).
    if let Ok(spec) = std::env::var(REPLAY_ENV) {
        let (scen, plan_spec) = spec.rsplit_once(':').unwrap_or(("", spec.as_str()));
        if !scen.is_empty() && scen != SCENARIO {
            return;
        }
        let seed: u64 = plan_spec
            .strip_prefix("seed#")
            .and_then(|n| n.trim().parse().ok())
            .unwrap_or_else(|| panic!("bad {REPLAY_ENV} spec {spec:?} (want {SCENARIO}:seed#<n>)"));
        eprintln!("replaying single storm seed {seed}");
        run_storm(seed);
        write_snapshot_if_requested(seed, 1);
        return;
    }

    let count = env_usize("STORM_SEEDS", 1) as u64;
    let base = env_usize("STORM_BASE", 2026) as u64;
    for seed in base..base + count {
        let outcome = std::panic::catch_unwind(|| run_storm(seed));
        if let Err(payload) = outcome {
            eprintln!(
                "\nstorm seed failed — reproduce with:\n  {REPLAY_ENV}='{SCENARIO}:seed#{seed}' \
                 cargo test -p integration-tests --test reconnect_storm\n"
            );
            eprintln!(
                "trace timeline before the failure:\n{}",
                obskit::trace::dump_last(40)
            );
            std::panic::resume_unwind(payload);
        }
    }
    write_snapshot_if_requested(base, count);
}

/// When `OBSKIT_SNAPSHOT=<path>` is set, export the global metrics
/// registry plus the retained trace timeline as deterministic JSON —
/// `cargo xtask ci` runs one pinned seed this way and validates the
/// storm's admission counters.
fn write_snapshot_if_requested(base: u64, count: u64) {
    let Ok(path) = std::env::var("OBSKIT_SNAPSHOT") else {
        return;
    };
    let mut meta = BTreeMap::new();
    meta.insert("source".to_string(), SCENARIO.to_string());
    meta.insert("base".to_string(), base.to_string());
    meta.insert("seeds".to_string(), count.to_string());
    meta.insert(
        "sessions".to_string(),
        env_usize("STORM_SESSIONS", 256).to_string(),
    );
    meta.insert("pending_cap".to_string(), PENDING_CAP.to_string());
    let json = obskit::export::snapshot_json(
        &meta,
        &obskit::metrics::global().snapshot(),
        &obskit::trace::snapshot(),
    );
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&path, json).expect("write OBSKIT_SNAPSHOT");
}

// ---------------------------------------------------------------------------
// Satellite: idle eviction vs. the temp-table liveness probe
// ---------------------------------------------------------------------------

/// An evicted session's next call must route through *full* phase-1/2
/// recovery (the liveness probe finds the session dead — no false
/// alarm), reposition the open result at `delivered`, and keep the
/// exactly-once ledger intact.
#[test]
fn evicted_idle_session_runs_full_recovery_repositioned_at_delivered() {
    let _fk = faultkit::session();
    let mut cfg = ServerConfig::instant_net();
    cfg.row_batch = 1;
    cfg.admission = AdmissionConfig {
        max_sessions: 64,
        pending_accepts: 64,
        idle_timeout: Duration::from_millis(250),
        session_budget_bytes: u64::MAX,
        handshake_timeout: Duration::from_secs(10),
    };
    let server = DbServer::start(cfg).unwrap();
    create_orders(&server);
    {
        let client = EngineClient::new(server.engine().unwrap()).unwrap();
        let vals: Vec<String> = (0..32).map(|i| format!("({i}, {i})")).collect();
        client
            .execute(&format!("INSERT INTO orders VALUES {}", vals.join(",")))
            .unwrap();
        server.engine().unwrap().checkpoint().unwrap();
    }
    let mut pxcfg = storm_px_cfg(11);
    // Tiny driver buffer: the tail of the result stays server-side, so
    // the post-eviction fetch genuinely needs recovery + repositioning.
    pxcfg.driver.buffer_bytes = 64;
    let px = PhoenixConnection::connect(&server, pxcfg).unwrap();

    wrapped_insert(&px, 1_000, 1);
    px.exec("SELECT id FROM orders ORDER BY id").unwrap();
    for i in 0..10 {
        let row = px.fetch().unwrap().unwrap();
        assert_eq!(row[0], Value::Int(i));
    }

    // Idle past the timeout: the liveness clock ticks only on inbound
    // frames, so both of the session's links go stale and are evicted
    // (the background sweeper or this direct call — whichever first).
    std::thread::sleep(Duration::from_millis(600));
    server.sweep_idle_sessions();
    let st = server.admission_stats();
    assert!(
        st.evicted >= 2,
        "both idle links (app + private) must be evicted: {st:?}"
    );

    // Next call: dead link -> full recovery -> repositioned at row 10.
    // The remaining rows arrive exactly once, in order: ids 10..31 then
    // the wrapped insert's 1000.
    let mut got = Vec::new();
    while let Some(row) = px.fetch().unwrap() {
        let Value::Int(id) = row[0] else {
            panic!("id: {row:?}")
        };
        got.push(id);
    }
    let mut want: Vec<i64> = (10..32).collect();
    want.push(1_000);
    assert_eq!(got, want, "no gaps, no duplicates after eviction recovery");
    assert_eq!(px.stats().recoveries, 1, "one real recovery");
    assert_eq!(px.stats().false_alarms, 0, "eviction is not a false alarm");
    assert!(
        px.last_recovery_phases().is_some(),
        "full phase-1/2 breakdown must be reported"
    );

    // Exactly-once survives the eviction: the ledger continues 1, 2.
    wrapped_insert(&px, 1_001, 2);
    assert_eq!(ledger_req_ids(&px), vec![1, 2]);
    px.close();
}

// ---------------------------------------------------------------------------
// Satellite: per-session memory budget
// ---------------------------------------------------------------------------

/// A session over its memory budget has statements shed (`ServerBusy`,
/// retryable, *not* connection-fatal — the session survives) until it
/// drops the materialized state; the dropping statement itself is always
/// admitted.
#[test]
fn over_budget_session_sheds_statements_until_state_dropped() {
    let _fk = faultkit::session();
    let mut cfg = ServerConfig::instant_net();
    cfg.admission.session_budget_bytes = wire::admission::SLOT_BASE_BYTES + 512;
    let server = DbServer::start(cfg).unwrap();
    let conn = OdbcConnection::connect(&server, DriverConfig::default()).unwrap();
    conn.exec_direct("CREATE TABLE t (a INT PRIMARY KEY)")
        .unwrap();
    conn.exec_direct("CREATE TABLE phx_res_7_1 (a INT PRIMARY KEY)")
        .unwrap();
    // Materializing 9 result rows charges 9 * 64 = 576 bytes > the 512
    // the budget leaves above the base slot charge.
    let vals: Vec<String> = (0..9).map(|i| format!("({i})")).collect();
    conn.exec_direct(&format!(
        "INSERT INTO phx_res_7_1 VALUES {}",
        vals.join(",")
    ))
    .unwrap();

    let err = conn.exec_direct("INSERT INTO t VALUES (1)").unwrap_err();
    assert!(err.is_retryable(), "budget shed is retryable: {err:?}");
    assert!(
        !err.is_connection_fatal(),
        "budget shed must not kill the session: {err:?}"
    );
    let Error::ServerBusy { retry_after } = err else {
        panic!("expected ServerBusy, got {err:?}")
    };
    assert!(retry_after > Duration::ZERO);

    // The way out is never gated: dropping the result table is admitted
    // even while over budget, and service resumes.
    conn.exec_direct("DROP TABLE phx_res_7_1").unwrap();
    let st = conn.exec_direct("INSERT INTO t VALUES (1)").unwrap();
    assert_eq!(st.row_count(), Some(1));
    assert!(server.admission_stats().shed >= 1);
}

// ---------------------------------------------------------------------------
// Satellite: retry_after clipping + resumable exhaustion
// ---------------------------------------------------------------------------

/// A shed response must not burn more than the recovery deadline: with
/// every registry slot squatted, the server hints `retry_after` of
/// roughly the idle timeout (60 s here) — the client must clip it to the
/// remaining 500 ms budget and surface `RecoveryExhausted` promptly.
/// The exhaustion is *resumable*: once capacity frees up, the next call
/// resumes recovery and delivers the rest of the result exactly.
#[test]
fn shed_hint_is_clipped_to_recovery_budget_and_exhaustion_resumes() {
    let _fk = faultkit::session();
    let mut cfg = ServerConfig::instant_net();
    cfg.row_batch = 1;
    cfg.admission = AdmissionConfig {
        max_sessions: 4,
        pending_accepts: 64,
        idle_timeout: Duration::from_secs(60),
        session_budget_bytes: u64::MAX,
        handshake_timeout: Duration::from_secs(10),
    };
    let server = DbServer::start(cfg).unwrap();
    create_orders(&server);
    {
        let client = EngineClient::new(server.engine().unwrap()).unwrap();
        let vals: Vec<String> = (0..40).map(|i| format!("({i}, {i})")).collect();
        client
            .execute(&format!("INSERT INTO orders VALUES {}", vals.join(",")))
            .unwrap();
        server.engine().unwrap().checkpoint().unwrap();
    }
    let mut pxcfg = PhoenixConfig {
        reconnect: ReconnectPolicy {
            max_attempts: 10_000,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(10),
            deadline: Duration::from_millis(500),
            masking_retries: 50,
            jitter_seed: 7,
        },
        ..Default::default()
    };
    pxcfg.driver.buffer_bytes = 64;
    pxcfg.driver.query_timeout = Some(Duration::from_millis(200));
    let px = PhoenixConnection::connect(&server, pxcfg).unwrap();
    px.exec("SELECT id FROM orders ORDER BY id").unwrap();
    for i in 0..10 {
        assert_eq!(px.fetch().unwrap().unwrap()[0], Value::Int(i));
    }

    server.crash();
    restart_with_retry(&server, 200);
    // Squat every registry slot before the client notices the crash.
    let squatters: Vec<OdbcConnection> = (0..4)
        .map(|_| OdbcConnection::connect(&server, DriverConfig::default()).unwrap())
        .collect();

    let t = Instant::now();
    let err = px.fetch().unwrap_err();
    let waited = t.elapsed();
    assert!(
        matches!(err, Error::RecoveryExhausted),
        "expected RecoveryExhausted, got {err:?}"
    );
    assert!(
        waited < Duration::from_secs(10),
        "a ~60s retry_after hint must be clipped to the 500ms recovery \
         deadline, but the client waited {waited:?}"
    );
    assert!(
        waited >= Duration::from_millis(300),
        "the budget should still be spent before giving up: {waited:?}"
    );
    assert!(server.admission_stats().shed > 0, "the squat must shed");

    // Capacity returns; the next application call resumes recovery and
    // the remaining rows arrive exactly once, in order.
    drop(squatters);
    let t = Instant::now();
    while server.admission_stats().active > 0 {
        assert!(t.elapsed() < Duration::from_secs(5), "squatters leaked");
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut got = Vec::new();
    while let Some(row) = px.fetch().unwrap() {
        let Value::Int(id) = row[0] else {
            panic!("id: {row:?}")
        };
        got.push(id);
    }
    assert_eq!(got, (10..40).collect::<Vec<i64>>());
    assert!(px.stats().recoveries >= 1);
    px.close();
}

// ---------------------------------------------------------------------------
// Satellite: crash enumeration over the admission crashpoint family
// ---------------------------------------------------------------------------

fn lifecycle_setup() -> (DbServer, PhoenixConnection) {
    let mut cfg = ServerConfig::instant_net();
    cfg.admission = AdmissionConfig {
        // Exactly the two slots the Phoenix session occupies: a third
        // connect is deterministically shed.
        max_sessions: 2,
        pending_accepts: 64,
        idle_timeout: Duration::from_millis(120),
        session_budget_bytes: u64::MAX,
        handshake_timeout: Duration::from_secs(10),
    };
    let server = DbServer::start(cfg).unwrap();
    create_orders(&server);
    let mut pxcfg = storm_px_cfg(13);
    pxcfg.reconnect.deadline = Duration::from_secs(20);
    let px = PhoenixConnection::connect(&server, pxcfg).unwrap();
    (server, px)
}

/// One pass through the admission lifecycle: a wrapped insert, a
/// deterministic shed (registry full), a deterministic eviction (idle
/// past the timeout), and the post-eviction recovery insert.
fn run_lifecycle(server: &DbServer, px: &PhoenixConnection, round: i64) {
    wrapped_insert(px, round * 10 + 1, 1);
    // Registry full (both slots are the session's): a third connect is
    // shed. Under an armed crash the slots may already have been freed
    // (or the link died mid-handshake) — any outcome is acceptable, the
    // session-level assertions below are what must hold.
    // lint:allow(discard): outcome intentionally ignored, see above
    let _ = OdbcConnection::connect(server, DriverConfig::default());
    std::thread::sleep(Duration::from_millis(260));
    server.sweep_idle_sessions();
    wrapped_insert(px, round * 10 + 2, 2);
}

/// Crash at each `admission.{admit,shed,evict}` hit in turn: the session
/// must still recover and keep its modifications exactly-once. (The
/// non-admission crashpoints this scenario also hits are enumerated
/// exhaustively by the fault_injection suite.)
#[test]
fn crash_at_admission_crashpoints_is_masked() {
    let fk = faultkit::session();
    let (server, px) = lifecycle_setup();
    let trace = record_trace(&fk, || run_lifecycle(&server, &px, 0));
    px.close();
    drop(server);

    let names: Vec<&str> = trace.iter().map(|p| p.name).collect();
    for required in ["admission.admit", "admission.shed", "admission.evict"] {
        assert!(
            names.contains(&required),
            "scenario must exercise {required}; hit {names:?}"
        );
    }
    let admission_points: Vec<_> = trace
        .iter()
        .filter(|p| p.name.starts_with("admission."))
        .cloned()
        .collect();

    explore("admission_lifecycle", &admission_points, |plan| {
        let (server, px) = lifecycle_setup();
        let armed = fk.arm(plan, crash_restart_action(&server));
        run_lifecycle(&server, &px, 1);
        let fired = armed.fired();
        drop(armed);
        assert!(fired.is_some(), "plan {plan:?} never fired");
        // Exactly-once ledger across the crash: both wrapped inserts,
        // each applied and recorded once.
        assert_eq!(ledger_req_ids(&px), vec![1, 2]);
        px.close();
    });
}
