//! Deterministic end-to-end storage-fault tests: each scenario installs
//! an exact `faultkit::disk` schedule (the `<kind>#<nth>` spec grammar,
//! e.g. `bitflip#1`) on the simulated data disk or WAL device and
//! asserts the engine's corruption story end to end — detection on read,
//! repair from WAL redo, torn-tail truncation at restart, and the
//! fsyncgate fail-stop discipline for failed log flushes.
//!
//! Every test opens `faultkit::session()` first: the crashpoint registry
//! is process-global, so tests must not interleave with one whose trace
//! recording is active.

use std::collections::BTreeSet;

use faultkit::disk::DiskPlan;
use integration_tests::{record_trace, restart_with_retry};
use sqlengine::engine::{Durable, Engine};
use sqlengine::storage::disk::DiskModel;
use sqlengine::wal::recovery::RecoveryConfig;
use sqlengine::{Error, Value};
use wire::{DbServer, ServerConfig};

fn plan(spec: &str) -> Option<DiskPlan> {
    Some(DiskPlan::parse(spec).unwrap_or_else(|| panic!("bad disk plan spec {spec:?}")))
}

/// `execute` whose success payload has no `Debug`; unwrap the error arm.
fn expect_exec_err(engine: &Engine, sid: u64, sql: &str, why: &str) -> Error {
    match engine.execute(sid, sql) {
        Ok(_) => panic!("{why}: {sql:?} unexpectedly succeeded"),
        Err(e) => e,
    }
}

fn count_rows(engine: &Engine, sid: u64, table: &str) -> i64 {
    let (_, rows) = engine
        .execute_collect(sid, &format!("SELECT COUNT(*) FROM {table}"))
        .unwrap();
    rows[0][0].as_i64().unwrap()
}

// ---------------------------------------------------------------------------
// Data-device faults: detect, quarantine, repair
// ---------------------------------------------------------------------------

/// A bit flip written to a durable page image is caught by the checksum
/// sweep and repaired from WAL redo — twice over: the first scrub
/// detects and repairs, a second scrub finds nothing left.
#[test]
fn bit_flip_on_data_page_is_detected_and_repaired_by_scrub() {
    let _fk = faultkit::session();
    let durable = Durable::new(DiskModel::default());
    let engine = Engine::recover(&durable, RecoveryConfig::default()).unwrap();
    let sid = engine.create_session().unwrap();
    engine
        .execute(sid, "CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(20))")
        .unwrap();
    let vals: Vec<String> = (0..64).map(|i| format!("({i}, 'row-{i}')")).collect();
    engine
        .execute(sid, &format!("INSERT INTO t VALUES {}", vals.join(",")))
        .unwrap();
    engine.checkpoint().unwrap();

    // Corrupt the next page flush, then heal the device.
    durable.disk.set_fault_plan(plan("bitflip#1"));
    engine
        .execute(sid, "INSERT INTO t VALUES (64, 'late')")
        .unwrap();
    engine.checkpoint().unwrap();
    durable.disk.set_fault_plan(None);

    let report = engine.scrub().unwrap();
    assert!(report.detected >= 1, "scrub must find the flipped page");
    assert_eq!(report.repaired, report.detected, "every hit repaired");
    let clean = engine.scrub().unwrap();
    assert_eq!(clean.detected, 0, "second scrub must come up clean");
    assert_eq!(count_rows(&engine, sid, "t"), 65);
}

/// A torn page write (prefix lands, trailer never does) is equally
/// detected and repaired — the trailer-last layout makes a torn image
/// unverifiable by construction.
#[test]
fn torn_page_write_is_detected_and_repaired_by_scrub() {
    let _fk = faultkit::session();
    let durable = Durable::new(DiskModel::default());
    let engine = Engine::recover(&durable, RecoveryConfig::default()).unwrap();
    let sid = engine.create_session().unwrap();
    engine
        .execute(sid, "CREATE TABLE t (a INT PRIMARY KEY)")
        .unwrap();
    engine
        .execute(sid, "INSERT INTO t VALUES (1), (2), (3)")
        .unwrap();
    engine.checkpoint().unwrap();

    durable.disk.set_fault_plan(plan("torn#1"));
    engine.execute(sid, "INSERT INTO t VALUES (4)").unwrap();
    engine.checkpoint().unwrap();
    durable.disk.set_fault_plan(None);

    let report = engine.scrub().unwrap();
    assert!(report.detected >= 1, "torn image must fail verification");
    assert_eq!(report.repaired, report.detected);
    assert_eq!(count_rows(&engine, sid, "t"), 4);
}

/// An injected read error surfaces as a storage error on the statement
/// that hit it, and is transient: the bounded schedule exhausts and the
/// retry succeeds.
#[test]
fn injected_read_error_is_transient() {
    let _fk = faultkit::session();
    let durable = Durable::new(DiskModel::default());
    // A pool far smaller than the table, so a scan always misses and
    // must read from the faulty device.
    let cfg = RecoveryConfig {
        pool_capacity: 4,
        scrub: false,
        ..Default::default()
    };
    let engine = Engine::recover(&durable, cfg).unwrap();
    let sid = engine.create_session().unwrap();
    engine
        .execute(sid, "CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(20))")
        .unwrap();
    let vals: Vec<String> = (0..6000).map(|i| format!("({i}, 'row-{i}')")).collect();
    for c in vals.chunks(400) {
        engine
            .execute(sid, &format!("INSERT INTO t VALUES {}", c.join(",")))
            .unwrap();
    }
    engine.checkpoint().unwrap();

    durable.disk.set_fault_plan(plan("readerr#1"));
    let err = engine
        .execute_collect(sid, "SELECT COUNT(*) FROM t")
        .expect_err("the scan's first pool miss must hit the injected error");
    assert!(
        matches!(&err, Error::Storage(m) if m.contains("injected read error")),
        "got {err:?}"
    );
    // The schedule is spent; the retry reads clean.
    assert_eq!(count_rows(&engine, sid, "t"), 6000);
}

// ---------------------------------------------------------------------------
// WAL-device faults: fail-stop poisoning and torn-tail truncation
// ---------------------------------------------------------------------------

/// fsyncgate discipline: the first failed log flush poisons the WAL
/// manager fail-stop — every later statement fails too, even though the
/// fault schedule is spent — and a restart recovers cleanly with the
/// failed transaction rolled back.
#[test]
fn failed_wal_flush_poisons_until_restart() {
    let _fk = faultkit::session();
    let server = DbServer::start(ServerConfig::instant_net()).unwrap();
    {
        let engine = server.engine().unwrap();
        let sid = engine.create_session().unwrap();
        engine
            .execute(sid, "CREATE TABLE t (a INT PRIMARY KEY)")
            .unwrap();
        engine.close_session(sid);
        engine.checkpoint().unwrap();
    }
    server.set_disk_fault_plan(None, plan("writeerr#1"));

    let engine = server.engine().unwrap();
    let sid = engine.create_session().unwrap();
    let err = expect_exec_err(
        &engine,
        sid,
        "INSERT INTO t VALUES (1)",
        "commit must hit the injected flush failure",
    );
    assert!(
        matches!(&err, Error::Storage(m) if m.contains("injected log flush failure")),
        "got {err:?}"
    );
    assert!(engine.storage().log.is_poisoned());
    // The schedule is spent, but the manager stays fail-stop.
    let err2 = expect_exec_err(
        &engine,
        sid,
        "INSERT INTO t VALUES (2)",
        "poisoned WAL must refuse further work",
    );
    assert!(
        matches!(&err2, Error::Storage(m) if m.contains("fail-stop")),
        "got {err2:?}"
    );

    server.crash();
    restart_with_retry(&server, 100);
    let engine = server.engine().unwrap();
    let sid = engine.create_session().unwrap();
    // Neither failed insert committed; fresh writes work again.
    assert_eq!(count_rows(&engine, sid, "t"), 0);
    engine.execute(sid, "INSERT INTO t VALUES (9)").unwrap();
    assert_eq!(count_rows(&engine, sid, "t"), 1);
}

/// A torn log append leaves a partial frame at the durable tail; restart
/// recovery truncates exactly that tail (counted in
/// `RecoveryStats::torn_tail_bytes`) and the acknowledged prefix
/// survives intact.
#[test]
fn torn_wal_tail_is_truncated_at_restart() {
    let _fk = faultkit::session();
    let server = DbServer::start(ServerConfig::instant_net()).unwrap();
    {
        let engine = server.engine().unwrap();
        let sid = engine.create_session().unwrap();
        engine
            .execute(sid, "CREATE TABLE t (a INT PRIMARY KEY)")
            .unwrap();
        engine.execute(sid, "INSERT INTO t VALUES (1)").unwrap();
        engine.close_session(sid);
    }
    server.set_disk_fault_plan(None, plan("torn#1"));
    {
        let engine = server.engine().unwrap();
        let sid = engine.create_session().unwrap();
        let err = expect_exec_err(
            &engine,
            sid,
            "INSERT INTO t VALUES (2)",
            "the torn append must fail the commit",
        );
        assert!(
            matches!(&err, Error::Storage(m) if m.contains("torn log append")),
            "got {err:?}"
        );
    }
    server.crash();
    let stats = server.restart().unwrap();
    assert!(
        stats.torn_tail_bytes > 0,
        "recovery must truncate the torn tail; stats: {stats:?}"
    );
    let engine = server.engine().unwrap();
    let sid = engine.create_session().unwrap();
    let (_, rows) = engine
        .execute_collect(sid, "SELECT a FROM t ORDER BY a")
        .unwrap();
    assert_eq!(rows, vec![vec![Value::Int(1)]]);
}

/// With `scrub_on_restart` set, restart recovery's final phase repairs
/// latent page corruption before any client reconnects.
#[test]
fn scrub_on_restart_repairs_latent_corruption() {
    let _fk = faultkit::session();
    let mut cfg = ServerConfig::instant_net();
    cfg.scrub_on_restart = true;
    let server = DbServer::start(cfg).unwrap();
    {
        let engine = server.engine().unwrap();
        let sid = engine.create_session().unwrap();
        engine
            .execute(sid, "CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(20))")
            .unwrap();
        let vals: Vec<String> = (0..32).map(|i| format!("({i}, 'row-{i}')")).collect();
        engine
            .execute(sid, &format!("INSERT INTO t VALUES {}", vals.join(",")))
            .unwrap();
        engine.checkpoint().unwrap();
        // Corrupt one flushed page image, then heal the device.
        server.set_disk_fault_plan(plan("bitflip#1"), None);
        engine
            .execute(sid, "INSERT INTO t VALUES (32, 'late')")
            .unwrap();
        engine.checkpoint().unwrap();
        server.set_disk_fault_plan(None, None);
    }
    server.crash();
    let stats = server.restart().unwrap();
    assert!(
        stats.scrub_repaired >= 1,
        "restart scrub must repair the flipped page; stats: {stats:?}"
    );
    let engine = server.engine().unwrap();
    let sid = engine.create_session().unwrap();
    assert_eq!(count_rows(&engine, sid, "t"), 33);
    // Nothing latent remains.
    assert_eq!(engine.scrub().unwrap().detected, 0);
}

// ---------------------------------------------------------------------------
// Instrumentation: the disk layer's crashpoints are all reachable
// ---------------------------------------------------------------------------

/// One corruption-and-repair scenario hits every `disk.` crashpoint the
/// storage-fault layer introduces: `disk.read`, `disk.write`,
/// `disk.wal.flush`, `disk.repair`, and `disk.scrub` — so the schedule
/// explorer can enumerate crashes at each of them.
#[test]
fn disk_crashpoints_are_all_instrumented() {
    let fk = faultkit::session();
    let durable = Durable::new(DiskModel::default());
    let engine = Engine::recover(&durable, RecoveryConfig::default()).unwrap();
    let sid = engine.create_session().unwrap();

    let trace = record_trace(&fk, || {
        engine
            .execute(sid, "CREATE TABLE t (a INT PRIMARY KEY)")
            .unwrap();
        engine
            .execute(sid, "INSERT INTO t VALUES (1), (2), (3)")
            .unwrap();
        engine.checkpoint().unwrap();
        // Corrupt a flushed image so the scrub exercises the repair path.
        durable.disk.set_fault_plan(plan("bitflip#1"));
        engine.execute(sid, "INSERT INTO t VALUES (4)").unwrap();
        engine.checkpoint().unwrap();
        durable.disk.set_fault_plan(None);
        let report = engine.scrub().unwrap();
        assert!(report.repaired >= 1, "scenario must repair a page");
    });

    let names: BTreeSet<&'static str> = trace.iter().map(|p| p.name).collect();
    for want in [
        "disk.read",
        "disk.write",
        "disk.wal.flush",
        "disk.repair",
        "disk.scrub",
    ] {
        assert!(
            names.contains(want),
            "crashpoint {want:?} never hit; trace names: {names:?}"
        );
    }
}
