//! Property-based tests over core invariants, spanning crates:
//! encodings round-trip, pages behave like a model, and — the big one —
//! recovery preserves exactly the committed transactions no matter where
//! the crash lands.

use proptest::prelude::*;

use sqlengine::engine::{Durable, Engine};
use sqlengine::schema::{decode_row, encode_row};
use sqlengine::storage::disk::DiskModel;
use sqlengine::types::{sql_like, Value};
use sqlengine::wal::recovery::RecoveryConfig;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only (NaN breaks equality, NULL is the SQL way).
        any::<i32>().prop_map(|x| Value::Float(x as f64 / 7.0)),
        "[a-zA-Z0-9 _'-]{0,40}".prop_map(Value::Str),
        (-100_000i32..100_000).prop_map(Value::Date),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn row_encoding_round_trips(row in prop::collection::vec(arb_value(), 0..12)) {
        let mut buf = Vec::new();
        encode_row(&row, &mut buf);
        let back = decode_row(&buf).unwrap();
        prop_assert_eq!(back, row);
    }

    #[test]
    fn row_decoding_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_row(&bytes); // must return Err, not panic
    }

    #[test]
    fn like_matches_reference_implementation(
        text in "[ab]{0,8}",
        pattern in "[ab%_]{0,6}",
    ) {
        // Reference: dynamic-programming LIKE.
        fn reference(t: &[u8], p: &[u8]) -> bool {
            let (n, m) = (t.len(), p.len());
            let mut dp = vec![vec![false; m + 1]; n + 1];
            dp[0][0] = true;
            for j in 1..=m {
                if p[j - 1] == b'%' {
                    dp[0][j] = dp[0][j - 1];
                }
            }
            for i in 1..=n {
                for j in 1..=m {
                    dp[i][j] = match p[j - 1] {
                        b'%' => dp[i][j - 1] || dp[i - 1][j],
                        b'_' => dp[i - 1][j - 1],
                        c => dp[i - 1][j - 1] && t[i - 1] == c,
                    };
                }
            }
            dp[n][m]
        }
        prop_assert_eq!(
            sql_like(&text, &pattern),
            reference(text.as_bytes(), pattern.as_bytes())
        );
    }
}

// ---------------------------------------------------------------------------
// Storage checksums: round-trip and single-bit-flip detection
// ---------------------------------------------------------------------------

use sqlengine::storage::checksum::{crc64, wal_record_crc};
use sqlengine::storage::disk::{page_image_ok, PAGE_SIZE};
use sqlengine::storage::page::PAGE_CONTENT;

/// Stamp a page image exactly the way `MemDisk::write_page` does: CRC-64
/// over the content region, stored big-endian in the 8-byte trailer.
fn stamped_page(content: &[u8]) -> Box<[u8; PAGE_SIZE]> {
    let mut buf = Box::new([0u8; PAGE_SIZE]);
    buf[..content.len()].copy_from_slice(content);
    let crc = crc64(&buf[..PAGE_CONTENT]);
    buf[PAGE_CONTENT..].copy_from_slice(&crc.to_be_bytes());
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A freshly stamped page always verifies.
    #[test]
    fn page_checksum_round_trips(
        content in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let buf = stamped_page(&content);
        prop_assert!(page_image_ok(&buf));
    }

    /// Flipping any single bit anywhere in the image — content or
    /// trailer — is detected.
    #[test]
    fn page_checksum_detects_any_single_bit_flip(
        content in prop::collection::vec(any::<u8>(), 0..512),
        offset in 0usize..PAGE_SIZE,
        bit in 0u8..8,
    ) {
        let mut buf = stamped_page(&content);
        buf[offset] ^= 1 << bit;
        prop_assert!(!page_image_ok(&buf));
    }

    /// A WAL record CRC re-verifies over the same payload and LSN, and
    /// any single bit flip in the payload is detected.
    #[test]
    fn wal_record_crc_round_trips_and_detects_bit_flips(
        payload in prop::collection::vec(any::<u8>(), 1..256),
        lsn in any::<u64>(),
        bit in any::<u32>(),
    ) {
        let crc = wal_record_crc(&payload, lsn);
        prop_assert_eq!(crc, wal_record_crc(&payload, lsn));
        let mut damaged = payload.clone();
        let i = (bit as usize / 8) % damaged.len();
        damaged[i] ^= 1 << (bit % 8);
        prop_assert_ne!(crc, wal_record_crc(&damaged, lsn));
    }

    /// The CRC binds the record to its position: the same payload at a
    /// different LSN (a stream shifted by a lying fsync) never verifies.
    #[test]
    fn wal_record_crc_binds_the_lsn(
        payload in prop::collection::vec(any::<u8>(), 0..128),
        lsn in any::<u64>(),
        shift in 1u64..1_000_000,
    ) {
        prop_assert_ne!(
            wal_record_crc(&payload, lsn),
            wal_record_crc(&payload, lsn.wrapping_add(shift)),
        );
    }
}

// ---------------------------------------------------------------------------
// Lock-manager invariant
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum LockOp {
    Lock {
        txn: u64,
        row: Option<u64>,
        mode: u8,
    },
    Release {
        txn: u64,
    },
}

fn arb_lock_ops() -> impl Strategy<Value = Vec<LockOp>> {
    prop::collection::vec(
        prop_oneof![
            ((1u64..6), prop::option::of(0u64..4), (0u8..4))
                .prop_map(|(txn, row, mode)| LockOp::Lock { txn, row, mode }),
            (1u64..6).prop_map(|txn| LockOp::Release { txn }),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After any sequence of grants and releases, no two transactions hold
    /// incompatible modes on the same target.
    #[test]
    fn lock_manager_never_grants_incompatible_modes(ops in arb_lock_ops()) {
        use sqlengine::txn::locks::{LockManager, LockMode, LockTarget};
        use std::time::Duration;
        let mgr = LockManager::new(Duration::from_millis(1));
        let modes = [
            LockMode::IntentionShared,
            LockMode::IntentionExclusive,
            LockMode::Shared,
            LockMode::Exclusive,
        ];
        // Compatibility matrix (IS, IX, S, X).
        let compat = |a: u8, b: u8| -> bool {
            matches!(
                (a, b),
                (0, 0) | (0, 1) | (1, 0) | (1, 1) | (0, 2) | (2, 0) | (2, 2)
            )
        };
        let mut held: std::collections::HashMap<u64, Vec<LockTarget>> = Default::default();
        let targets: Vec<LockTarget> = {
            let mut v = vec![LockTarget::table(1)];
            for r in 0..4 {
                v.push(LockTarget::row(1, r));
            }
            v
        };
        for op in ops {
            match op {
                LockOp::Lock { txn, row, mode } => {
                    let target = match row {
                        Some(r) => LockTarget::row(1, r),
                        None => LockTarget::table(1),
                    };
                    if mgr.lock(txn, target, modes[mode as usize]).is_ok() {
                        held.entry(txn).or_default().push(target);
                    }
                }
                LockOp::Release { txn } => {
                    if let Some(ts) = held.remove(&txn) {
                        mgr.release_all(txn, ts);
                    }
                }
            }
            // Invariant: for every target, all pairs of holders' mode bits
            // are pairwise compatible.
            for t in &targets {
                let holders = mgr.holders(*t);
                for (i, (txa, ma)) in holders.iter().enumerate() {
                    for (txb, mb) in holders.iter().skip(i + 1) {
                        prop_assert_ne!(txa, txb);
                        for a in 0..4u8 {
                            for b in 0..4u8 {
                                if ma & (1 << a) != 0 && mb & (1 << b) != 0 {
                                    prop_assert!(
                                        compat(a, b),
                                        "incompatible modes {a} vs {b} on {t:?}"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Group-commit invariants
// ---------------------------------------------------------------------------

use std::sync::Arc;

use faultkit::disk::{DiskFaultKind, DiskPlan};
use sqlengine::wal::log::{GroupCommit, LogManager, LogRecord, LogStore};

/// What one committing session observed for one commit.
#[derive(Debug)]
struct CommitObs {
    txn: u64,
    acked: bool,
    /// Commit record LSN and the flush watermark read at the ack.
    lsn: u64,
    flushed_at_ack: u64,
    /// `flushed_lsn()` samples in program order on this thread.
    watermark: Vec<u64>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Concurrent committers through the group-commit path, with an
    /// optional injected fsync failure partway through. Invariants:
    ///
    /// * the flush watermark is monotone (per observing thread);
    /// * an acked commit's LSN is below the watermark at ack time —
    ///   durability precedes acknowledgment;
    /// * one fsync never covers a gap: the durable stream re-parses as
    ///   one contiguous CRC-clean record run, and the watermark equals
    ///   the durable length;
    /// * fail-stop covers the whole batch: the durable commit set is
    ///   *exactly* the acked set — an errored waiter's record never
    ///   reached the device, an acked one always did.
    #[test]
    fn group_commit_acks_are_durable_and_gap_free(
        sessions in 1usize..5,
        commits_per in 1usize..4,
        max_batch in 1usize..6,
        max_wait_us in 0u64..400,
        fail_at in prop::option::of(1u64..5),
    ) {
        use std::time::Duration;
        let store = Arc::new(LogStore::new());
        let log = Arc::new(LogManager::with_group(
            Arc::clone(&store),
            GroupCommit::on(max_batch, Duration::from_micros(max_wait_us)),
        ));
        if let Some(n) = fail_at {
            store.set_fault_plan(Some(DiskPlan::at(DiskFaultKind::FsyncFail, n)));
        }

        let obs: Vec<CommitObs> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..sessions)
                .map(|t| {
                    let log = Arc::clone(&log);
                    s.spawn(move || {
                        let mut out = Vec::new();
                        for i in 0..commits_per {
                            let txn = (t * 100 + i) as u64;
                            let mut watermark = vec![log.flushed_lsn()];
                            let lsn = log.append(&LogRecord::Commit { txn });
                            let acked = log.commit_flush(lsn).is_ok();
                            let flushed_at_ack = log.flushed_lsn();
                            watermark.push(flushed_at_ack);
                            out.push(CommitObs { txn, acked, lsn, flushed_at_ack, watermark });
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });

        for o in &obs {
            prop_assert!(
                o.watermark.windows(2).all(|w| w[0] <= w[1]),
                "watermark went backwards: {o:?}"
            );
            if o.acked {
                prop_assert!(
                    o.flushed_at_ack > o.lsn,
                    "acked before durable: {o:?}"
                );
            }
        }

        // Contiguity: a clean re-parse of the durable stream is the
        // no-gap proof (`records_from` walks frame to frame from 0 and
        // fails on any hole), and the watermark matches its end.
        let recs = store.records_from(0).unwrap();
        prop_assert_eq!(log.flushed_lsn(), store.durable_len());

        let mut durable: Vec<u64> = recs
            .iter()
            .map(|(_, r)| match r {
                LogRecord::Commit { txn } => *txn,
                other => panic!("unexpected record {other:?}"),
            })
            .collect();
        durable.sort_unstable();
        let mut acked: Vec<u64> = obs.iter().filter(|o| o.acked).map(|o| o.txn).collect();
        acked.sort_unstable();
        prop_assert_eq!(durable, acked);

        // If the device failed, the manager is poisoned and every
        // commit that raced the failed batch errored out (fail-stop for
        // the whole batch, checked via the exact set equality above).
        if fail_at.is_some() && obs.iter().any(|o| !o.acked) {
            prop_assert!(log.is_poisoned());
        }
    }
}

// ---------------------------------------------------------------------------
// Crash-recovery equivalence
// ---------------------------------------------------------------------------

/// A scripted workload: a sequence of transactions, each a list of ops,
/// each transaction either committed or left in-flight at the crash.
#[derive(Debug, Clone)]
enum Op {
    Insert(i64),
    Delete(i64),
    Update(i64, i64),
}

fn arb_txn() -> impl Strategy<Value = (Vec<Op>, bool)> {
    (
        prop::collection::vec(
            prop_oneof![
                (0i64..64).prop_map(Op::Insert),
                (0i64..64).prop_map(Op::Delete),
                ((0i64..64), (0i64..1000)).prop_map(|(k, v)| Op::Update(k, v)),
            ],
            1..8,
        ),
        any::<bool>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Apply transactions through the real engine; crash without a clean
    /// shutdown; recover; the surviving state must equal replaying only
    /// the *committed* transactions against an in-memory model.
    #[test]
    fn recovery_preserves_exactly_the_committed_state(
        txns in prop::collection::vec(arb_txn(), 1..10)
    ) {
        let durable = Durable::new(DiskModel::default());
        let mut model: std::collections::BTreeMap<i64, i64> = std::collections::BTreeMap::new();
        {
            let engine = Engine::recover(&durable, RecoveryConfig::default()).unwrap();
            let sid = engine.create_session().unwrap();
            engine
                .execute(sid, "CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
                .unwrap();
            for (ops, commit) in &txns {
                engine.execute(sid, "BEGIN TRAN").unwrap();
                let mut shadow = model.clone();
                let mut ok = true;
                for op in ops {
                    let r = match op {
                        Op::Insert(k) => {
                            let r = engine.execute(sid, &format!("INSERT INTO kv VALUES ({k}, 0)"));
                            if r.is_ok() {
                                shadow.insert(*k, 0);
                            }
                            r.map(|_| ())
                        }
                        Op::Delete(k) => {
                            let r = engine.execute(sid, &format!("DELETE FROM kv WHERE k = {k}"));
                            if r.is_ok() {
                                shadow.remove(k);
                            }
                            r.map(|_| ())
                        }
                        Op::Update(k, v) => {
                            let r = engine
                                .execute(sid, &format!("UPDATE kv SET v = {v} WHERE k = {k}"));
                            if r.is_ok() && shadow.contains_key(k) {
                                shadow.insert(*k, *v);
                            }
                            r.map(|_| ())
                        }
                    };
                    if r.is_err() {
                        // Duplicate-key insert aborts the transaction.
                        ok = false;
                        break;
                    }
                }
                if ok && *commit {
                    engine.execute(sid, "COMMIT").unwrap();
                    model = shadow;
                }
                // else: either errored (already rolled back) or left
                // in-flight — don't commit; the model keeps its old state.
                else if ok {
                    // Leave the transaction open and start a new session so
                    // the next BEGIN TRAN is legal; its locks die with the
                    // crash. To keep the script simple, roll it back here
                    // with probability implied by `commit=false`.
                    engine.execute(sid, "ROLLBACK").unwrap();
                }
            }
            // Make everything written so far durable-or-lost per WAL rules,
            // then crash without checkpointing.
            engine.storage().log.flush_all().unwrap();
            durable.fence();
        }

        let engine = Engine::recover(&durable, RecoveryConfig::default()).unwrap();
        let sid = engine.create_session().unwrap();
        let (_, rows) = engine
            .execute_collect(sid, "SELECT k, v FROM kv ORDER BY k")
            .unwrap();
        let recovered: Vec<(i64, i64)> = rows
            .iter()
            .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
            .collect();
        let expected: Vec<(i64, i64)> = model.into_iter().collect();
        prop_assert_eq!(recovered, expected);
    }

    /// Aggregations computed by the engine agree with computing them on
    /// the fetched base data (metamorphic test on GROUP BY/SUM/COUNT).
    #[test]
    fn group_by_agrees_with_model(rows in prop::collection::vec((0i64..6, -50i64..50), 1..60)) {
        let durable = Durable::new(DiskModel::default());
        let engine = Engine::recover(&durable, RecoveryConfig::default()).unwrap();
        let sid = engine.create_session().unwrap();
        engine
            .execute(sid, "CREATE TABLE g (grp INT, v INT)")
            .unwrap();
        let vals: Vec<String> = rows.iter().map(|(g, v)| format!("({g}, {v})")).collect();
        engine
            .execute(sid, &format!("INSERT INTO g VALUES {}", vals.join(",")))
            .unwrap();
        let (_, out) = engine
            .execute_collect(
                sid,
                "SELECT grp, COUNT(*), SUM(v), MIN(v), MAX(v) FROM g GROUP BY grp ORDER BY grp",
            )
            .unwrap();

        let mut model: std::collections::BTreeMap<i64, Vec<i64>> = Default::default();
        for (g, v) in &rows {
            model.entry(*g).or_default().push(*v);
        }
        prop_assert_eq!(out.len(), model.len());
        for (row, (g, vs)) in out.iter().zip(model.iter()) {
            prop_assert_eq!(row[0].as_i64().unwrap(), *g);
            prop_assert_eq!(row[1].as_i64().unwrap(), vs.len() as i64);
            prop_assert_eq!(row[2].as_i64().unwrap(), vs.iter().sum::<i64>());
            prop_assert_eq!(row[3].as_i64().unwrap(), *vs.iter().min().unwrap());
            prop_assert_eq!(row[4].as_i64().unwrap(), *vs.iter().max().unwrap());
        }
    }
}
