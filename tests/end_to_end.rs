//! Full-stack integration tests: application → Phoenix → ODBC driver →
//! wire protocol → simulated network → server → SQL engine → WAL/disk,
//! with crash/restart cycles in the middle.

use std::time::Duration;

use integration_tests::{test_server, Chaos};
use phoenix::{CacheMode, PhoenixConfig, PhoenixConnection, ReconnectPolicy, RepositionMode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqlengine::{Error, Value};
use workloads::tpcc::{self, txns, TpccScale};
use workloads::tpch::{self, queries, TpchScale};
use workloads::{EngineClient, SqlClient};

fn px_cfg() -> PhoenixConfig {
    let mut cfg = PhoenixConfig {
        reconnect: ReconnectPolicy::fixed(200, Duration::from_millis(10)),
        ..Default::default()
    };
    cfg.driver.buffer_bytes = 512;
    cfg.driver.query_timeout = Some(Duration::from_secs(30));
    cfg
}

#[test]
fn tpch_queries_agree_between_native_and_phoenix() {
    // The same query must produce identical rows whether it runs over
    // native ODBC or through Phoenix's persist-and-reopen path.
    let server = test_server();
    {
        let engine = server.engine().unwrap();
        let client = EngineClient::new(engine).unwrap();
        tpch::load(&client, TpchScale::new(0.002), 31).unwrap();
    }
    let native = odbcsim::OdbcConnection::connect(&server, Default::default()).unwrap();
    let px = PhoenixConnection::connect(&server, px_cfg()).unwrap();

    // A representative slice of the suite (keeps test time reasonable).
    for qi in [1usize, 3, 5, 6, 10, 11, 13, 14, 19, 22] {
        let sql = &queries::all_queries()[qi - 1].1;
        let a = native.query(sql).unwrap();
        let b = px.query(sql).unwrap();
        assert_eq!(a, b, "Q{qi} differs between native and Phoenix");
    }
}

#[test]
fn tpcc_stays_consistent_under_chaos_with_phoenix() {
    // Run TPC-C transactions through Phoenix while the server crashes
    // repeatedly; afterwards the database must satisfy the TPC-C
    // consistency conditions relating districts, orders and order lines.
    let server = test_server();
    let scale = TpccScale::tiny();
    {
        let engine = server.engine().unwrap();
        let client = EngineClient::new(engine).unwrap();
        tpcc::load(&client, scale, 77).unwrap();
    }

    let px = PhoenixConnection::connect(&server, px_cfg()).unwrap();
    let chaos = Chaos::start(
        server.clone(),
        Duration::from_millis(250),
        Duration::from_millis(50),
    );

    // Run transactions for a fixed wall-clock window so several crashes
    // land inside the workload regardless of machine speed.
    let mut rng = StdRng::seed_from_u64(123);
    let mut committed_new_orders = 0u64;
    let deadline = std::time::Instant::now() + Duration::from_millis(1600);
    let mut i = 0;
    while std::time::Instant::now() < deadline || i < 30 {
        let t = match i % 5 {
            0 | 1 => txns::TxnType::NewOrder,
            2 | 3 => txns::TxnType::Payment,
            _ => txns::TxnType::OrderStatus,
        };
        i += 1;
        match txns::run_with_retries(&px, &mut rng, &scale, t, 100) {
            Ok((txns::TxnOutcome::Committed, _)) => {
                if t == txns::TxnType::NewOrder {
                    committed_new_orders += 1;
                }
            }
            Ok((txns::TxnOutcome::UserAborted, _)) => {}
            Err(e) => panic!("txn failed permanently: {e}"),
        }
    }
    let crashes = chaos.stop();
    assert!(crashes >= 1, "chaos must have crashed at least once");

    // Consistency: d_next_o_id - 1 == max(o_id) == max(no less) per district,
    // and each order's line count matches o_ol_cnt.
    for d in 1..=scale.districts_per_warehouse {
        let next = px
            .query(&format!(
                "SELECT d_next_o_id FROM district WHERE d_w_id = 1 AND d_id = {d}"
            ))
            .unwrap()[0][0]
            .as_i64()
            .unwrap();
        let max_o = px
            .query(&format!(
                "SELECT MAX(o_id) FROM orders WHERE o_w_id = 1 AND o_d_id = {d}"
            ))
            .unwrap()[0][0]
            .as_i64()
            .unwrap();
        assert_eq!(next - 1, max_o, "district {d} counter vs orders");
    }
    let mismatched = px
        .query(
            "SELECT COUNT(*) FROM orders, \
             (SELECT ol_w_id AS w, ol_d_id AS d, ol_o_id AS o, COUNT(*) AS n \
              FROM order_line GROUP BY ol_w_id, ol_d_id, ol_o_id) lines \
             WHERE o_w_id = w AND o_d_id = d AND o_id = o AND o_ol_cnt <> n",
        )
        .unwrap()[0][0]
        .as_i64()
        .unwrap();
    assert_eq!(mismatched, 0, "order_line counts consistent with orders");
    assert!(committed_new_orders > 0);
    px.close();
}

#[test]
fn long_result_delivery_with_many_crashes_is_exact() {
    // Deliver a 3000-row ordered result while crashing every 200 ms; the
    // application must observe every row exactly once, in order.
    let server = test_server();
    {
        let engine = server.engine().unwrap();
        let client = EngineClient::new(engine).unwrap();
        client
            .execute("CREATE TABLE seq (n INT PRIMARY KEY, sq INT)")
            .unwrap();
        for chunk in (0..3000i64).collect::<Vec<_>>().chunks(500) {
            let vals: Vec<String> = chunk.iter().map(|n| format!("({n}, {})", n * n)).collect();
            client
                .execute(&format!("INSERT INTO seq VALUES {}", vals.join(",")))
                .unwrap();
        }
        server.engine().unwrap().checkpoint().unwrap();
    }
    for mode in [RepositionMode::Server, RepositionMode::Client] {
        let mut cfg = px_cfg();
        cfg.reposition = mode;
        let px = PhoenixConnection::connect(&server, cfg).unwrap();
        px.exec("SELECT n, sq FROM seq ORDER BY n").unwrap();
        let chaos = Chaos::start(
            server.clone(),
            Duration::from_millis(200),
            Duration::from_millis(40),
        );
        let mut expected = 0i64;
        while let Some(row) = px.fetch().unwrap() {
            assert_eq!(row[0], Value::Int(expected), "mode {mode:?}");
            assert_eq!(row[1], Value::Int(expected * expected));
            expected += 1;
            // Slow the reader down so crashes land mid-delivery.
            if expected % 100 == 0 {
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        assert_eq!(expected, 3000, "mode {mode:?} delivered all rows");
        chaos.stop();
        px.close();
    }
}

#[test]
fn cached_and_persisted_results_agree() {
    let server = test_server();
    {
        let engine = server.engine().unwrap();
        let client = EngineClient::new(engine).unwrap();
        tpch::load(&client, TpchScale::new(0.001), 5).unwrap();
    }
    let persist = PhoenixConnection::connect(&server, px_cfg()).unwrap();
    let mut cache_cfg = px_cfg();
    cache_cfg.cache = CacheMode::enabled(1 << 20);
    let cached = PhoenixConnection::connect(&server, cache_cfg).unwrap();

    for qi in [1usize, 6, 11, 14] {
        let sql = &queries::all_queries()[qi - 1].1;
        let a = persist.query(sql).unwrap();
        let b = cached.query(sql).unwrap();
        assert_eq!(a, b, "Q{qi} differs between persist and cache modes");
    }
    assert!(cached.stats().results_cached >= 4);
    assert!(persist.stats().results_persisted >= 4);
}

#[test]
fn native_application_fails_where_phoenix_survives() {
    // The contrast the paper draws: the same workload kills a native
    // application but is masked under Phoenix.
    let server = test_server();
    {
        let engine = server.engine().unwrap();
        let client = EngineClient::new(engine).unwrap();
        client
            .execute("CREATE TABLE t (a INT PRIMARY KEY)")
            .unwrap();
        let vals: Vec<String> = (0..2000).map(|i| format!("({i})")).collect();
        for c in vals.chunks(500) {
            client
                .execute(&format!("INSERT INTO t VALUES {}", c.join(",")))
                .unwrap();
        }
    }

    // Native: crash mid-fetch → connection-fatal error reaches the app.
    let native = odbcsim::OdbcConnection::connect(
        &server,
        odbcsim::DriverConfig {
            buffer_bytes: 256,
            query_timeout: Some(Duration::from_secs(5)),
            ..Default::default()
        },
    )
    .unwrap();
    let mut st = native.exec_direct("SELECT a FROM t").unwrap();
    for _ in 0..50 {
        st.fetch().unwrap();
    }
    server.crash();
    server.restart().unwrap();
    let err = loop {
        match st.fetch() {
            Ok(Some(_)) => {}
            Ok(None) => panic!("native result cannot complete across a crash"),
            Err(e) => break e,
        }
    };
    assert!(err.is_connection_fatal());
    assert!(matches!(err, Error::ServerShutdown | Error::Timeout));

    // Phoenix: the same scenario is invisible.
    let px = PhoenixConnection::connect(&server, px_cfg()).unwrap();
    px.exec("SELECT a FROM t ORDER BY a").unwrap();
    for _ in 0..50 {
        px.fetch().unwrap().unwrap();
    }
    server.crash();
    server.restart().unwrap();
    let rest = px.fetch_all().unwrap();
    assert_eq!(rest.len(), 1950);
}
