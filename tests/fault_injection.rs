//! Targeted fault injection: crashes at specific points of the Phoenix
//! protocol and of server-side recovery, including crash-during-recovery
//! (recovery idempotence, §2.3).

use std::time::Duration;

use integration_tests::test_server;
use phoenix::{PhoenixConfig, PhoenixConnection, ReconnectPolicy};
use sqlengine::engine::{Durable, Engine};
use sqlengine::storage::disk::DiskModel;
use sqlengine::wal::recovery::RecoveryConfig;
use sqlengine::Value;
use workloads::{EngineClient, SqlClient};

fn px_cfg() -> PhoenixConfig {
    let mut cfg = PhoenixConfig {
        reconnect: ReconnectPolicy {
            max_attempts: 300,
            retry_interval: Duration::from_millis(5),
        },
        ..Default::default()
    };
    cfg.driver.buffer_bytes = 256;
    cfg.driver.query_timeout = Some(Duration::from_secs(20));
    cfg
}

fn seed_table(server: &wire::DbServer, rows: i64) {
    let engine = server.engine().unwrap();
    let client = EngineClient::new(engine).unwrap();
    client
        .execute("CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(20))")
        .unwrap();
    let vals: Vec<String> = (0..rows).map(|i| format!("({i}, 'row-{i}')")).collect();
    for c in vals.chunks(400) {
        client
            .execute(&format!("INSERT INTO t VALUES {}", c.join(",")))
            .unwrap();
    }
    server.engine().unwrap().checkpoint().unwrap();
}

/// Crash at every statement boundary of the persist sequence: the exec
/// must still succeed and deliver the full, correct result.
#[test]
fn crash_at_each_persist_step_is_masked() {
    for crash_after_ms in [0u64, 1, 2, 4, 8, 16] {
        let server = test_server();
        seed_table(&server, 1000);
        let px = PhoenixConnection::connect(&server, px_cfg()).unwrap();

        // Crash shortly after exec starts; restart shortly after.
        let s2 = server.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(crash_after_ms));
            s2.crash();
            std::thread::sleep(Duration::from_millis(30));
            s2.restart().unwrap();
        });
        let result = px.query_all("SELECT a FROM t ORDER BY a");
        h.join().unwrap();
        let rows = result.unwrap_or_else(|e| panic!("crash_after={crash_after_ms}ms: {e}"));
        assert_eq!(rows.len(), 1000, "crash_after={crash_after_ms}ms");
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r[0], Value::Int(i as i64));
        }
        px.close();
    }
}

/// Crash *during recovery* repeatedly: recovery is idempotent, so the
/// session still comes back and completes delivery.
#[test]
fn crash_during_recovery_is_handled() {
    let server = test_server();
    seed_table(&server, 2000);
    let px = PhoenixConnection::connect(&server, px_cfg()).unwrap();
    px.exec("SELECT a FROM t ORDER BY a").unwrap();
    let mut got = 0;
    for _ in 0..200 {
        px.fetch().unwrap().unwrap();
        got += 1;
    }
    // First crash. While Phoenix reconnects, crash twice more.
    server.crash();
    let s2 = server.clone();
    let h = std::thread::spawn(move || {
        for _ in 0..3 {
            std::thread::sleep(Duration::from_millis(40));
            s2.restart().unwrap();
            std::thread::sleep(Duration::from_millis(15));
            s2.crash();
        }
        std::thread::sleep(Duration::from_millis(40));
        s2.restart().unwrap();
    });
    while px.fetch().unwrap().is_some() {
        got += 1;
    }
    h.join().unwrap();
    assert_eq!(got, 2000);
    assert!(px.stats().recoveries >= 1);
}

/// Engine-level: a crash mid-recovery must not corrupt durable state —
/// run recovery, "crash" before any checkpoint, recover again, repeat.
#[test]
fn repeated_recovery_without_checkpoint_converges() {
    let durable = Durable::new(DiskModel::default());
    {
        let engine = Engine::recover(&durable, RecoveryConfig::default()).unwrap();
        let sid = engine.create_session().unwrap();
        engine
            .execute(sid, "CREATE TABLE t (a INT PRIMARY KEY)")
            .unwrap();
        engine
            .execute(sid, "INSERT INTO t VALUES (1), (2), (3)")
            .unwrap();
        // A loser transaction, durably logged.
        engine.execute(sid, "BEGIN TRAN").unwrap();
        engine.execute(sid, "INSERT INTO t VALUES (99)").unwrap();
        engine.storage().log.flush_all().unwrap();
        durable.fence(); // crash
    }
    for round in 0..5 {
        let engine = Engine::recover(&durable, RecoveryConfig::default()).unwrap();
        let sid = engine.create_session().unwrap();
        let (_, rows) = engine
            .execute_collect(sid, "SELECT a FROM t ORDER BY a")
            .unwrap();
        assert_eq!(
            rows.iter()
                .map(|r| r[0].as_i64().unwrap())
                .collect::<Vec<_>>(),
            vec![1, 2, 3],
            "round {round}"
        );
        durable.fence(); // crash again without any new work
    }
}

/// The status table prevents double-apply when the crash lands between
/// the update's commit and the client seeing the reply: force that window
/// by crashing the server from *inside* the gap using a saturated pipe.
#[test]
fn exactly_once_updates_under_randomized_crashes() {
    let server = test_server();
    {
        let engine = server.engine().unwrap();
        let client = EngineClient::new(engine).unwrap();
        client
            .execute("CREATE TABLE acc (id INT PRIMARY KEY, n INT)")
            .unwrap();
        client.execute("INSERT INTO acc VALUES (1, 0)").unwrap();
    }
    let px = PhoenixConnection::connect(&server, px_cfg()).unwrap();
    let total = 40;
    for i in 0..total {
        if i % 7 == 3 {
            // Crash concurrently with the update round trips.
            let s2 = server.clone();
            let h = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_micros(300));
                s2.crash();
                std::thread::sleep(Duration::from_millis(25));
                s2.restart().unwrap();
            });
            let r = px.exec("UPDATE acc SET n = n + 1 WHERE id = 1").unwrap();
            assert_eq!(r, phoenix::ExecKind::RowCount(1));
            h.join().unwrap();
        } else {
            px.exec("UPDATE acc SET n = n + 1 WHERE id = 1").unwrap();
        }
    }
    let n = px.query_all("SELECT n FROM acc WHERE id = 1").unwrap()[0][0]
        .as_i64()
        .unwrap();
    assert_eq!(n, total, "each update applied exactly once");
}

/// After a graceful `SHUTDOWN` (checkpoint + stop), restart recovery has
/// nothing to redo and the data is intact.
#[test]
fn graceful_shutdown_checkpoint_then_restart() {
    let server = test_server();
    seed_table(&server, 100);
    let conn = odbcsim::OdbcConnection::connect(&server, Default::default()).unwrap();
    let _ = conn.exec_direct("SHUTDOWN"); // graceful: connection drops
    assert!(!server.is_up());
    let stats = server.restart().unwrap();
    // Only the checkpoint itself sits in the tail; no data redo needed.
    assert_eq!(stats.losers_rolled_back, 0);
    let c2 = odbcsim::OdbcConnection::connect(&server, Default::default()).unwrap();
    let mut st = c2.exec_direct("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(st.fetch().unwrap().unwrap()[0], Value::Int(100));
}
