//! Deterministic fault injection: every crash scenario is a crashpoint
//! schedule, not a wall-clock sleep. Each test records the crashpoint
//! trace of its scenario once, then replays the scenario per recorded hit
//! with a [`faultkit::FaultPlan`] armed to crash the server at exactly
//! that point (§2.3: Phoenix masks a crash at *any* point of the
//! protocol). A failing schedule prints a one-line
//! `FAULTKIT_REPLAY='scenario:name#nth'` spec that reproduces it
//! bit-for-bit.
//!
//! Every test here — including the ones that never arm a plan — opens a
//! `faultkit::session()` first: the crashpoint registry is process-global,
//! so tests that merely run servers must not interleave with a test whose
//! plan is armed.

use std::collections::BTreeSet;
use std::time::Duration;

use faultkit::FaultPlan;
use integration_tests::{
    crash_restart_action, explore, record_trace, restart_with_retry, test_server,
};
use phoenix::{PhoenixConfig, PhoenixConnection, ReconnectPolicy};
use sqlengine::engine::{Durable, Engine};
use sqlengine::storage::disk::DiskModel;
use sqlengine::wal::recovery::RecoveryConfig;
use sqlengine::Value;
use wire::DbServer;
use workloads::{EngineClient, SqlClient};

fn px_cfg() -> PhoenixConfig {
    let mut cfg = PhoenixConfig {
        reconnect: ReconnectPolicy::fixed(300, Duration::from_millis(5)),
        ..Default::default()
    };
    cfg.driver.buffer_bytes = 256;
    cfg.driver.query_timeout = Some(Duration::from_secs(20));
    cfg
}

fn seed_table(server: &wire::DbServer, rows: i64) {
    let engine = server.engine().unwrap();
    let client = EngineClient::new(engine).unwrap();
    client
        .execute("CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(20))")
        .unwrap();
    let vals: Vec<String> = (0..rows).map(|i| format!("({i}, 'row-{i}')")).collect();
    for c in vals.chunks(400) {
        client
            .execute(&format!("INSERT INTO t VALUES {}", c.join(",")))
            .unwrap();
    }
    server.engine().unwrap().checkpoint().unwrap();
}

// ---------------------------------------------------------------------------
// Tentpole: exhaustive single-crash enumeration over the persist protocol
// ---------------------------------------------------------------------------

const QUERY_ROWS: i64 = 48;

/// Build the fixed scenario state: seeded server + Phoenix session.
/// Everything here runs before recording/arming, so setup hits are not
/// part of the schedule space.
fn query_scenario_setup() -> (DbServer, PhoenixConnection) {
    let server = test_server();
    seed_table(&server, QUERY_ROWS);
    let px = PhoenixConnection::connect(&server, px_cfg()).unwrap();
    (server, px)
}

/// The scenario body whose every crashpoint hit gets enumerated: one
/// persisted query, delivered fully and in order.
fn run_query_scenario(px: &PhoenixConnection) {
    let rows = px.query_all("SELECT a FROM t ORDER BY a").unwrap();
    assert_eq!(rows.len(), QUERY_ROWS as usize);
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(r[0], Value::Int(i as i64));
    }
}

/// Crash at every crashpoint the persist/deliver protocol hits — the
/// exec must still succeed and deliver the full, correct result.
#[test]
fn crash_at_each_crashpoint_is_masked() {
    let fk = faultkit::session();
    let (server, px) = query_scenario_setup();
    let trace = record_trace(&fk, || run_query_scenario(&px));
    px.close();
    drop(server);

    explore("persist_query", &trace, |plan| {
        let (server, px) = query_scenario_setup();
        let armed = fk.arm(plan, crash_restart_action(&server));
        run_query_scenario(&px);
        let fired = armed.fired();
        drop(armed);
        assert!(fired.is_some(), "plan {plan:?} never fired");
        px.close();
    });
}

// ---------------------------------------------------------------------------
// Crash during recovery
// ---------------------------------------------------------------------------

/// Crash *during recovery*, at each recovery phase in turn: recovery is
/// idempotent, so the session still comes back and completes delivery.
/// (The crash-mid-recovery is a durable fence at the exact instrumented
/// point — the restart fails there and is simply run again.)
#[test]
fn crash_during_recovery_is_handled() {
    let fk = faultkit::session();
    let server = test_server();
    seed_table(&server, 400);
    let px = PhoenixConnection::connect(&server, px_cfg()).unwrap();
    px.exec("SELECT a FROM t ORDER BY a").unwrap();
    let mut got = 0u64;
    for _ in 0..100 {
        px.fetch().unwrap().unwrap();
        got += 1;
    }

    // Learn which recovery-phase crashpoints one restart hits.
    server.crash();
    let restart_trace = record_trace(&fk, || restart_with_retry(&server, 10));
    let recovery_points: Vec<&str> = restart_trace
        .iter()
        .filter(|p| p.name.starts_with("recovery.") && p.nth == 1)
        .map(|p| p.name)
        .collect();
    assert!(
        recovery_points.len() >= 3,
        "expected several recovery-phase crashpoints, got {recovery_points:?}"
    );

    // Now crash once per recovery phase, interrupting that restart's
    // recovery at exactly the chosen point.
    for name in recovery_points {
        // More rows than the driver can have buffered, so every iteration
        // touches the network and must mask the preceding crash.
        for _ in 0..30 {
            px.fetch().unwrap().unwrap();
            got += 1;
        }
        server.crash();
        let s2 = server.clone();
        let armed = fk.arm(&FaultPlan::at(name, 1), move || s2.durable().fence());
        // The restart's recovery is interrupted at `name`: either it
        // notices the fence when it writes (restart fails, the retry loop
        // recovers again), or — with nothing left to write — it completes
        // against the fenced durable, which is the same as crashing the
        // instant recovery finished. Probe with a write and crash/restart
        // once more in that case.
        restart_with_retry(&server, 100);
        assert!(server.is_up());
        let fired = armed.fired();
        drop(armed);
        assert!(fired.is_some(), "recovery point {name} never hit");
        let probe = odbcsim::OdbcConnection::connect(&server, Default::default())
            .and_then(|c| c.exec_direct("CREATE TABLE __hc (x INT)").map(|_| c))
            .and_then(|c| c.exec_direct("DROP TABLE __hc").map(|_| ()));
        if probe.is_err() {
            server.crash();
            restart_with_retry(&server, 100);
        }
    }

    while px.fetch().unwrap().is_some() {
        got += 1;
    }
    assert_eq!(got, 400);
    assert!(px.stats().recoveries >= 4);
}

/// Engine-level exhaustive version: crash (fence) at *every* crashpoint
/// recovery itself hits — including WAL appends/flushes of CLRs and the
/// per-loser undo step — then recover again and converge.
#[test]
fn crash_at_each_recovery_step_is_idempotent() {
    let fk = faultkit::session();

    // Deterministic durable state with committed rows and a durable loser.
    fn loser_state() -> Durable {
        let durable = Durable::new(DiskModel::default());
        let engine = Engine::recover(&durable, RecoveryConfig::default()).unwrap();
        let sid = engine.create_session().unwrap();
        engine
            .execute(sid, "CREATE TABLE t (a INT PRIMARY KEY)")
            .unwrap();
        engine
            .execute(sid, "INSERT INTO t VALUES (1), (2), (3)")
            .unwrap();
        engine.execute(sid, "BEGIN TRAN").unwrap();
        engine.execute(sid, "INSERT INTO t VALUES (99)").unwrap();
        engine.storage().log.flush_all().unwrap();
        durable.fence(); // crash
        durable
    }

    let d0 = loser_state();
    let trace = record_trace(&fk, || {
        Engine::recover(&d0, RecoveryConfig::default()).unwrap();
    });
    assert!(
        trace.iter().any(|p| p.name == "recovery.undo"),
        "loser state must exercise undo; trace: {trace:?}"
    );

    explore("recovery_steps", &trace, |plan| {
        let durable = loser_state();
        let fence_half = Durable {
            disk: std::sync::Arc::clone(&durable.disk),
            log: std::sync::Arc::clone(&durable.log),
        };
        let armed = fk.arm(plan, move || fence_half.fence());
        // The interrupted recovery fails (its writer epoch is fenced at the
        // instrumented point); that *is* the crash-during-recovery.
        let _ = Engine::recover(&durable, RecoveryConfig::default());
        let fired = armed.fired();
        drop(armed);
        assert!(fired.is_some(), "plan {plan:?} never fired");
        // Recovery after the crash-during-recovery converges.
        let engine = Engine::recover(&durable, RecoveryConfig::default()).unwrap();
        let sid = engine.create_session().unwrap();
        let (_, rows) = engine
            .execute_collect(sid, "SELECT a FROM t ORDER BY a")
            .unwrap();
        assert_eq!(
            rows.iter()
                .map(|r| r[0].as_i64().unwrap())
                .collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    });
}

/// Engine-level: a crash mid-recovery must not corrupt durable state —
/// run recovery, "crash" before any checkpoint, recover again, repeat.
#[test]
fn repeated_recovery_without_checkpoint_converges() {
    let _fk = faultkit::session();
    let durable = Durable::new(DiskModel::default());
    {
        let engine = Engine::recover(&durable, RecoveryConfig::default()).unwrap();
        let sid = engine.create_session().unwrap();
        engine
            .execute(sid, "CREATE TABLE t (a INT PRIMARY KEY)")
            .unwrap();
        engine
            .execute(sid, "INSERT INTO t VALUES (1), (2), (3)")
            .unwrap();
        // A loser transaction, durably logged.
        engine.execute(sid, "BEGIN TRAN").unwrap();
        engine.execute(sid, "INSERT INTO t VALUES (99)").unwrap();
        engine.storage().log.flush_all().unwrap();
        durable.fence(); // crash
    }
    for round in 0..5 {
        let engine = Engine::recover(&durable, RecoveryConfig::default()).unwrap();
        let sid = engine.create_session().unwrap();
        let (_, rows) = engine
            .execute_collect(sid, "SELECT a FROM t ORDER BY a")
            .unwrap();
        assert_eq!(
            rows.iter()
                .map(|r| r[0].as_i64().unwrap())
                .collect::<Vec<_>>(),
            vec![1, 2, 3],
            "round {round}"
        );
        durable.fence(); // crash again without any new work
    }
}

// ---------------------------------------------------------------------------
// Exactly-once modifications
// ---------------------------------------------------------------------------

fn update_scenario_setup() -> (DbServer, PhoenixConnection) {
    let server = test_server();
    {
        let engine = server.engine().unwrap();
        let client = EngineClient::new(engine).unwrap();
        client
            .execute("CREATE TABLE acc (id INT PRIMARY KEY, n INT)")
            .unwrap();
        client.execute("INSERT INTO acc VALUES (1, 0)").unwrap();
    }
    let px = PhoenixConnection::connect(&server, px_cfg()).unwrap();
    (server, px)
}

fn run_update_scenario(px: &PhoenixConnection) {
    let r = px.exec("UPDATE acc SET n = n + 1 WHERE id = 1").unwrap();
    assert_eq!(r, phoenix::ExecKind::RowCount(1));
}

/// The status table prevents double-apply wherever the crash lands —
/// including the exact window between the wrapped transaction's commit
/// and the client seeing the reply. Enumerate every crashpoint of one
/// wrapped UPDATE and assert the row changed exactly once and the status
/// table recorded the statement exactly once.
#[test]
fn exactly_once_updates_at_every_crashpoint() {
    let fk = faultkit::session();
    let (server, px) = update_scenario_setup();
    let trace = record_trace(&fk, || run_update_scenario(&px));
    px.close();
    drop(server);
    assert!(
        trace.iter().any(|p| p.name == "phoenix.status.commit"),
        "wrapped update must hit the status-table window; trace: {trace:?}"
    );

    explore("wrapped_update", &trace, |plan| {
        let (server, px) = update_scenario_setup();
        let armed = fk.arm(plan, crash_restart_action(&server));
        run_update_scenario(&px);
        let fired = armed.fired();
        drop(armed);
        assert!(fired.is_some(), "plan {plan:?} never fired");

        // Applied exactly once…
        let n = px.query_all("SELECT n FROM acc WHERE id = 1").unwrap()[0][0]
            .as_i64()
            .unwrap();
        assert_eq!(n, 1, "update must apply exactly once");
        // …and recorded exactly once.
        let status = px.query_all("SELECT affected FROM phx_status").unwrap();
        assert_eq!(status.len(), 1, "exactly one status row");
        assert_eq!(status[0][0], Value::Int(1));
        px.close();
    });
}

// ---------------------------------------------------------------------------
// Driver resume semantics at a block boundary (raw odbcsim)
// ---------------------------------------------------------------------------

/// Crash mid-fetch at an exact driver-call boundary (the `odbc.recv`
/// crashpoint fires between pump calls), then redeliver the remainder via
/// `exec_direct_skip`: no row is duplicated, none is dropped.
#[test]
fn fetch_block_resume_at_block_boundary() {
    let fk = faultkit::session();
    // Small buffers so the result cannot be fully client-buffered.
    let mut scfg = wire::ServerConfig::instant_net();
    scfg.net_s2c.buffer_bytes = 256;
    let server = DbServer::start(scfg).unwrap();
    seed_table(&server, 100);
    let cfg = odbcsim::DriverConfig {
        buffer_bytes: 256,
        query_timeout: Some(Duration::from_secs(5)),
        ..Default::default()
    };
    let sql = "SELECT a FROM t ORDER BY a";
    let conn = odbcsim::OdbcConnection::connect(&server, cfg.clone()).unwrap();
    let mut st = conn.exec_direct(sql).unwrap();
    let mut delivered = st.fetch_block(32).unwrap();
    assert_eq!(delivered.len(), 32);
    assert_eq!(st.position(), 32);
    assert!(!st.fully_received(), "result must still be streaming");

    // Crash at the next network read: everything the driver already
    // buffered still counts as delivered; the in-flight rest is lost.
    let armed = fk.arm(
        &FaultPlan::at("odbc.recv", 1),
        crash_restart_action(&server),
    );
    let err = loop {
        match st.fetch() {
            Ok(Some(row)) => delivered.push(row),
            Ok(None) => panic!("result must not complete across the crash"),
            Err(e) => break e,
        }
    };
    assert!(err.is_connection_fatal());
    let fired = armed.fired();
    drop(armed);
    assert!(fired.is_some());

    // Redeliver from the exact boundary: server-side skip of what the
    // application already consumed.
    let c2 = odbcsim::OdbcConnection::connect(&server, cfg).unwrap();
    let mut st2 = c2.exec_direct_skip(sql, delivered.len() as u64).unwrap();
    while let Some(row) = st2.fetch().unwrap() {
        delivered.push(row);
    }
    let got: Vec<i64> = delivered.iter().map(|r| r[0].as_i64().unwrap()).collect();
    let want: Vec<i64> = (0..100).collect();
    assert_eq!(got, want, "no duplicated or dropped rows after redelivery");
}

// ---------------------------------------------------------------------------
// Graceful shutdown
// ---------------------------------------------------------------------------

/// After a graceful `SHUTDOWN` (checkpoint + stop), restart recovery has
/// nothing to redo and the data is intact.
#[test]
fn graceful_shutdown_checkpoint_then_restart() {
    let _fk = faultkit::session();
    let server = test_server();
    seed_table(&server, 100);
    let conn = odbcsim::OdbcConnection::connect(&server, Default::default()).unwrap();
    let _ = conn.exec_direct("SHUTDOWN"); // graceful: connection drops
    assert!(!server.is_up());
    let stats = server.restart().unwrap();
    // Only the checkpoint itself sits in the tail; no data redo needed.
    assert_eq!(stats.losers_rolled_back, 0);
    let c2 = odbcsim::OdbcConnection::connect(&server, Default::default()).unwrap();
    let mut st = c2.exec_direct("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(st.fetch().unwrap().unwrap()[0], Value::Int(100));
}

// ---------------------------------------------------------------------------
// Coverage: the enumeration spans every instrumented layer
// ---------------------------------------------------------------------------

/// The traces the tests above enumerate must cover at least 15 distinct
/// instrumented points spanning persist + WAL + recovery + wire (plus the
/// driver and status-table layers).
#[test]
fn enumeration_covers_all_instrumented_layers() {
    let fk = faultkit::session();
    let mut names: BTreeSet<&'static str> = BTreeSet::new();

    let (server, px) = query_scenario_setup();
    names.extend(
        record_trace(&fk, || run_query_scenario(&px))
            .iter()
            .map(|p| p.name),
    );
    px.close();
    server.crash();
    names.extend(
        record_trace(&fk, || restart_with_retry(&server, 10))
            .iter()
            .map(|p| p.name),
    );
    drop(server);

    let (server, px) = update_scenario_setup();
    names.extend(
        record_trace(&fk, || run_update_scenario(&px))
            .iter()
            .map(|p| p.name),
    );
    px.close();
    drop(server);

    assert!(
        names.len() >= 15,
        "expected >= 15 distinct crashpoints, got {}: {names:?}",
        names.len()
    );
    for layer in [
        "persist.",
        "wal.",
        "recovery.",
        "wire.",
        "odbc.",
        "phoenix.",
    ] {
        assert!(
            names.iter().any(|n| n.starts_with(layer)),
            "no crashpoint from layer {layer:?} in {names:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Property: random modification batches under a seeded single crash
// ---------------------------------------------------------------------------

use proptest::prelude::*;

#[derive(Debug, Clone)]
enum ModOp {
    /// Insert `count` fresh keys (row count = count).
    Insert(u8),
    /// Bump one of the seeded keys (row count = 1).
    Update(u8, i8),
}

fn arb_mods() -> impl Strategy<Value = Vec<ModOp>> {
    prop::collection::vec(
        prop_oneof![
            (1u8..4).prop_map(ModOp::Insert),
            ((0u8..5), (-5i8..6)).prop_map(|(k, d)| ModOp::Update(k, d)),
        ],
        3..8,
    )
}

/// Render the batch into SQL + expected affected counts + a final-state
/// model (key -> value), starting from seeded keys 0..5 with value 0.
fn build_batch(ops: &[ModOp]) -> (Vec<(String, u64)>, std::collections::BTreeMap<i64, i64>) {
    let mut model: std::collections::BTreeMap<i64, i64> = (0..5).map(|k| (k, 0)).collect();
    let mut next_key = 100i64;
    let mut stmts = Vec::new();
    for op in ops {
        match op {
            ModOp::Insert(count) => {
                let vals: Vec<String> = (0..*count)
                    .map(|_| {
                        let k = next_key;
                        next_key += 1;
                        model.insert(k, 0);
                        format!("({k}, 0)")
                    })
                    .collect();
                stmts.push((
                    format!("INSERT INTO kv VALUES {}", vals.join(",")),
                    *count as u64,
                ));
            }
            ModOp::Update(k, d) => {
                let k = *k as i64;
                *model.get_mut(&k).unwrap() += *d as i64;
                stmts.push((format!("UPDATE kv SET v = v + {d} WHERE k = {k}"), 1));
            }
        }
    }
    (stmts, model)
}

fn mod_batch_setup() -> (DbServer, PhoenixConnection) {
    let server = test_server();
    {
        let engine = server.engine().unwrap();
        let client = EngineClient::new(engine).unwrap();
        client
            .execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
            .unwrap();
        client
            .execute("INSERT INTO kv VALUES (0,0),(1,0),(2,0),(3,0),(4,0)")
            .unwrap();
    }
    let px = PhoenixConnection::connect(&server, px_cfg()).unwrap();
    (server, px)
}

/// The base seed for the seeded single-crash schedules; CI pins it via
/// the `FAULTKIT_SEED` environment variable for reproducible runs.
fn fault_seed() -> u64 {
    std::env::var("FAULTKIT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2026)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any single-crash schedule over a random batch of INSERT/UPDATE
    /// statements leaves the status table recording each statement's row
    /// count exactly once, and the final table state equals applying each
    /// statement exactly once.
    #[test]
    fn seeded_single_crash_keeps_status_exactly_once(ops in arb_mods(), salt in any::<u64>()) {
        let fk = faultkit::session();
        let (stmts, model) = build_batch(&ops);

        // Record the batch's trace to size the schedule horizon.
        let (server, px) = mod_batch_setup();
        let trace = record_trace(&fk, || {
            for (sql, expect) in &stmts {
                let r = px.exec(sql).unwrap();
                assert_eq!(r, phoenix::ExecKind::RowCount(*expect));
            }
        });
        px.close();
        drop(server);

        // Replay with a seeded single-crash plan drawn over that horizon.
        let plan = FaultPlan::Seeded {
            seed: fault_seed() ^ salt,
            horizon: trace.len() as u64,
        };
        let (server, px) = mod_batch_setup();
        let armed = fk.arm(&plan, crash_restart_action(&server));
        for (sql, expect) in &stmts {
            let r = px.exec(sql).unwrap();
            prop_assert_eq!(r, phoenix::ExecKind::RowCount(*expect));
        }
        let fired = armed.fired();
        drop(armed);
        prop_assert!(fired.is_some(), "seeded plan never fired (horizon {})", trace.len());

        // Status table: one row per statement, with its exact row count.
        let status = px
            .query_all("SELECT req_id, affected FROM phx_status ORDER BY req_id")
            .unwrap();
        prop_assert_eq!(status.len(), stmts.len());
        for (i, row) in status.iter().enumerate() {
            prop_assert_eq!(&row[0], &Value::Int(i as i64 + 1));
            prop_assert_eq!(&row[1], &Value::Int(stmts[i].1 as i64));
        }
        // Final state: every statement applied exactly once.
        let rows = px.query_all("SELECT k, v FROM kv ORDER BY k").unwrap();
        let got: Vec<(i64, i64)> = rows
            .iter()
            .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
            .collect();
        let want: Vec<(i64, i64)> = model.into_iter().collect();
        prop_assert_eq!(got, want);
        px.close();
    }
}
