//! Deterministic storage fault plans.
//!
//! [`crate::net`] makes the *network* lie; this module makes the *disk*
//! lie. A [`DiskPlan`] describes a seeded, per-device schedule of
//! storage faults that the simulated durable layer (`MemDisk` pages,
//! `LogStore` appends) consults once per I/O, mirroring the `NetPlan`
//! shapes so the existing `FAULTKIT_REPLAY` grammar and splitmix64
//! seeding carry over unchanged:
//!
//! * [`DiskPlan::At`] — fire one fault of a given kind at the `nth`
//!   I/O *to which that kind applies* (1-based). Spec grammar:
//!   `"torn#3"`, `"fsyncfail#1"`, … via [`DiskPlan::parse`] /
//!   [`DiskPlan::spec`].
//! * [`DiskPlan::Seeded`] — per-mille fault rates drawn from a seeded
//!   RNG, bounded by `max_faults` per device so the storm always ends
//!   and recovery/scrubbing find quiet disks. The per-device stream is
//!   derived from `(seed, device_index)`.
//!
//! Fault kinds and what the storage layer is expected to do with them:
//!
//! | kind        | effect at the device                    | survivable via    |
//! |-------------|-----------------------------------------|-------------------|
//! | `torn`      | page write splits at a seeded offset    | checksum + repair |
//! | `bitflip`   | one durable bit flips on a write        | checksum + repair |
//! | `readerr`   | a read fails with an I/O error          | error + retry     |
//! | `writeerr`  | a write fails, nothing lands            | error + retry     |
//! | `fsyncfail` | a log flush fails (bytes not durable)   | fail-stop + WAL   |
//! | `fsynclie`  | a log flush *claims* success but drops  | detected on next  |
//! |             | the bytes                               | append (loud)     |
//!
//! Fault *parameters* (where a torn write splits, which bit flips) are
//! drawn from the same per-device stream, expressed device-agnostically
//! (per-mille split fraction, offset seed) so faultkit needs no
//! knowledge of page sizes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The durable devices a [`DiskPlan`] can be installed on. Each gets a
/// decorrelated schedule stream via its index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskDevice {
    /// The page store (`MemDisk`).
    Data,
    /// The durable write-ahead log (`LogStore`).
    Wal,
}

impl DiskDevice {
    /// Stream index for [`DiskPlan::schedule`].
    pub fn index(&self) -> u64 {
        match self {
            DiskDevice::Data => 0,
            DiskDevice::Wal => 1,
        }
    }

    /// Device name used in `Error::Corruption { device, .. }`.
    pub fn name(&self) -> &'static str {
        match self {
            DiskDevice::Data => "data",
            DiskDevice::Wal => "wal",
        }
    }
}

/// The operation classes a device performs; faults only fire on
/// operations their kind applies to (the draw is still consumed, so the
/// stream stays aligned with the I/O index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskOp {
    /// A page (or record) read.
    Read,
    /// A page write.
    Write,
    /// A durable log append (the model's fsync boundary).
    Flush,
}

/// The kinds of storage fault the durable layer can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFaultKind {
    /// A write lands partially: a seeded prefix of the new bytes, the
    /// old bytes after it. The write *claims* success — torn pages are
    /// discovered later, by checksum.
    TornWrite,
    /// One durable bit flips during a write (which still claims
    /// success). Discovered later, by checksum / record CRC.
    BitFlip,
    /// A read fails with an I/O error; the bytes are intact and a retry
    /// may succeed.
    ReadErr,
    /// A write fails cleanly: an error is returned and nothing lands.
    WriteErr,
    /// A log flush fails: nothing lands and an error is returned. Under
    /// fsyncgate discipline the WAL manager must poison itself
    /// fail-stop rather than retry.
    FsyncFail,
    /// A log flush *lies*: it reports success but the bytes never
    /// became durable. Undetectable at the lie itself; the log's
    /// self-verifying record CRCs catch the resulting stream hole at
    /// the next durable append.
    FsyncLie,
}

impl DiskFaultKind {
    /// All kinds, in spec order.
    pub const ALL: [DiskFaultKind; 6] = [
        DiskFaultKind::TornWrite,
        DiskFaultKind::BitFlip,
        DiskFaultKind::ReadErr,
        DiskFaultKind::WriteErr,
        DiskFaultKind::FsyncFail,
        DiskFaultKind::FsyncLie,
    ];

    /// Spec name (`"torn"`, `"bitflip"`, …).
    pub fn name(&self) -> &'static str {
        match self {
            DiskFaultKind::TornWrite => "torn",
            DiskFaultKind::BitFlip => "bitflip",
            DiskFaultKind::ReadErr => "readerr",
            DiskFaultKind::WriteErr => "writeerr",
            DiskFaultKind::FsyncFail => "fsyncfail",
            DiskFaultKind::FsyncLie => "fsynclie",
        }
    }

    /// Inverse of [`DiskFaultKind::name`].
    pub fn from_name(s: &str) -> Option<DiskFaultKind> {
        DiskFaultKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Whether this kind can fire on the given operation class.
    pub fn applies_to(&self, op: DiskOp) -> bool {
        match self {
            DiskFaultKind::TornWrite | DiskFaultKind::BitFlip => {
                matches!(op, DiskOp::Write | DiskOp::Flush)
            }
            DiskFaultKind::ReadErr => matches!(op, DiskOp::Read),
            DiskFaultKind::WriteErr => matches!(op, DiskOp::Write | DiskOp::Flush),
            DiskFaultKind::FsyncFail | DiskFaultKind::FsyncLie => matches!(op, DiskOp::Flush),
        }
    }
}

/// One materialized fault, applied to a single I/O. Parameters are
/// device-agnostic: the injection site scales them to its own geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// Persist only a prefix of the write: `frac_pm`/1000 of its length
    /// (the site clamps to at least one byte short of a full write).
    TornWrite {
        /// Per-mille fraction of the write that lands (0..=999).
        frac_pm: u16,
    },
    /// Flip bit `bit` of byte `offset_seed % len` of the written bytes.
    BitFlip {
        /// Seed the site reduces modulo the write length.
        offset_seed: u64,
        /// Bit index within the chosen byte (0..8).
        bit: u8,
    },
    /// Fail the read.
    ReadErr,
    /// Fail the write; nothing lands.
    WriteErr,
    /// Fail the flush; nothing lands (fail-stop at the caller).
    FsyncFail,
    /// Report success but persist nothing.
    FsyncLie,
}

impl DiskFault {
    /// The [`DiskFaultKind`] this fault materialized from (labels trace
    /// events and counters at the injection site).
    pub fn kind(&self) -> DiskFaultKind {
        match self {
            DiskFault::TornWrite { .. } => DiskFaultKind::TornWrite,
            DiskFault::BitFlip { .. } => DiskFaultKind::BitFlip,
            DiskFault::ReadErr => DiskFaultKind::ReadErr,
            DiskFault::WriteErr => DiskFaultKind::WriteErr,
            DiskFault::FsyncFail => DiskFaultKind::FsyncFail,
            DiskFault::FsyncLie => DiskFaultKind::FsyncLie,
        }
    }
}

impl DiskFaultKind {
    fn materialize(self, rng: &mut StdRng) -> DiskFault {
        match self {
            DiskFaultKind::TornWrite => DiskFault::TornWrite {
                frac_pm: rng.gen_range(0..1000u32) as u16,
            },
            DiskFaultKind::BitFlip => DiskFault::BitFlip {
                offset_seed: rng.gen_range(0..u64::MAX),
                bit: rng.gen_range(0..8u32) as u8,
            },
            DiskFaultKind::ReadErr => DiskFault::ReadErr,
            DiskFaultKind::WriteErr => DiskFault::WriteErr,
            DiskFaultKind::FsyncFail => DiskFault::FsyncFail,
            DiskFaultKind::FsyncLie => DiskFault::FsyncLie,
        }
    }
}

/// Per-mille incidence rates for [`DiskPlan::Seeded`] (out of 1000 per
/// I/O). The sum must stay ≤ 1000.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskRates {
    /// ‰ of writes torn at a seeded offset.
    pub torn: u16,
    /// ‰ of writes with one durable bit flipped.
    pub bitflip: u16,
    /// ‰ of reads failing with an I/O error.
    pub readerr: u16,
    /// ‰ of writes failing cleanly.
    pub writeerr: u16,
    /// ‰ of flushes failing (fail-stop at the WAL manager).
    pub fsyncfail: u16,
    /// ‰ of flushes lying about durability.
    pub fsynclie: u16,
}

impl DiskRates {
    /// Mixed profile for the *data* device in soak tests: every fault
    /// here is maskable — torn/flipped pages repair from the WAL,
    /// failed I/Os surface as retryable statement errors.
    pub const fn mixed_data() -> DiskRates {
        DiskRates {
            torn: 12,
            bitflip: 12,
            readerr: 8,
            writeerr: 8,
            fsyncfail: 0,
            fsynclie: 0,
        }
    }

    /// Mixed profile for the *WAL* device in soak tests. Only fail-stop
    /// kinds: a torn or failed append poisons the manager and recovery
    /// truncates the (never-acknowledged) torn tail. Bit flips and
    /// lying fsyncs on the log are *detected* loudly, not masked — the
    /// log is the redundancy — so they stay out of the soak mix and are
    /// exercised by deterministic tests instead.
    pub const fn mixed_wal() -> DiskRates {
        DiskRates {
            torn: 6,
            bitflip: 0,
            readerr: 0,
            writeerr: 6,
            fsyncfail: 6,
            fsynclie: 0,
        }
    }

    fn total(&self) -> u32 {
        self.torn as u32
            + self.bitflip as u32
            + self.readerr as u32
            + self.writeerr as u32
            + self.fsyncfail as u32
            + self.fsynclie as u32
    }

    fn rate_of(&self, kind: DiskFaultKind) -> u32 {
        match kind {
            DiskFaultKind::TornWrite => self.torn as u32,
            DiskFaultKind::BitFlip => self.bitflip as u32,
            DiskFaultKind::ReadErr => self.readerr as u32,
            DiskFaultKind::WriteErr => self.writeerr as u32,
            DiskFaultKind::FsyncFail => self.fsyncfail as u32,
            DiskFaultKind::FsyncLie => self.fsynclie as u32,
        }
    }
}

/// A deterministic per-device fault schedule description. `Copy` so it
/// can ride inside server configuration, like [`crate::net::NetPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskPlan {
    /// Fire one `fault` at the `nth` (1-based) I/O of an applicable
    /// operation class — the deterministic shape unit tests and replay
    /// specs use.
    At {
        /// Fault kind to inject.
        fault: DiskFaultKind,
        /// 1-based applicable-I/O index at which to fire.
        nth: u64,
    },
    /// Seeded random schedule: each I/O draws against `rates`; at most
    /// `max_faults` fire per device, so the disk eventually behaves and
    /// recovery + scrubbing can complete.
    Seeded {
        /// Base seed; combined with the device index for per-device
        /// streams.
        seed: u64,
        /// Per-mille fault rates.
        rates: DiskRates,
        /// Per-device cap on injected faults.
        max_faults: u32,
    },
}

impl DiskPlan {
    /// Schedule one `fault` at the `nth` (1-based) applicable I/O.
    pub fn at(fault: DiskFaultKind, nth: u64) -> DiskPlan {
        DiskPlan::At {
            fault,
            nth: nth.max(1),
        }
    }

    /// Seeded schedule with the given rates and per-device fault cap.
    pub fn seeded(seed: u64, rates: DiskRates, max_faults: u32) -> DiskPlan {
        debug_assert!(rates.total() <= 1000, "rates sum to >1000 per mille");
        DiskPlan::Seeded {
            seed,
            rates,
            max_faults,
        }
    }

    /// Parse a replay spec of the form `<kind>#<nth>` (`"torn#3"`) —
    /// the same grammar as [`crate::FaultPlan::parse`], restricted to
    /// the disk-fault vocabulary.
    pub fn parse(spec: &str) -> Option<DiskPlan> {
        let (name, nth) = spec.rsplit_once('#')?;
        let nth: u64 = nth.trim().parse().ok()?;
        if nth == 0 {
            return None;
        }
        Some(DiskPlan::at(DiskFaultKind::from_name(name.trim())?, nth))
    }

    /// One-line replay spec. For seeded plans this is informational
    /// (`"seeded#<seed>"`); reproduce those by re-running with the seed.
    pub fn spec(&self) -> String {
        match self {
            DiskPlan::At { fault, nth } => format!("{}#{nth}", fault.name()),
            DiskPlan::Seeded { seed, .. } => format!("seeded#{seed}"),
        }
    }

    /// Instantiate the stateful schedule for `device`. The schedule
    /// belongs in the durable half (the *disk* is faulty, not the
    /// process), so injected state survives simulated crashes.
    pub fn schedule(&self, device: DiskDevice) -> DiskSchedule {
        let seed = match self {
            DiskPlan::At { .. } => 0,
            DiskPlan::Seeded { seed, .. } => crate::net::mix(*seed, device.index()),
        };
        DiskSchedule {
            plan: *self,
            rng: StdRng::seed_from_u64(seed),
            op_index: 0,
            fired: 0,
        }
    }
}

/// Stateful fault injector for one device. The durable layer calls
/// [`DiskSchedule::next_fault`] once per I/O; the returned fault (if
/// any) applies to that I/O.
#[derive(Debug)]
pub struct DiskSchedule {
    plan: DiskPlan,
    rng: StdRng,
    op_index: u64,
    fired: u32,
}

impl DiskSchedule {
    /// Evaluate the schedule for the next I/O of class `op`.
    /// Deterministic in the sequence of calls: the same plan, device and
    /// I/O sequence always yield the same fault sequence.
    pub fn next_fault(&mut self, op: DiskOp) -> Option<DiskFault> {
        match self.plan {
            DiskPlan::At { fault, nth } => {
                if !fault.applies_to(op) {
                    return None;
                }
                self.op_index += 1;
                if self.op_index == nth {
                    self.fired += 1;
                    Some(fault.materialize(&mut self.rng))
                } else {
                    None
                }
            }
            DiskPlan::Seeded {
                rates, max_faults, ..
            } => {
                self.op_index += 1;
                // Draw even when capped or inapplicable so the stream
                // stays aligned with the I/O index regardless of
                // earlier faults.
                let roll: u32 = self.rng.gen_range(0..1000u32);
                let mut chosen = None;
                let mut acc = 0u32;
                for kind in DiskFaultKind::ALL {
                    acc += rates.rate_of(kind);
                    if roll < acc {
                        chosen = Some(kind);
                        break;
                    }
                }
                let kind = chosen?;
                if self.fired >= max_faults || !kind.applies_to(op) {
                    return None;
                }
                self.fired += 1;
                Some(kind.materialize(&mut self.rng))
            }
        }
    }

    /// Faults injected so far on this device.
    pub fn fired(&self) -> u32 {
        self.fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_plan_counts_only_applicable_ops() {
        let mut s = DiskPlan::at(DiskFaultKind::TornWrite, 2).schedule(DiskDevice::Data);
        // Reads don't advance a write-fault plan.
        assert_eq!(s.next_fault(DiskOp::Read), None);
        assert_eq!(s.next_fault(DiskOp::Write), None);
        assert!(matches!(
            s.next_fault(DiskOp::Write),
            Some(DiskFault::TornWrite { .. })
        ));
        assert_eq!(s.next_fault(DiskOp::Write), None);
        assert_eq!(s.fired(), 1);
    }

    #[test]
    fn spec_round_trips_every_kind() {
        for kind in DiskFaultKind::ALL {
            let plan = DiskPlan::at(kind, 7);
            assert_eq!(DiskPlan::parse(&plan.spec()), Some(plan));
        }
        assert_eq!(DiskPlan::parse("nonsense"), None);
        assert_eq!(DiskPlan::parse("torn#0"), None);
        assert_eq!(DiskPlan::parse("scratch#1"), None);
    }

    #[test]
    fn seeded_schedule_is_deterministic_per_device() {
        let plan = DiskPlan::seeded(42, DiskRates::mixed_data(), 64);
        let run = |dev: DiskDevice| -> Vec<Option<DiskFault>> {
            let mut s = plan.schedule(dev);
            (0..300)
                .map(|i| {
                    s.next_fault(if i % 3 == 0 {
                        DiskOp::Read
                    } else {
                        DiskOp::Write
                    })
                })
                .collect()
        };
        assert_eq!(run(DiskDevice::Data), run(DiskDevice::Data));
        assert_ne!(run(DiskDevice::Data), run(DiskDevice::Wal));
    }

    #[test]
    fn seeded_schedule_respects_fault_cap() {
        let hot = DiskRates {
            torn: 500,
            bitflip: 0,
            readerr: 0,
            writeerr: 0,
            fsyncfail: 0,
            fsynclie: 0,
        };
        let mut s = DiskPlan::seeded(7, hot, 3).schedule(DiskDevice::Data);
        let fired = (0..1000)
            .filter(|_| s.next_fault(DiskOp::Write).is_some())
            .count();
        assert_eq!(fired, 3);
    }

    #[test]
    fn inapplicable_draws_do_not_shift_the_stream() {
        // A schedule fed interleaved reads must agree with a pure-write
        // schedule on the same write indices: the draw happens per I/O,
        // not per applicable I/O.
        let rates = DiskRates {
            torn: 100,
            bitflip: 0,
            readerr: 0,
            writeerr: 0,
            fsyncfail: 0,
            fsynclie: 0,
        };
        let plan = DiskPlan::seeded(9, rates, u32::MAX);
        let mut a = plan.schedule(DiskDevice::Data);
        let mut b = plan.schedule(DiskDevice::Data);
        for _ in 0..200 {
            let fa = a.next_fault(DiskOp::Write);
            let fb = b.next_fault(DiskOp::Write);
            assert_eq!(fa, fb);
        }
    }

    #[test]
    fn soak_profiles_stay_within_budget() {
        assert!(DiskRates::mixed_data().total() <= 1000);
        assert!(DiskRates::mixed_wal().total() <= 1000);
        // WAL soak mix must contain only fail-stop-maskable kinds.
        let wal = DiskRates::mixed_wal();
        assert_eq!(wal.bitflip, 0);
        assert_eq!(wal.fsynclie, 0);
    }
}
