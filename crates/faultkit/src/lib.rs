//! # faultkit — deterministic crashpoint instrumentation
//!
//! The fault tests in this workspace used to approximate "crash at any
//! point of the protocol" by sleeping a handful of wall-clock
//! milliseconds before killing the server — coverage that depends on
//! scheduler timing and cannot be reproduced. This crate replaces that
//! with *named crashpoints*: every protocol-relevant step is marked with
//! [`crashpoint!`]`("layer.step")`, and a test can
//!
//! 1. **record** the exact sequence of crashpoints a scenario hits,
//! 2. **replay** the scenario once per hit, arming a [`FaultPlan`] that
//!    fires a crash action at exactly that hit (`"name"` + nth
//!    occurrence), and
//! 3. **reproduce** any failing schedule bit-for-bit from its one-line
//!    replay spec (`"wire.exec.post#3"`).
//!
//! ## Overhead
//!
//! When no [`Session`] is active the whole mechanism is a single relaxed
//! atomic load per crashpoint (`ENABLED` is false and [`hit`] returns
//! immediately), so instrumented production code pays effectively
//! nothing. Plans and traces only exist inside a session.
//!
//! ## Concurrency model
//!
//! The registry is process-global (crashpoints are hit deep inside
//! engine/server/driver code that has no handle to pass a context
//! through). Tests that record or arm therefore serialize on the
//! [`session`] lock; a crashed-and-forgotten server from a previous
//! session cannot perturb a new one because every session starts from a
//! clean disabled state and counts from zero.
//!
//! ## Replay spec grammar
//!
//! `<name>#<nth>` — fire at the `nth` (1-based) time crashpoint `name`
//! is hit. [`FaultPlan::parse`] accepts exactly this shape, and
//! [`TracePoint::spec`] produces it.
//!
//! ## Crashpoint families
//!
//! Names follow the `layer.component.action` convention shared with
//! obskit, and tests enumerate whole families by prefix: `wal.*` /
//! `persist.*` (durability steps), `disk.*` (storage faults),
//! `phoenix.*` (session recovery protocol), and `admission.*` — the
//! overload-control registry mutations (`admission.admit`,
//! `admission.shed`, `admission.evict`), where a crash interleaved with
//! a shed or eviction must not break a session's exactly-once
//! guarantees. `cargo xtask analyze` cross-checks that every compiled
//! family member is reachable from some scenario under `tests/`.

pub mod disk;
pub mod net;

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fast-path gate: false whenever no recording/armed session is active,
/// so [`hit`] costs one relaxed load in production code.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Serializes sessions across tests in one process (see module docs).
static SESSION: Mutex<()> = Mutex::new(());

/// The registry proper. Kept separate from the session lock so [`hit`]
/// never blocks on a test holding the session for its whole body.
static STATE: Mutex<State> = Mutex::new(State::Off);

/// One crash action, run at most once when the plan fires.
type Action = Box<dyn FnOnce() + Send>;

enum State {
    /// No session: crashpoints are no-ops.
    Off,
    /// Trace collection: every hit is appended, nothing fires.
    Recording { trace: Vec<&'static str> },
    /// A plan is armed; the k-th hit matching it runs the action.
    Armed {
        name: Option<&'static str>,
        /// 1-based hit index at which to fire: of `name` when it is
        /// `Some`, of *any* crashpoint when it is `None` (seeded mode).
        nth: u64,
        counts: HashMap<&'static str, u64>,
        global_count: u64,
        action: Option<Action>,
        fired: Option<TracePoint>,
    },
}

fn state() -> MutexGuard<'static, State> {
    STATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Mark a crashpoint. Expands to a call of [`hit`]; the name must be a
/// string literal so the `phoenix-lint` uniqueness rule can check it.
///
/// ```
/// # fn persist_step() {}
/// faultkit::crashpoint!("persist.materialize");
/// persist_step();
/// ```
#[macro_export]
macro_rules! crashpoint {
    ($name:literal) => {
        $crate::hit($name)
    };
}

/// Record / evaluate one crashpoint hit. Called by [`crashpoint!`]; the
/// disabled fast path is a single relaxed atomic load.
#[inline]
pub fn hit(name: &'static str) {
    if ENABLED.load(Ordering::Relaxed) {
        hit_slow(name);
    }
}

#[cold]
fn hit_slow(name: &'static str) {
    // The action runs *outside* the registry lock: crash actions close
    // network pipes and fence durable state, and the restart they
    // schedule will hit recovery crashpoints that re-enter this module.
    let fire: Option<Action> = {
        let mut st = state();
        match &mut *st {
            State::Off => None,
            State::Recording { trace } => {
                trace.push(name);
                None
            }
            State::Armed {
                name: want,
                nth,
                counts,
                global_count,
                action,
                fired,
            } => {
                *global_count += 1;
                let count = counts.entry(name).or_insert(0);
                *count += 1;
                let matches = match want {
                    Some(w) => *w == name && *count == *nth,
                    None => *global_count == *nth,
                };
                if matches && fired.is_none() {
                    *fired = Some(TracePoint { name, nth: *count });
                    action.take()
                } else {
                    None
                }
            }
        }
    };
    if let Some(f) = fire {
        // A firing crashpoint is exactly the kind of rare causal landmark
        // the trace timeline exists for: the event names the same
        // `name#nth` coordinate a FAULTKIT_REPLAY spec would.
        obskit::metrics::global()
            .counter("faultkit.crashpoint.fires")
            .incr();
        obskit::event!("faultkit.crashpoint.fire", "{name}");
        f();
    }
}

/// One recorded crashpoint hit: `name` plus its 1-based occurrence
/// index within the trace. Doubles as the "where did the plan fire"
/// report of an armed session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracePoint {
    /// The crashpoint's `crashpoint!("…")` name.
    pub name: &'static str,
    /// 1-based occurrence of `name` within the scenario.
    pub nth: u64,
}

impl TracePoint {
    /// The one-line replay spec (`"wire.exec.post#3"`); feed it back
    /// through [`FaultPlan::parse`] to reproduce the schedule.
    pub fn spec(&self) -> String {
        format!("{}#{}", self.name, self.nth)
    }
}

impl std::fmt::Display for TracePoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.name, self.nth)
    }
}

/// When to fire the crash action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultPlan {
    /// Fire at the `nth` (1-based) hit of the named crashpoint — the
    /// deterministic schedule the enumeration tests replay.
    At {
        /// Crashpoint name as written in `crashpoint!("…")`.
        name: String,
        /// 1-based occurrence at which to fire.
        nth: u64,
    },
    /// Fire at the `nth` (1-based) crashpoint hit overall, whatever its
    /// name — useful when a schedule is drawn by index into a trace.
    AtGlobal {
        /// 1-based global hit index at which to fire.
        nth: u64,
    },
    /// Seeded random single-crash schedule: a deterministic RNG
    /// (`compat/rand`'s `StdRng`) picks one global hit index in
    /// `1..=horizon`. Same seed + same horizon ⇒ same schedule.
    Seeded {
        /// RNG seed.
        seed: u64,
        /// Upper bound (inclusive) for the drawn global hit index —
        /// normally the length of a previously recorded trace.
        horizon: u64,
    },
}

impl FaultPlan {
    /// Schedule: crash at the `nth` (1-based) hit of `name`.
    pub fn at(name: &str, nth: u64) -> FaultPlan {
        FaultPlan::At {
            name: name.to_string(),
            nth: nth.max(1),
        }
    }

    /// Parse a replay spec of the form `name#nth` (see [`TracePoint::spec`]).
    pub fn parse(spec: &str) -> Option<FaultPlan> {
        let (name, nth) = spec.rsplit_once('#')?;
        let nth: u64 = nth.trim().parse().ok()?;
        if name.is_empty() || nth == 0 {
            return None;
        }
        Some(FaultPlan::at(name.trim(), nth))
    }

    /// The global hit index this plan resolves to, for seeded plans.
    fn resolve(&self) -> (Option<String>, u64) {
        match self {
            FaultPlan::At { name, nth } => (Some(name.clone()), (*nth).max(1)),
            FaultPlan::AtGlobal { nth } => (None, (*nth).max(1)),
            FaultPlan::Seeded { seed, horizon } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                (None, rng.gen_range(1..=(*horizon).max(1)))
            }
        }
    }
}

/// An exclusive crashpoint session. Holding one serializes all
/// crashpoint-sensitive tests in the process; [`Session::record`] and
/// [`Session::arm`] switch the global registry mode. Dropping the
/// session (or any mode guard) restores the disabled zero-overhead
/// state.
pub struct Session {
    _guard: MutexGuard<'static, ()>,
}

/// Open a session, waiting for any other crashpoint-using test to
/// finish. Every test that creates servers in a binary that also arms
/// fault plans should hold one, so stray hits never perturb an armed
/// plan's counters.
pub fn session() -> Session {
    let guard = SESSION.lock().unwrap_or_else(PoisonError::into_inner);
    // Defensive: a previous panicking test may have left a mode behind.
    *state() = State::Off;
    ENABLED.store(false, Ordering::SeqCst);
    Session { _guard: guard }
}

impl Session {
    /// Start recording the crashpoint trace. Dropping the returned guard
    /// stops recording; [`Recording::finish`] returns the trace.
    pub fn record(&self) -> Recording<'_> {
        *state() = State::Recording { trace: Vec::new() };
        ENABLED.store(true, Ordering::SeqCst);
        Recording { _session: self }
    }

    /// Arm `plan`; `action` runs (once) at the scheduled hit. Dropping
    /// the returned guard disarms.
    pub fn arm<F: FnOnce() + Send + 'static>(&self, plan: &FaultPlan, action: F) -> Armed<'_> {
        let (name, nth) = plan.resolve();
        // `hit` stores `&'static str` names; an armed plan compares by
        // value, so leak-free matching needs the owned name kept here.
        *state() = State::Armed {
            name: name.as_deref().map(leak_name),
            nth,
            counts: HashMap::new(),
            global_count: 0,
            action: Some(Box::new(action)),
            fired: None,
        };
        ENABLED.store(true, Ordering::SeqCst);
        Armed { _session: self }
    }
}

/// Intern a plan name so it can be compared against the `&'static str`
/// names crashpoints carry. Names come from a small fixed vocabulary
/// (the instrumented points), so the interned set stays bounded.
fn leak_name(name: &str) -> &'static str {
    static INTERNED: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut set = INTERNED.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(existing) = set.iter().find(|n| **n == name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    set.push(leaked);
    leaked
}

/// Recording-mode guard (see [`Session::record`]).
pub struct Recording<'s> {
    _session: &'s Session,
}

impl Recording<'_> {
    /// Stop recording and return the trace as `(name, nth)` points —
    /// each hit annotated with its per-name occurrence index, ready to
    /// be replayed one schedule per point.
    pub fn finish(self) -> Vec<TracePoint> {
        let mut st = state();
        ENABLED.store(false, Ordering::SeqCst);
        let trace = match std::mem::replace(&mut *st, State::Off) {
            State::Recording { trace } => trace,
            _ => Vec::new(),
        };
        let mut counts: HashMap<&'static str, u64> = HashMap::new();
        trace
            .into_iter()
            .map(|name| {
                let c = counts.entry(name).or_insert(0);
                *c += 1;
                TracePoint { name, nth: *c }
            })
            .collect()
    }
}

impl Drop for Recording<'_> {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
        let mut st = state();
        if matches!(*st, State::Recording { .. }) {
            *st = State::Off;
        }
    }
}

/// Armed-mode guard (see [`Session::arm`]).
pub struct Armed<'s> {
    _session: &'s Session,
}

impl Armed<'_> {
    /// Where the plan fired, if it has.
    pub fn fired(&self) -> Option<TracePoint> {
        match &*state() {
            State::Armed { fired, .. } => fired.clone(),
            _ => None,
        }
    }
}

impl Drop for Armed<'_> {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
        let mut st = state();
        if matches!(*st, State::Armed { .. }) {
            *st = State::Off;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    fn run_scenario() {
        crashpoint!("test.alpha");
        crashpoint!("test.beta");
        crashpoint!("test.alpha");
        crashpoint!("test.gamma");
    }

    #[test]
    fn disabled_hits_are_noops() {
        // No session: must not record or fire anything.
        run_scenario();
        assert!(matches!(*state(), State::Off));
    }

    #[test]
    fn recording_collects_per_name_occurrences() {
        let s = session();
        let rec = s.record();
        run_scenario();
        let trace = rec.finish();
        let specs: Vec<String> = trace.iter().map(TracePoint::spec).collect();
        assert_eq!(
            specs,
            vec![
                "test.alpha#1",
                "test.beta#1",
                "test.alpha#2",
                "test.gamma#1"
            ]
        );
    }

    #[test]
    fn armed_plan_fires_exactly_once_at_nth_hit() {
        let s = session();
        let fired = Arc::new(AtomicU64::new(0));
        let f2 = Arc::clone(&fired);
        let plan = FaultPlan::at("test.alpha", 2);
        let armed = s.arm(&plan, move || {
            f2.fetch_add(1, Ordering::SeqCst);
        });
        run_scenario();
        run_scenario(); // alpha hits 3 and 4: must not re-fire
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert_eq!(armed.fired().map(|p| p.spec()), Some("test.alpha#2".into()));
    }

    #[test]
    fn global_and_seeded_plans_fire_by_hit_index() {
        let s = session();
        {
            let fired = Arc::new(AtomicU64::new(0));
            let f2 = Arc::clone(&fired);
            let armed = s.arm(&FaultPlan::AtGlobal { nth: 4 }, move || {
                f2.fetch_add(1, Ordering::SeqCst);
            });
            run_scenario();
            assert_eq!(armed.fired().map(|p| p.spec()), Some("test.gamma#1".into()));
            assert_eq!(fired.load(Ordering::SeqCst), 1);
        }
        // Seeded: deterministic per (seed, horizon); firing point is one
        // of the four hits and identical across arms.
        let pick = |seed: u64| {
            let armed = s.arm(&FaultPlan::Seeded { seed, horizon: 4 }, || {});
            run_scenario();
            armed.fired().map(|p| p.spec())
        };
        let first = pick(42);
        assert!(first.is_some());
        assert_eq!(first, pick(42));
    }

    #[test]
    fn replay_spec_round_trips() {
        assert_eq!(
            FaultPlan::parse("wire.exec.post#3"),
            Some(FaultPlan::at("wire.exec.post", 3))
        );
        assert_eq!(FaultPlan::parse("nonsense"), None);
        assert_eq!(FaultPlan::parse("x#0"), None);
        assert_eq!(FaultPlan::parse("#1"), None);
        let p = TracePoint {
            name: "a.b",
            nth: 7,
        };
        assert_eq!(FaultPlan::parse(&p.spec()), Some(FaultPlan::at("a.b", 7)));
    }

    #[test]
    fn dropping_guards_restores_disabled_state() {
        let s = session();
        {
            let _rec = s.record();
            assert!(ENABLED.load(Ordering::SeqCst));
        }
        assert!(!ENABLED.load(Ordering::SeqCst));
        {
            let _armed = s.arm(&FaultPlan::at("test.alpha", 1), || {});
            assert!(ENABLED.load(Ordering::SeqCst));
        }
        assert!(!ENABLED.load(Ordering::SeqCst));
        run_scenario(); // no-ops again
    }
}
