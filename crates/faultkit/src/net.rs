//! Deterministic network fault plans.
//!
//! The crashpoint machinery in the crate root kills the server at an
//! instruction boundary — a *clean* failure. Real outages are messier:
//! messages vanish, frames arrive half-written, links flap, and reads
//! stall without any error at all. A [`NetPlan`] describes such a
//! schedule deterministically so the simulated transport
//! (`wire::transport::Pipe`) can inject it and a failing run can be
//! reproduced from its seed alone.
//!
//! Two plan shapes mirror [`crate::FaultPlan`]:
//!
//! * [`NetPlan::At`] — fire one fault of a given kind at the `nth`
//!   message sent through a pipe (1-based). The spec grammar is the
//!   crashpoint one: `"drop#5"`, `"flap#2"`, … parseable by
//!   [`NetPlan::parse`] and printable by [`NetPlan::spec`], so the
//!   existing `FAULTKIT_REPLAY` one-liner works unchanged.
//! * [`NetPlan::Seeded`] — per-mille fault rates drawn from a seeded
//!   RNG, bounded by `max_faults` per pipe so recovery always has a
//!   quiet tail to succeed in. The per-pipe stream is derived from
//!   `(seed, pipe_index)`, so the schedule depends only on how many
//!   messages each pipe carries — not on wall-clock timing.
//!
//! Fault *magnitudes* (how long a latency spike or a stall lasts) are
//! fixed model constants ([`DELAY_SPIKE`], [`STALL`]), in the same
//! spirit as `NetConfig`'s canned 100 Mbit LAN parameters.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Extra delivery delay injected by a [`NetFaultKind::Delay`] spike.
/// Below any sane query timeout: a spike slows a request, it does not
/// fail it.
pub const DELAY_SPIKE: Duration = Duration::from_millis(25);

/// How long a [`NetFaultKind::Stall`] withholds delivery. Above the
/// soak tests' query timeout: a stall is only survivable because the
/// driver's watchdog converts it into a detectable timeout error.
pub const STALL: Duration = Duration::from_millis(400);

/// The kinds of network fault the transport can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFaultKind {
    /// The message silently never arrives (a lost segment, never
    /// retransmitted). On a stream transport the loss is a permanent
    /// hole: later frames are withheld too, and only the receiver's
    /// timeout detects it.
    Drop,
    /// A prefix of the frame arrives; the rest is lost. Decoding fails
    /// and the receiver must treat the connection as broken — a
    /// half-written TCP stream is not resynchronizable.
    Truncate,
    /// Latency spike: the message arrives late but intact.
    Delay,
    /// Delivery stalls: this and subsequent messages are withheld for
    /// [`STALL`], with no error raised. The pathological "hung read".
    Stall,
    /// Link flap: the pipe closes abruptly, as if the peer reset the
    /// connection. Both sides see a fatal error.
    Flap,
}

impl NetFaultKind {
    /// All kinds, in spec order.
    pub const ALL: [NetFaultKind; 5] = [
        NetFaultKind::Drop,
        NetFaultKind::Truncate,
        NetFaultKind::Delay,
        NetFaultKind::Stall,
        NetFaultKind::Flap,
    ];

    /// Spec name (`"drop"`, `"truncate"`, …).
    pub fn name(&self) -> &'static str {
        match self {
            NetFaultKind::Drop => "drop",
            NetFaultKind::Truncate => "truncate",
            NetFaultKind::Delay => "delay",
            NetFaultKind::Stall => "stall",
            NetFaultKind::Flap => "flap",
        }
    }

    /// Inverse of [`NetFaultKind::name`].
    pub fn from_name(s: &str) -> Option<NetFaultKind> {
        NetFaultKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// One materialized fault, applied to a single message send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Discard the message.
    Drop,
    /// Deliver only a prefix of the frame.
    Truncate,
    /// Deliver after an extra delay.
    Delay(Duration),
    /// Withhold delivery (of everything queued) for the duration.
    Stall(Duration),
    /// Close the pipe.
    Flap,
}

impl NetFault {
    /// The [`NetFaultKind`] this fault materialized from (used to label
    /// trace events and counters at the application site).
    pub fn kind(&self) -> NetFaultKind {
        match self {
            NetFault::Drop => NetFaultKind::Drop,
            NetFault::Truncate => NetFaultKind::Truncate,
            NetFault::Delay(_) => NetFaultKind::Delay,
            NetFault::Stall(_) => NetFaultKind::Stall,
            NetFault::Flap => NetFaultKind::Flap,
        }
    }
}

impl NetFaultKind {
    fn materialize(self) -> NetFault {
        match self {
            NetFaultKind::Drop => NetFault::Drop,
            NetFaultKind::Truncate => NetFault::Truncate,
            NetFaultKind::Delay => NetFault::Delay(DELAY_SPIKE),
            NetFaultKind::Stall => NetFault::Stall(STALL),
            NetFaultKind::Flap => NetFault::Flap,
        }
    }
}

/// Per-mille incidence rates for [`NetPlan::Seeded`] (out of 1000 per
/// message sent). The sum must stay ≤ 1000.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetRates {
    /// ‰ of messages silently dropped.
    pub drop: u16,
    /// ‰ of messages truncated (→ connection-fatal at the receiver).
    pub truncate: u16,
    /// ‰ of messages hit by a latency spike.
    pub delay: u16,
    /// ‰ of messages that stall the link.
    pub stall: u16,
    /// ‰ of messages that flap (close) the link.
    pub flap: u16,
}

impl NetRates {
    /// A mixed profile suitable for soak tests: mostly-working network
    /// with occasional faults of every kind.
    pub const fn mixed() -> NetRates {
        NetRates {
            drop: 8,
            truncate: 5,
            delay: 20,
            stall: 4,
            flap: 6,
        }
    }

    fn total(&self) -> u32 {
        self.drop as u32
            + self.truncate as u32
            + self.delay as u32
            + self.stall as u32
            + self.flap as u32
    }
}

/// A deterministic per-pipe fault schedule description. `Copy` so it can
/// ride inside server configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetPlan {
    /// Fire one `fault` at the `nth` (1-based) message sent on *every*
    /// pipe the plan is installed on — the deterministic shape unit
    /// tests and replay specs use.
    At {
        /// Fault kind to inject.
        fault: NetFaultKind,
        /// 1-based message index at which to fire.
        nth: u64,
    },
    /// Seeded random schedule: each message sent draws against `rates`;
    /// at most `max_faults` faults fire per pipe, so every pipe
    /// eventually goes quiet and recovery can complete.
    Seeded {
        /// Base seed; combined with the pipe index for per-pipe streams.
        seed: u64,
        /// Per-mille fault rates.
        rates: NetRates,
        /// Per-pipe cap on injected faults.
        max_faults: u32,
    },
}

impl NetPlan {
    /// Schedule one `fault` at the `nth` (1-based) message.
    pub fn at(fault: NetFaultKind, nth: u64) -> NetPlan {
        NetPlan::At {
            fault,
            nth: nth.max(1),
        }
    }

    /// Seeded schedule with the given rates and per-pipe fault cap.
    pub fn seeded(seed: u64, rates: NetRates, max_faults: u32) -> NetPlan {
        debug_assert!(rates.total() <= 1000, "rates sum to >1000 per mille");
        NetPlan::Seeded {
            seed,
            rates,
            max_faults,
        }
    }

    /// Parse a replay spec of the form `<kind>#<nth>` (`"drop#5"`) —
    /// the same grammar as [`crate::FaultPlan::parse`], restricted to
    /// the fault-kind vocabulary.
    pub fn parse(spec: &str) -> Option<NetPlan> {
        let (name, nth) = spec.rsplit_once('#')?;
        let nth: u64 = nth.trim().parse().ok()?;
        if nth == 0 {
            return None;
        }
        Some(NetPlan::at(NetFaultKind::from_name(name.trim())?, nth))
    }

    /// One-line replay spec. For seeded plans this is informational
    /// (`"seeded#<seed>"`); reproduce those by re-running with the seed.
    pub fn spec(&self) -> String {
        match self {
            NetPlan::At { fault, nth } => format!("{}#{nth}", fault.name()),
            NetPlan::Seeded { seed, .. } => format!("seeded#{seed}"),
        }
    }

    /// Instantiate the stateful per-pipe schedule for the
    /// `pipe_index`-th pipe created under this plan.
    pub fn schedule(&self, pipe_index: u64) -> NetSchedule {
        let seed = match self {
            NetPlan::At { .. } => 0,
            NetPlan::Seeded { seed, .. } => mix(*seed, pipe_index),
        };
        NetSchedule {
            plan: *self,
            rng: StdRng::seed_from_u64(seed),
            msg_index: 0,
            fired: 0,
        }
    }
}

/// SplitMix64 finalizer: decorrelates `(seed, pipe_index)` pairs so
/// neighbouring pipes see independent fault streams.
pub(crate) fn mix(seed: u64, pipe_index: u64) -> u64 {
    let mut z = seed ^ pipe_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateful fault injector for one pipe. The transport calls
/// [`NetSchedule::next_fault`] once per message send; the returned fault (if
/// any) applies to that message.
#[derive(Debug)]
pub struct NetSchedule {
    plan: NetPlan,
    rng: StdRng,
    msg_index: u64,
    fired: u32,
}

impl NetSchedule {
    /// Evaluate the schedule for the next message. Deterministic in the
    /// number of calls: the same plan and pipe index always yield the
    /// same fault sequence.
    pub fn next_fault(&mut self) -> Option<NetFault> {
        self.msg_index += 1;
        match self.plan {
            NetPlan::At { fault, nth } => {
                if self.msg_index == nth {
                    self.fired += 1;
                    Some(fault.materialize())
                } else {
                    None
                }
            }
            NetPlan::Seeded {
                rates, max_faults, ..
            } => {
                // Draw even when capped so the stream stays aligned
                // with the message index regardless of earlier faults.
                let roll: u32 = self.rng.gen_range(0..1000u32);
                if self.fired >= max_faults {
                    return None;
                }
                let mut acc = 0u32;
                for kind in NetFaultKind::ALL {
                    acc += match kind {
                        NetFaultKind::Drop => rates.drop as u32,
                        NetFaultKind::Truncate => rates.truncate as u32,
                        NetFaultKind::Delay => rates.delay as u32,
                        NetFaultKind::Stall => rates.stall as u32,
                        NetFaultKind::Flap => rates.flap as u32,
                    };
                    if roll < acc {
                        self.fired += 1;
                        return Some(kind.materialize());
                    }
                }
                None
            }
        }
    }

    /// Faults injected so far on this pipe.
    pub fn fired(&self) -> u32 {
        self.fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_plan_fires_exactly_once_at_nth_send() {
        let mut s = NetPlan::at(NetFaultKind::Drop, 3).schedule(0);
        assert_eq!(s.next_fault(), None);
        assert_eq!(s.next_fault(), None);
        assert_eq!(s.next_fault(), Some(NetFault::Drop));
        assert_eq!(s.next_fault(), None);
        assert_eq!(s.fired(), 1);
    }

    #[test]
    fn spec_round_trips_every_kind() {
        for kind in NetFaultKind::ALL {
            let plan = NetPlan::at(kind, 7);
            assert_eq!(NetPlan::parse(&plan.spec()), Some(plan));
        }
        assert_eq!(NetPlan::parse("nonsense"), None);
        assert_eq!(NetPlan::parse("drop#0"), None);
        assert_eq!(NetPlan::parse("sever#1"), None);
    }

    #[test]
    fn seeded_schedule_is_deterministic_per_pipe() {
        let plan = NetPlan::seeded(42, NetRates::mixed(), 8);
        let run = |pipe: u64| -> Vec<Option<NetFault>> {
            let mut s = plan.schedule(pipe);
            (0..200).map(|_| s.next_fault()).collect()
        };
        assert_eq!(run(0), run(0));
        assert_eq!(run(5), run(5));
        // Distinct pipes draw from decorrelated streams; with 200 draws
        // at ~4% fault rate identical sequences would be astronomically
        // unlikely.
        assert_ne!(run(0), run(1));
    }

    #[test]
    fn seeded_schedule_respects_fault_cap() {
        let hot = NetRates {
            drop: 500,
            truncate: 0,
            delay: 0,
            stall: 0,
            flap: 0,
        };
        let mut s = NetPlan::seeded(7, hot, 3).schedule(0);
        let fired = (0..1000).filter(|_| s.next_fault().is_some()).count();
        assert_eq!(fired, 3);
    }

    #[test]
    fn cap_does_not_shift_the_stream() {
        // The capped schedule must agree with the uncapped one on every
        // message index where both still fire.
        let rates = NetRates::mixed();
        let mut capped = NetPlan::seeded(9, rates, 2).schedule(3);
        let mut open = NetPlan::seeded(9, rates, u32::MAX).schedule(3);
        let mut seen = 0;
        for _ in 0..500 {
            let (c, o) = (capped.next_fault(), open.next_fault());
            if seen < 2 {
                assert_eq!(c, o);
            } else {
                assert_eq!(c, None);
            }
            if o.is_some() {
                seen += 1;
            }
        }
        assert!(seen >= 2, "rates too low for the assertion to bite");
    }
}
