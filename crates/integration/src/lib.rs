//! Support helpers for the repository-level integration tests in `tests/`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use wire::{DbServer, ServerConfig};

/// Start a chaos thread that crashes and restarts the server at the given
/// cadence until the returned guard is dropped.
pub struct Chaos {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<u32>>,
}

impl Chaos {
    pub fn start(server: DbServer, period: Duration, downtime: Duration) -> Chaos {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut crashes = 0;
            while !stop2.load(Ordering::Relaxed) {
                std::thread::sleep(period);
                if stop2.load(Ordering::Relaxed) {
                    break;
                }
                server.crash();
                crashes += 1;
                std::thread::sleep(downtime);
                server.restart().expect("restart");
            }
            crashes
        });
        Chaos {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop injecting and return how many crashes happened.
    pub fn stop(mut self) -> u32 {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.take().map(|h| h.join().unwrap()).unwrap_or(0)
    }
}

impl Drop for Chaos {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// A small server with fast (zero-latency) networking for tests.
pub fn test_server() -> DbServer {
    DbServer::start(ServerConfig::instant_net()).expect("server")
}
