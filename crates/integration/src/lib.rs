//! Support helpers for the repository-level integration tests in `tests/`:
//! the chaos crash/restart thread and the deterministic crashpoint
//! **schedule explorer** built on [`faultkit`].
//!
//! The explorer turns "crash at any point of the protocol" into an
//! enumerable test: [`record_trace`] runs a scenario once and returns the
//! exact sequence of crashpoints it hits; [`explore`] then re-runs the
//! scenario once per hit with a [`faultkit::FaultPlan`] armed to crash the
//! server at precisely that hit. A failing schedule panics with a one-line
//! replay spec (`FAULTKIT_REPLAY='scenario:wire.exec.post#3'`) that
//! reproduces the failure bit-for-bit; set the `FAULTKIT_REPLAY`
//! environment variable to run only that schedule.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use faultkit::{FaultPlan, Session, TracePoint};
use wire::{DbServer, ServerConfig};

/// Start a chaos thread that crashes and restarts the server at the given
/// cadence until the returned guard is dropped.
pub struct Chaos {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<u32>>,
}

impl Chaos {
    pub fn start(server: DbServer, period: Duration, downtime: Duration) -> Chaos {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut crashes = 0;
            while !stop2.load(Ordering::Relaxed) {
                std::thread::sleep(period);
                if stop2.load(Ordering::Relaxed) {
                    break;
                }
                server.crash();
                crashes += 1;
                std::thread::sleep(downtime);
                restart_with_retry(&server, 50);
            }
            crashes
        });
        Chaos {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop injecting and return how many crashes happened.
    pub fn stop(mut self) -> u32 {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.take().map(|h| h.join().unwrap()).unwrap_or(0)
    }
}

impl Drop for Chaos {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Restart `server`, retrying (with logging) instead of panicking: a
/// concurrent test step may have raced us to the restart, in which case
/// "already running" is success, and transient failures get `attempts`
/// more tries before giving up loudly but without poisoning the thread.
pub fn restart_with_retry(server: &DbServer, attempts: u32) {
    for attempt in 1..=attempts.max(1) {
        if server.is_up() {
            return;
        }
        match server.restart() {
            Ok(_) => return,
            Err(e) => {
                // lint:allow(print): test-harness progress line for humans watching a run
                eprintln!("restart attempt {attempt}/{attempts} failed: {e}");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
    // lint:allow(print): test-harness diagnostic; deliberately non-fatal
    eprintln!("server did not restart after {attempts} attempts");
}

/// A small server with fast (zero-latency) networking for tests.
pub fn test_server() -> DbServer {
    DbServer::start(ServerConfig::instant_net()).expect("server")
}

// ---------------------------------------------------------------------------
// Crashpoint schedule explorer
// ---------------------------------------------------------------------------

/// The environment variable holding a single `scenario:name#nth` replay
/// spec; when set, [`explore`] runs only that schedule.
pub const REPLAY_ENV: &str = "FAULTKIT_REPLAY";

/// Run `scenario` once with trace recording enabled and return every
/// crashpoint hit. The scenario receives no armed plan, so nothing fires.
pub fn record_trace(session: &Session, scenario: impl FnOnce()) -> Vec<TracePoint> {
    let rec = session.record();
    scenario();
    rec.finish()
}

/// Enumerate single-crash schedules for a named scenario.
///
/// `run_one` maps a schedule to one full run: build fresh state, arm the
/// plan, run the workload, and assert correctness. `explore` drives it
/// once per point of `trace`; the first panicking schedule is re-raised
/// with a `FAULTKIT_REPLAY='<scenario>:<name>#<nth>'` line prepended so
/// the exact schedule can be replayed in isolation.
pub fn explore(scenario_name: &str, trace: &[TracePoint], mut run_one: impl FnMut(&FaultPlan)) {
    // Replay mode: run exactly one schedule, from the environment spec.
    if let Ok(spec) = std::env::var(REPLAY_ENV) {
        let (scen, plan_spec) = spec.rsplit_once(':').unwrap_or(("", spec.as_str()));
        if !scen.is_empty() && scen != scenario_name {
            return; // spec names a different scenario; skip this one
        }
        let plan = FaultPlan::parse(plan_spec)
            .unwrap_or_else(|| panic!("bad {REPLAY_ENV} spec {spec:?} (want name#nth)"));
        // lint:allow(print): replay-mode banner for humans reproducing a failure
        eprintln!("replaying single schedule {scenario_name}:{plan_spec}");
        run_one(&plan);
        return;
    }
    assert!(
        !trace.is_empty(),
        "{scenario_name}: recorded trace is empty — instrumentation missing?"
    );
    for point in trace {
        let plan = FaultPlan::at(point.name, point.nth);
        let spec = point.spec();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_one(&plan)));
        if let Err(payload) = outcome {
            // lint:allow(print): the one-line replay spec must reach the test log
            eprintln!(
                "\nschedule failed — reproduce with:\n  {REPLAY_ENV}='{scenario_name}:{spec}' \
                 cargo test -p integration-tests --test fault_injection\n"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// The crash action used by wire-level schedules: kill the server at the
/// instrumented point and restart it immediately. Running synchronously on
/// the thread that hit the crashpoint keeps the whole schedule
/// deterministic — no helper thread lingers into the next replay. Clients
/// observe the crash regardless: their endpoints are closed by `crash()`
/// before the restart begins, so every in-flight call fails fatally and
/// Phoenix recovery reconnects to the already-restarted server.
pub fn crash_restart_action(server: &DbServer) -> impl FnOnce() + Send + 'static {
    let server = server.clone();
    move || {
        server.crash();
        restart_with_retry(&server, 100);
    }
}
