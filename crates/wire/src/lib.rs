//! # wire
//!
//! Client–server protocol and simulated network for the Phoenix/ODBC
//! reproduction: binary request/response framing, a latency/bandwidth/
//! bounded-buffer network model, and a crashable multi-threaded database
//! server ([`DbServer`]) over the [`sqlengine`] substrate.

// Tests exercise happy paths; the unwrap/expect hygiene baseline is
// aimed at library code (enforced harder by `cargo xtask lint`).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod admission;
pub mod protocol;
pub mod server;
pub mod transport;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionStats};
pub use protocol::{DoneKind, Request, Response, StmtId};
pub use server::{ClientConn, DbServer, GroupCommit, ServerConfig};
pub use transport::{Endpoint, NetConfig, Pipe};
