//! Admission control and overload shedding for the database server.
//!
//! The paper's recovery story is per-session; this module is what keeps
//! the *server* alive when every session exercises that story at once (a
//! reconnect storm after a crash). It owns three bounded resources:
//!
//! * a **session registry** capped at [`AdmissionConfig::max_sessions`] —
//!   one slot per wire connection, released on every exit path (orderly
//!   disconnect, link death, eviction, server crash);
//! * a **pending-accept gate** capped at
//!   [`AdmissionConfig::pending_accepts`] — connections that have been
//!   accepted but not yet finished the `Connect` handshake. This is the
//!   bound on *concurrent reconnects*: a post-crash herd cannot occupy
//!   more than this many handshakes at a time, the rest are shed;
//! * a **per-session memory budget**
//!   ([`AdmissionConfig::session_budget_bytes`]) charged with the
//!   session's engine-side state (temp tables) and the Phoenix result
//!   tables it has materialized, plus idle-session **eviction** after
//!   [`AdmissionConfig::idle_timeout`] without traffic.
//!
//! Saturation is never a stall or an OOM: the server sheds with
//! [`Error::ServerBusy`], carrying a `retry_after` hint the client folds
//! into its (jittered, budgeted) recovery backoff, so a storm spreads
//! out instead of synchronizing.
//!
//! The controller lives in the server's *durable* half and survives
//! crash/restart — it models the listener, not the database process.
//! Slots are keyed by a monotonic admission id (not the engine session
//! id, which is reissued from 1 after every restart); each slot records
//! the server epoch it was admitted under so a sweep never closes a
//! recycled session id belonging to a later incarnation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use sqlengine::session::{SessionId, RESULT_TABLE_PREFIX};
use sqlengine::Error;

use crate::transport::Endpoint;

/// Fixed per-slot overhead charged against the memory budget (registry
/// entry, network buffers' bookkeeping) before any session state.
pub const SLOT_BASE_BYTES: u64 = 4096;

/// Bytes charged per materialized result row (the engine stores rows
/// unserialized; this is the accounting width, not an exact measure).
pub const RESULT_ROW_BYTES: u64 = 64;

/// Admission tuning. `Copy`, like [`crate::ServerConfig`] which embeds it.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Hard cap on registered sessions (wire connections holding a
    /// session). Further `Connect` handshakes are shed.
    pub max_sessions: usize,
    /// Cap on connections accepted but not yet past the handshake — the
    /// bound on concurrent (re)connects. Further `connect()` calls are
    /// shed before any server-side resources are spent.
    pub pending_accepts: usize,
    /// A session with no inbound traffic for this long is evicted: its
    /// link is closed and its engine session (temp tables, transaction)
    /// is torn down. The client's next call finds a dead link and runs
    /// full Phoenix recovery.
    pub idle_timeout: Duration,
    /// Per-session memory budget. A session over budget has further
    /// `Exec` requests shed (statement-level, session preserved) until
    /// it drops state, e.g. `DROP TABLE phx_res_*`.
    pub session_budget_bytes: u64,
    /// How long an accepted connection may sit in the handshake without
    /// delivering its `Connect` frame before the link is dropped. The
    /// pending-accept gate is a hard cap on concurrent handshakes, so
    /// an unbounded wait here lets one stalled (or malicious) client
    /// pin a gate slot forever — a slowloris on the reconnect path.
    pub handshake_timeout: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        // Permissive defaults: existing workloads (tests, benches) run
        // unthrottled unless a config opts into tighter bounds.
        AdmissionConfig {
            max_sessions: 4096,
            pending_accepts: 1024,
            idle_timeout: Duration::from_secs(60),
            session_budget_bytes: u64::MAX,
            handshake_timeout: Duration::from_secs(10),
        }
    }
}

/// One registered session.
struct SessionSlot {
    /// Engine session id (0 until [`AdmissionController::bind`]).
    sid: SessionId,
    /// Server epoch the slot was admitted under (see
    /// [`crate::DbServer::restart`]); guards against closing a recycled
    /// session id after a crash/restart cycle.
    epoch: u64,
    /// Server-side endpoint, closed on eviction.
    ep: Arc<Endpoint>,
    /// Last inbound frame (any request counts, including `Ping`).
    last_activity: Instant,
    /// Engine-side session state estimate (temp tables).
    state_bytes: u64,
    /// Bytes charged per materialized Phoenix result table.
    result_bytes: HashMap<String, u64>,
    /// Cumulative inbound traffic (for per-session footprint reporting).
    traffic_bytes: u64,
}

impl SessionSlot {
    fn charged_bytes(&self) -> u64 {
        SLOT_BASE_BYTES
            .saturating_add(self.state_bytes)
            .saturating_add(self.result_bytes.values().sum())
    }
}

/// A session evicted by [`AdmissionController::sweep_idle`]; the caller
/// finishes engine-side cleanup (epoch permitting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Engine session id held by the evicted slot.
    pub sid: SessionId,
    /// Server epoch the slot was admitted under.
    pub epoch: u64,
}

/// Point-in-time controller statistics. Unlike the global obskit
/// instruments (which aggregate across every server in the process),
/// these are per-controller and race-free to assert on in tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmissionStats {
    /// Currently registered sessions.
    pub active: usize,
    /// Connections inside the pending-accept gate right now.
    pub pending: i64,
    /// High-water mark of the pending gate — the max concurrent
    /// (re)connects the server ever let in; bounded by
    /// [`AdmissionConfig::pending_accepts`] by construction.
    pub pending_peak: i64,
    /// Sessions ever admitted.
    pub admitted: u64,
    /// Requests shed (connect-level and statement-level).
    pub shed: u64,
    /// Sessions evicted for idleness.
    pub evicted: u64,
    /// Memory charge across currently registered sessions.
    pub bytes_active: u64,
    /// Inbound traffic across all sessions ever registered.
    pub traffic_total: u64,
}

/// The bounded session registry + pending gate + budgets.
pub struct AdmissionController {
    cfg: AdmissionConfig,
    slots: Mutex<HashMap<u64, SessionSlot>>,
    next_id: AtomicU64,
    pending: AtomicI64,
    pending_peak: AtomicI64,
    admitted: AtomicU64,
    shed: AtomicU64,
    evicted: AtomicU64,
    traffic_done: AtomicU64,
}

impl AdmissionController {
    /// A fresh controller.
    pub fn new(cfg: AdmissionConfig) -> AdmissionController {
        AdmissionController {
            cfg,
            slots: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            pending: AtomicI64::new(0),
            pending_peak: AtomicI64::new(0),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            traffic_done: AtomicU64::new(0),
        }
    }

    /// The active tuning.
    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    /// Record a shed and build the error. Every shed site funnels here so
    /// the `admission.shed` counter, crashpoint and per-controller stat
    /// stay in lockstep.
    fn shed(&self, retry_after: Duration) -> Error {
        self.shed.fetch_add(1, Ordering::Relaxed);
        obskit::metrics::global().counter("admission.shed").incr();
        faultkit::crashpoint!("admission.shed");
        Error::ServerBusy { retry_after }
    }

    /// Enter the pending-accept gate (called by `DbServer::connect`
    /// before any server-side resources are allocated). Sheds when the
    /// gate is full; on success the caller owes exactly one
    /// [`end_pending`](Self::end_pending) when the handshake resolves.
    pub fn begin_pending(&self) -> Result<(), Error> {
        let n = self.pending.fetch_add(1, Ordering::Relaxed) + 1;
        if n > self.cfg.pending_accepts as i64 {
            self.pending.fetch_sub(1, Ordering::Relaxed);
            // A full gate means a herd is mid-handshake; a few
            // milliseconds is enough to find a free slot in it.
            return Err(self.shed(Duration::from_millis(2)));
        }
        self.pending_peak.fetch_max(n, Ordering::Relaxed);
        // analyze:allow(durability): gate bookkeeping; the shed()/admit() decision sites carry the admission crashpoints
        let g = obskit::metrics::global();
        g.gauge("admission.pending").add(1);
        g.gauge("admission.pending.peak").max(n);
        Ok(())
    }

    /// Leave the pending-accept gate (handshake finished, shed, or the
    /// link died first). Must be called exactly once per successful
    /// [`begin_pending`](Self::begin_pending).
    pub fn end_pending(&self) {
        self.pending.fetch_sub(1, Ordering::Relaxed);
        // analyze:allow(durability): gate bookkeeping; the shed()/admit() decision sites carry the admission crashpoints
        obskit::metrics::global().gauge("admission.pending").add(-1);
    }

    /// Admit a session into the registry, or shed if it is full. The
    /// returned admission id must be released (or evicted) exactly once.
    pub fn admit(&self, epoch: u64, ep: Arc<Endpoint>) -> Result<u64, Error> {
        let now = Instant::now();
        let mut slots = self.slots.lock();
        if slots.len() >= self.cfg.max_sessions {
            let hint = self.registry_full_hint(&slots, now);
            drop(slots);
            return Err(self.shed(hint));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        slots.insert(
            id,
            SessionSlot {
                sid: 0,
                epoch,
                ep,
                last_activity: now,
                state_bytes: 0,
                result_bytes: HashMap::new(),
                traffic_bytes: 0,
            },
        );
        drop(slots);
        self.admitted.fetch_add(1, Ordering::Relaxed);
        let g = obskit::metrics::global();
        g.counter("admission.admit").incr();
        g.gauge("sessions.active").add(1);
        faultkit::crashpoint!("admission.admit");
        Ok(id)
    }

    /// When the registry is full, hint the time until the most idle slot
    /// would be evicted — the earliest moment a retry can find capacity.
    fn registry_full_hint(&self, slots: &HashMap<u64, SessionSlot>, now: Instant) -> Duration {
        let oldest = slots
            .values()
            .map(|s| now.saturating_duration_since(s.last_activity))
            .max()
            .unwrap_or_default();
        self.cfg
            .idle_timeout
            .saturating_sub(oldest)
            .max(Duration::from_millis(5))
    }

    /// Attach the engine session id to an admitted slot.
    pub fn bind(&self, id: u64, sid: SessionId) {
        if let Some(slot) = self.slots.lock().get_mut(&id) {
            slot.sid = sid;
        }
    }

    /// Release a slot. Returns whether this call removed it (false when
    /// an eviction got there first), so release-on-every-exit-path and
    /// eviction can race without double-decrementing `sessions.active`.
    pub fn release(&self, id: u64) -> bool {
        let removed = self.slots.lock().remove(&id);
        match removed {
            Some(slot) => {
                self.traffic_done
                    .fetch_add(slot.traffic_bytes, Ordering::Relaxed);
                obskit::metrics::global().gauge("sessions.active").add(-1);
                true
            }
            None => false,
        }
    }

    /// Record inbound traffic on a slot (any request frame counts as
    /// liveness, including `Ping` — the wire analogue of the paper's
    /// keepalive).
    pub fn touch(&self, id: u64, bytes: u64) {
        if let Some(slot) = self.slots.lock().get_mut(&id) {
            slot.last_activity = Instant::now();
            slot.traffic_bytes = slot.traffic_bytes.saturating_add(bytes);
        }
    }

    /// Refresh the engine-side state estimate for a slot.
    pub fn set_state_bytes(&self, id: u64, bytes: u64) {
        if let Some(slot) = self.slots.lock().get_mut(&id) {
            slot.state_bytes = bytes;
        }
    }

    /// Charge a materialized Phoenix result table against the budget.
    pub fn charge_result(&self, id: u64, table: &str, bytes: u64) {
        if let Some(slot) = self.slots.lock().get_mut(&id) {
            let e = slot.result_bytes.entry(table.to_string()).or_insert(0);
            *e = e.saturating_add(bytes);
        }
    }

    /// Release a dropped result table's charge.
    pub fn release_result(&self, id: u64, table: &str) {
        if let Some(slot) = self.slots.lock().get_mut(&id) {
            slot.result_bytes.remove(table);
        }
    }

    /// Statement-level budget gate: `Some(ServerBusy)` when the session
    /// is over its memory budget. The session itself is preserved — only
    /// the statement is shed, and dropping state (or the idle sweep)
    /// restores service.
    pub fn over_budget(&self, id: u64) -> Option<Error> {
        let over = {
            let slots = self.slots.lock();
            slots
                .get(&id)
                .is_some_and(|s| s.charged_bytes() > self.cfg.session_budget_bytes)
        };
        if over {
            Some(self.shed(Duration::from_millis(10)))
        } else {
            None
        }
    }

    /// Evict every slot idle past the timeout: close its link (the
    /// client's next call finds a dead connection and runs full Phoenix
    /// recovery) and hand the engine-side cleanup to the caller. Evicts
    /// one slot at a time so a crash injected mid-sweep leaves no slot
    /// half-accounted.
    pub fn sweep_idle(&self, now: Instant) -> Vec<Evicted> {
        let mut out = Vec::new();
        loop {
            let victim = {
                let mut slots = self.slots.lock();
                let id = slots
                    .iter()
                    .find(|(_, s)| {
                        now.saturating_duration_since(s.last_activity) > self.cfg.idle_timeout
                    })
                    .map(|(id, _)| *id);
                id.and_then(|id| slots.remove(&id))
            };
            let Some(slot) = victim else {
                return out;
            };
            self.evicted.fetch_add(1, Ordering::Relaxed);
            self.traffic_done
                .fetch_add(slot.traffic_bytes, Ordering::Relaxed);
            let g = obskit::metrics::global();
            g.counter("admission.evict").incr();
            g.gauge("sessions.active").add(-1);
            faultkit::crashpoint!("admission.evict");
            slot.ep.close();
            out.push(Evicted {
                sid: slot.sid,
                epoch: slot.epoch,
            });
        }
    }

    /// Per-controller statistics (see [`AdmissionStats`]).
    pub fn stats(&self) -> AdmissionStats {
        let (active, bytes_active, traffic_live) = {
            let slots = self.slots.lock();
            let bytes = slots.values().map(SessionSlot::charged_bytes).sum();
            let traffic = slots.values().map(|s| s.traffic_bytes).sum::<u64>();
            (slots.len(), bytes, traffic)
        };
        AdmissionStats {
            active,
            pending: self.pending.load(Ordering::Relaxed),
            pending_peak: self.pending_peak.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            bytes_active,
            traffic_total: self.traffic_done.load(Ordering::Relaxed) + traffic_live,
        }
    }
}

// -- Phoenix result-table accounting helpers ---------------------------------

fn strip_keyword<'a>(s: &'a str, kw: &str) -> Option<&'a str> {
    let s = s.trim_start();
    if s.len() >= kw.len() && s[..kw.len()].eq_ignore_ascii_case(kw) {
        Some(&s[kw.len()..])
    } else {
        None
    }
}

fn leading_ident(s: &str) -> &str {
    let s = s.trim_start();
    let end = s
        .find(|c: char| !c.is_ascii_alphanumeric() && c != '_')
        .unwrap_or(s.len());
    &s[..end]
}

fn result_table(s: &str) -> Option<String> {
    let name = leading_ident(s);
    let lower = name.to_ascii_lowercase();
    lower.starts_with(RESULT_TABLE_PREFIX).then_some(lower)
}

/// The Phoenix result table a batch materializes into, if it is an
/// `INSERT INTO phx_res_* …` — the server charges its row count against
/// the session's memory budget.
pub fn materialized_result_table(sql: &str) -> Option<String> {
    let rest = strip_keyword(sql, "INSERT")?;
    let rest = strip_keyword(rest, "INTO")?;
    result_table(rest)
}

/// The Phoenix result table a batch releases, if it is a
/// `DROP TABLE [IF EXISTS] phx_res_*`.
pub fn dropped_result_table(sql: &str) -> Option<String> {
    let rest = strip_keyword(sql, "DROP")?;
    let rest = strip_keyword(rest, "TABLE")?;
    let rest = strip_keyword(rest, "IF")
        .and_then(|r| strip_keyword(r, "EXISTS"))
        .unwrap_or(rest);
    result_table(rest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::NetConfig;

    fn tiny(max_sessions: usize, pending: usize, idle: Duration) -> AdmissionController {
        AdmissionController::new(AdmissionConfig {
            max_sessions,
            pending_accepts: pending,
            idle_timeout: idle,
            session_budget_bytes: 10_000,
            handshake_timeout: Duration::from_secs(10),
        })
    }

    fn ep() -> Arc<Endpoint> {
        let (_client, server) = Endpoint::pair(NetConfig::instant(), NetConfig::instant());
        Arc::new(server)
    }

    #[test]
    fn registry_cap_sheds_with_retry_hint() {
        let ac = tiny(2, 8, Duration::from_secs(60));
        let a = ac.admit(1, ep()).unwrap();
        let _b = ac.admit(1, ep()).unwrap();
        let err = ac.admit(1, ep()).unwrap_err();
        let Error::ServerBusy { retry_after } = err else {
            panic!("expected ServerBusy, got {err:?}");
        };
        assert!(retry_after >= Duration::from_millis(5));
        assert!(retry_after <= Duration::from_secs(60));
        assert_eq!(ac.stats().shed, 1);
        // Releasing frees a slot for the next admit.
        assert!(ac.release(a));
        ac.admit(1, ep()).unwrap();
    }

    #[test]
    fn pending_gate_bounds_concurrent_handshakes() {
        let ac = tiny(8, 2, Duration::from_secs(60));
        ac.begin_pending().unwrap();
        ac.begin_pending().unwrap();
        assert!(matches!(
            ac.begin_pending().unwrap_err(),
            Error::ServerBusy { .. }
        ));
        ac.end_pending();
        ac.begin_pending().unwrap();
        ac.end_pending();
        ac.end_pending();
        let st = ac.stats();
        assert_eq!(st.pending, 0);
        assert_eq!(st.pending_peak, 2, "peak never exceeds the gate bound");
        assert_eq!(st.shed, 1);
    }

    #[test]
    fn release_and_evict_never_double_free() {
        let ac = tiny(8, 8, Duration::from_millis(1));
        let id = ac.admit(7, ep()).unwrap();
        ac.bind(id, 42);
        std::thread::sleep(Duration::from_millis(5));
        let evicted = ac.sweep_idle(Instant::now());
        assert_eq!(evicted, vec![Evicted { sid: 42, epoch: 7 }]);
        // The connection loop's guard still fires its release; it must
        // observe the eviction and not double-decrement.
        assert!(!ac.release(id));
        assert_eq!(ac.stats().active, 0);
        assert_eq!(ac.stats().evicted, 1);
    }

    #[test]
    fn touch_defers_eviction() {
        let ac = tiny(8, 8, Duration::from_millis(40));
        let id = ac.admit(1, ep()).unwrap();
        std::thread::sleep(Duration::from_millis(25));
        ac.touch(id, 10);
        // Recently touched: not yet idle past the timeout.
        assert!(ac.sweep_idle(Instant::now()).is_empty());
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(ac.sweep_idle(Instant::now()).len(), 1);
        assert_eq!(ac.stats().traffic_total, 10);
    }

    #[test]
    fn budget_charges_and_releases() {
        let ac = tiny(8, 8, Duration::from_secs(60));
        let id = ac.admit(1, ep()).unwrap();
        assert!(ac.over_budget(id).is_none(), "base charge fits");
        ac.charge_result(id, "phx_res_1_1", 20_000);
        assert!(matches!(ac.over_budget(id), Some(Error::ServerBusy { .. })));
        ac.release_result(id, "phx_res_1_1");
        assert!(ac.over_budget(id).is_none());
        ac.set_state_bytes(id, 50_000);
        assert!(ac.over_budget(id).is_some());
        ac.set_state_bytes(id, 0);
        assert!(ac.over_budget(id).is_none());
    }

    #[test]
    fn result_table_sql_parsing() {
        assert_eq!(
            materialized_result_table("INSERT INTO phx_res_3_1 SELECT a FROM t"),
            Some("phx_res_3_1".into())
        );
        assert_eq!(
            materialized_result_table("  insert   into   PHX_RES_9_2 SELECT 1"),
            Some("phx_res_9_2".into())
        );
        assert_eq!(
            materialized_result_table("INSERT INTO orders VALUES (1)"),
            None
        );
        assert_eq!(materialized_result_table("SELECT * FROM phx_res_1_1"), None);
        assert_eq!(
            dropped_result_table("DROP TABLE phx_res_3_1"),
            Some("phx_res_3_1".into())
        );
        assert_eq!(
            dropped_result_table("drop table if exists phx_res_3_1"),
            Some("phx_res_3_1".into())
        );
        assert_eq!(dropped_result_table("DROP TABLE orders"), None);
    }
}
