//! Simulated network transport.
//!
//! A [`Pipe`] is a one-directional, byte-bounded message queue with a
//! latency/bandwidth model — the stand-in for the paper's 100 Mbit LAN
//! plus the server's bounded output buffer. A full pipe blocks the sender,
//! which is exactly the mechanism behind the paper's Table 3 observation
//! that a native query's scan *suspends* once the output buffer fills.
//!
//! Closing a pipe (server crash) wakes all blocked parties with a
//! disconnect error.

use std::collections::VecDeque;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use sqlengine::Error;

/// Network model parameters for one direction.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Propagation latency: delays delivery but *pipelines* (consecutive
    /// messages overlap).
    pub latency: Duration,
    /// Bytes per second, or `None` for infinite bandwidth.
    pub bytes_per_sec: Option<u64>,
    /// Buffer capacity in bytes; senders block when exceeded.
    pub buffer_bytes: usize,
    /// Per-message processing cost (the driver/stack overhead of "the
    /// call made by the driver to request a row of data" the paper
    /// describes): serializes on the link, so many small messages are
    /// slower than few large ones.
    pub per_msg_cost: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        // Defaults sized after the paper's setup: 100 Mbit/s LAN, ~75 KB
        // of output buffering between server and client.
        NetConfig {
            latency: Duration::from_micros(100),
            bytes_per_sec: Some(12_500_000),
            buffer_bytes: 64 * 1024,
            per_msg_cost: Duration::from_micros(20),
        }
    }
}

impl NetConfig {
    /// Zero-latency, unbounded configuration (useful in unit tests).
    pub fn instant() -> Self {
        NetConfig {
            latency: Duration::ZERO,
            bytes_per_sec: None,
            buffer_bytes: usize::MAX,
            per_msg_cost: Duration::ZERO,
        }
    }
}

struct PipeState {
    queue: VecDeque<(Vec<u8>, Instant)>,
    bytes: usize,
    closed: bool,
    /// Virtual time at which the link frees up (bandwidth serialization).
    link_free_at: Instant,
}

/// One direction of a connection.
pub struct Pipe {
    cfg: NetConfig,
    state: Mutex<PipeState>,
    readable: Condvar,
    writable: Condvar,
}

impl Pipe {
    /// Create a pipe with the given network model.
    pub fn new(cfg: NetConfig) -> Arc<Pipe> {
        Arc::new(Pipe {
            cfg,
            state: Mutex::new(PipeState {
                queue: VecDeque::new(),
                bytes: 0,
                closed: false,
                link_free_at: Instant::now(),
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
        })
    }

    /// Send a message, blocking while the buffer is full. Returns
    /// `Err(ServerShutdown)` if the pipe is closed, or if `cancel` is set
    /// while waiting.
    pub fn send(&self, msg: Vec<u8>, cancel: Option<&AtomicBool>) -> Result<(), Error> {
        let size = msg.len().max(1);
        let mut st = self.state.lock();
        loop {
            if st.closed {
                return Err(Error::ServerShutdown);
            }
            if let Some(c) = cancel {
                if c.load(std::sync::atomic::Ordering::Relaxed) {
                    return Err(Error::TxnAborted("statement cancelled".into()));
                }
            }
            if st.bytes + size <= self.cfg.buffer_bytes || st.queue.is_empty() {
                break;
            }
            self.writable.wait_for(&mut st, Duration::from_millis(1));
        }
        // Delivery time: serialize on the link after the previous message.
        let now = Instant::now();
        let start = st.link_free_at.max(now);
        let tx_time = match self.cfg.bytes_per_sec {
            Some(bps) if bps > 0 => {
                Duration::from_nanos((size as u64).saturating_mul(1_000_000_000) / bps)
            }
            _ => Duration::ZERO,
        };
        let deliver_at = start + self.cfg.latency + tx_time + self.cfg.per_msg_cost;
        st.link_free_at = start + tx_time + self.cfg.per_msg_cost;
        st.bytes += size;
        st.queue.push_back((msg, deliver_at));
        drop(st);
        self.readable.notify_one();
        Ok(())
    }

    /// Receive the next message, blocking up to `timeout` (`None` = wait
    /// forever). `Err(Timeout)` on deadline, `Err(ServerShutdown)` when
    /// the pipe is closed and drained.
    pub fn recv(&self, timeout: Option<Duration>) -> Result<Vec<u8>, Error> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut st = self.state.lock();
        loop {
            if let Some((msg, deliver_at)) = st.queue.front().cloned() {
                let now = Instant::now();
                if deliver_at <= now {
                    st.queue.pop_front();
                    st.bytes -= msg.len().max(1);
                    drop(st);
                    self.writable.notify_one();
                    return Ok(msg);
                }
                // Wait out the simulated latency (bounded by deadline).
                let mut wait = deliver_at - now;
                if let Some(d) = deadline {
                    if d <= now {
                        return Err(Error::Timeout);
                    }
                    wait = wait.min(d - now);
                }
                self.readable.wait_for(&mut st, wait);
                continue;
            }
            if st.closed {
                return Err(Error::ServerShutdown);
            }
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if d <= now {
                        return Err(Error::Timeout);
                    }
                    self.readable.wait_for(&mut st, d - now);
                }
                None => {
                    self.readable.wait_for(&mut st, Duration::from_millis(50));
                }
            }
        }
    }

    /// Close the pipe: wake all blocked senders/receivers. Undelivered
    /// messages are dropped (they were "in flight" at crash time).
    pub fn close(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        st.queue.clear();
        st.bytes = 0;
        drop(st);
        self.readable.notify_all();
        self.writable.notify_all();
    }

    /// Whether [`Pipe::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// Bytes currently buffered (tests/metrics).
    pub fn buffered_bytes(&self) -> usize {
        self.state.lock().bytes
    }
}

/// One endpoint of a bidirectional connection.
pub struct Endpoint {
    /// Outbound direction.
    pub tx: Arc<Pipe>,
    /// Inbound direction.
    pub rx: Arc<Pipe>,
}

impl Endpoint {
    /// Create a connected pair: (client endpoint, server endpoint).
    pub fn pair(client_to_server: NetConfig, server_to_client: NetConfig) -> (Endpoint, Endpoint) {
        let c2s = Pipe::new(client_to_server);
        let s2c = Pipe::new(server_to_client);
        (
            Endpoint {
                tx: Arc::clone(&c2s),
                rx: Arc::clone(&s2c),
            },
            Endpoint { tx: s2c, rx: c2s },
        )
    }

    /// Tear down both directions (crash semantics: in-flight data is lost).
    pub fn close(&self) {
        self.tx.close();
        self.rx.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn round_trip() {
        let (c, s) = Endpoint::pair(NetConfig::instant(), NetConfig::instant());
        c.tx.send(b"hello".to_vec(), None).unwrap();
        assert_eq!(s.rx.recv(Some(Duration::from_secs(1))).unwrap(), b"hello");
        s.tx.send(b"world".to_vec(), None).unwrap();
        assert_eq!(c.rx.recv(Some(Duration::from_secs(1))).unwrap(), b"world");
    }

    #[test]
    fn bounded_buffer_blocks_sender() {
        let cfg = NetConfig {
            buffer_bytes: 100,
            ..NetConfig::instant()
        };
        let pipe = Pipe::new(cfg);
        pipe.send(vec![0u8; 80], None).unwrap();
        // Second message exceeds capacity; sender must block.
        let p2 = Arc::clone(&pipe);
        let h = std::thread::spawn(move || p2.send(vec![0u8; 80], None));
        std::thread::sleep(Duration::from_millis(50));
        assert!(!h.is_finished(), "sender should be blocked on full buffer");
        // Consuming unblocks it.
        pipe.recv(Some(Duration::from_secs(1))).unwrap();
        h.join().unwrap().unwrap();
    }

    #[test]
    fn oversized_message_passes_when_queue_empty() {
        let cfg = NetConfig {
            buffer_bytes: 10,
            ..NetConfig::instant()
        };
        let pipe = Pipe::new(cfg);
        // A message larger than the whole buffer must still be deliverable.
        pipe.send(vec![0u8; 100], None).unwrap();
        assert_eq!(pipe.recv(Some(Duration::from_secs(1))).unwrap().len(), 100);
    }

    #[test]
    fn close_wakes_blocked_receiver() {
        let pipe = Pipe::new(NetConfig::instant());
        let p2 = Arc::clone(&pipe);
        let h = std::thread::spawn(move || p2.recv(Some(Duration::from_secs(5))));
        std::thread::sleep(Duration::from_millis(30));
        pipe.close();
        assert_eq!(h.join().unwrap(), Err(Error::ServerShutdown));
    }

    #[test]
    fn close_wakes_blocked_sender() {
        let cfg = NetConfig {
            buffer_bytes: 10,
            ..NetConfig::instant()
        };
        let pipe = Pipe::new(cfg);
        pipe.send(vec![0u8; 10], None).unwrap();
        let p2 = Arc::clone(&pipe);
        let h = std::thread::spawn(move || p2.send(vec![0u8; 10], None));
        std::thread::sleep(Duration::from_millis(30));
        pipe.close();
        assert_eq!(h.join().unwrap(), Err(Error::ServerShutdown));
    }

    #[test]
    fn recv_times_out() {
        let pipe = Pipe::new(NetConfig::instant());
        let start = Instant::now();
        assert_eq!(
            pipe.recv(Some(Duration::from_millis(50))),
            Err(Error::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(45));
    }

    #[test]
    fn cancel_unblocks_sender() {
        let cfg = NetConfig {
            buffer_bytes: 10,
            ..NetConfig::instant()
        };
        let pipe = Pipe::new(cfg);
        pipe.send(vec![0u8; 10], None).unwrap();
        let p2 = Arc::clone(&pipe);
        let cancel = Arc::new(AtomicBool::new(false));
        let c2 = Arc::clone(&cancel);
        let h = std::thread::spawn(move || p2.send(vec![0u8; 10], Some(&c2)));
        std::thread::sleep(Duration::from_millis(30));
        cancel.store(true, Ordering::Relaxed);
        assert!(matches!(h.join().unwrap(), Err(Error::TxnAborted(_))));
    }

    #[test]
    fn latency_delays_delivery() {
        let cfg = NetConfig {
            latency: Duration::from_millis(30),
            ..NetConfig::instant()
        };
        let pipe = Pipe::new(cfg);
        pipe.send(b"x".to_vec(), None).unwrap();
        let start = Instant::now();
        pipe.recv(Some(Duration::from_secs(1))).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn bandwidth_serializes_large_transfers() {
        let cfg = NetConfig {
            bytes_per_sec: Some(1_000_000), // 1 MB/s
            ..NetConfig::instant()
        };
        let pipe = Pipe::new(cfg);
        pipe.send(vec![0u8; 100_000], None).unwrap(); // 100 ms of link time
        let start = Instant::now();
        pipe.recv(Some(Duration::from_secs(1))).unwrap();
        assert!(
            start.elapsed() >= Duration::from_millis(80),
            "elapsed {:?}",
            start.elapsed()
        );
    }
}
