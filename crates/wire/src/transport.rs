//! Simulated network transport.
//!
//! A [`Pipe`] is a one-directional, byte-bounded message queue with a
//! latency/bandwidth model — the stand-in for the paper's 100 Mbit LAN
//! plus the server's bounded output buffer. A full pipe blocks the sender,
//! which is exactly the mechanism behind the paper's Table 3 observation
//! that a native query's scan *suspends* once the output buffer fills.
//!
//! Closing a pipe (server crash) wakes all blocked parties with a
//! disconnect error.
//!
//! A pipe can additionally carry a deterministic fault schedule
//! ([`Pipe::inject`], driven by [`faultkit::net::NetPlan`]): message
//! drops, frame truncation, latency spikes, link flaps, and stalled
//! delivery — the messy failures a clean `close()` cannot express.

use std::collections::VecDeque;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use faultkit::net::{NetFault, NetFaultKind, NetSchedule};
use sqlengine::Error;

/// Static counter name for each injected fault kind (counter names are
/// `&'static str`, so the mapping is spelled out once here).
fn fault_counter(kind: NetFaultKind) -> &'static str {
    match kind {
        NetFaultKind::Drop => "wire.net.fault.drop",
        NetFaultKind::Truncate => "wire.net.fault.truncate",
        NetFaultKind::Delay => "wire.net.fault.delay",
        NetFaultKind::Stall => "wire.net.fault.stall",
        NetFaultKind::Flap => "wire.net.fault.flap",
    }
}

/// Network model parameters for one direction.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Propagation latency: delays delivery but *pipelines* (consecutive
    /// messages overlap).
    pub latency: Duration,
    /// Bytes per second, or `None` for infinite bandwidth.
    pub bytes_per_sec: Option<u64>,
    /// Buffer capacity in bytes; senders block when exceeded.
    pub buffer_bytes: usize,
    /// Per-message processing cost (the driver/stack overhead of "the
    /// call made by the driver to request a row of data" the paper
    /// describes): serializes on the link, so many small messages are
    /// slower than few large ones.
    pub per_msg_cost: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        // Defaults sized after the paper's setup: 100 Mbit/s LAN, ~75 KB
        // of output buffering between server and client.
        NetConfig {
            latency: Duration::from_micros(100),
            bytes_per_sec: Some(12_500_000),
            buffer_bytes: 64 * 1024,
            per_msg_cost: Duration::from_micros(20),
        }
    }
}

impl NetConfig {
    /// Zero-latency, unbounded configuration (useful in unit tests).
    pub fn instant() -> Self {
        NetConfig {
            latency: Duration::ZERO,
            bytes_per_sec: None,
            buffer_bytes: usize::MAX,
            per_msg_cost: Duration::ZERO,
        }
    }
}

/// One queued frame. A `hole` frame marks where a dropped message sat:
/// frames ahead of it deliver normally, frames behind it cannot be
/// reassembled (no retransmission on this model), so delivery halts
/// silently at the hole — exactly how an unrecovered TCP segment loss
/// presents to the receiver.
#[derive(Clone)]
struct Frame {
    payload: Vec<u8>,
    deliver_at: Instant,
    hole: bool,
}

struct PipeState {
    queue: VecDeque<Frame>,
    bytes: usize,
    closed: bool,
    /// Virtual time at which the link frees up (bandwidth serialization).
    link_free_at: Instant,
    /// Injected fault schedule, consulted once per send.
    faults: Option<NetSchedule>,
    /// While set, delivery of everything queued is withheld (stalled
    /// link): receivers see silence, not an error.
    stall_until: Option<Instant>,
}

/// One direction of a connection.
pub struct Pipe {
    cfg: NetConfig,
    state: Mutex<PipeState>,
    readable: Condvar,
    writable: Condvar,
}

impl Pipe {
    /// Create a pipe with the given network model.
    pub fn new(cfg: NetConfig) -> Arc<Pipe> {
        Arc::new(Pipe {
            cfg,
            state: Mutex::new(PipeState {
                queue: VecDeque::new(),
                bytes: 0,
                closed: false,
                link_free_at: Instant::now(),
                faults: None,
                stall_until: None,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
        })
    }

    /// Install a fault schedule; evaluated once per [`Pipe::send`].
    pub fn inject(&self, schedule: NetSchedule) {
        self.state.lock().faults = Some(schedule);
    }

    /// Remove any installed fault schedule (the network heals: stalls
    /// lift and dropped frames are "retransmitted", unblocking the
    /// stream).
    pub fn clear_faults(&self) {
        let mut st = self.state.lock();
        st.faults = None;
        st.stall_until = None;
        st.queue.retain(|f| !f.hole);
        drop(st);
        self.readable.notify_all();
    }

    /// Send a message, blocking while the buffer is full. Returns
    /// `Err(ServerShutdown)` if the pipe is closed, or if `cancel` is set
    /// while waiting.
    pub fn send(&self, mut msg: Vec<u8>, cancel: Option<&AtomicBool>) -> Result<(), Error> {
        let size = msg.len().max(1);
        let mut st = self.state.lock();
        loop {
            if st.closed {
                return Err(Error::ServerShutdown);
            }
            if let Some(c) = cancel {
                if c.load(std::sync::atomic::Ordering::Relaxed) {
                    return Err(Error::TxnAborted("statement cancelled".into()));
                }
            }
            if st.bytes + size <= self.cfg.buffer_bytes || st.queue.is_empty() {
                break;
            }
            self.writable.wait_for(&mut st, Duration::from_millis(1));
        }
        // Injected network faults, one draw per message.
        let mut extra_delay = Duration::ZERO;
        let fault = st.faults.as_mut().and_then(NetSchedule::next_fault);
        if let Some(f) = &fault {
            // Every injected fault is a causal landmark for the chaos
            // timeline: count it and trace it under the kind's spec name.
            obskit::metrics::global()
                .counter(fault_counter(f.kind()))
                .incr();
            obskit::event!(
                "wire.net.fault",
                "{} ({} B frame)",
                f.kind().name(),
                msg.len()
            );
        }
        match fault {
            None => {}
            Some(NetFault::Drop) => {
                // Silently lost: the sender believes it went out. On a
                // stream transport the loss is a permanent hole — later
                // frames cannot be delivered past it, so the receiver
                // sees silence until a timeout tears the link down.
                st.queue.push_back(Frame {
                    payload: Vec::new(),
                    deliver_at: Instant::now(),
                    hole: true,
                });
                return Ok(());
            }
            Some(NetFault::Truncate) => {
                // A prefix arrives; the receiver's decode fails and must
                // treat the stream as unrecoverable.
                msg.truncate(msg.len() / 2);
            }
            Some(NetFault::Delay(d)) => extra_delay = d,
            Some(NetFault::Stall(d)) => {
                let until = Instant::now() + d;
                st.stall_until = Some(st.stall_until.map_or(until, |u| u.max(until)));
            }
            Some(NetFault::Flap) => {
                // Link reset: both sides see the connection die.
                st.closed = true;
                st.queue.clear();
                st.bytes = 0;
                drop(st);
                self.readable.notify_all();
                self.writable.notify_all();
                return Err(Error::ServerShutdown);
            }
        }
        let size = msg.len().max(1);
        // Delivery time: serialize on the link after the previous message.
        let now = Instant::now();
        let start = st.link_free_at.max(now);
        let tx_time = match self.cfg.bytes_per_sec {
            Some(bps) if bps > 0 => {
                Duration::from_nanos((size as u64).saturating_mul(1_000_000_000) / bps)
            }
            _ => Duration::ZERO,
        };
        let deliver_at = start + self.cfg.latency + tx_time + self.cfg.per_msg_cost + extra_delay;
        st.link_free_at = start + tx_time + self.cfg.per_msg_cost;
        st.bytes += size;
        st.queue.push_back(Frame {
            payload: msg,
            deliver_at,
            hole: false,
        });
        drop(st);
        self.readable.notify_one();
        Ok(())
    }

    /// Receive the next message, blocking up to `timeout` (`None` = wait
    /// forever). `Err(Timeout)` on deadline, `Err(ServerShutdown)` when
    /// the pipe is closed and drained.
    pub fn recv(&self, timeout: Option<Duration>) -> Result<Vec<u8>, Error> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut st = self.state.lock();
        loop {
            // A hole at the front withholds everything behind it: the
            // receiver sees silence, not an error (fall through to the
            // timed waits below).
            if let Some(frame) = st.queue.front().cloned().filter(|f| !f.hole) {
                let msg = frame.payload;
                let mut deliver_at = frame.deliver_at;
                let now = Instant::now();
                // A stalled link withholds everything queued, silently.
                match st.stall_until {
                    Some(until) if until > now => deliver_at = deliver_at.max(until),
                    Some(_) => st.stall_until = None,
                    None => {}
                }
                if deliver_at <= now {
                    st.queue.pop_front();
                    st.bytes -= msg.len().max(1);
                    drop(st);
                    self.writable.notify_one();
                    return Ok(msg);
                }
                // Wait out the simulated latency (bounded by deadline).
                let mut wait = deliver_at - now;
                if let Some(d) = deadline {
                    if d <= now {
                        return Err(Error::Timeout);
                    }
                    wait = wait.min(d - now);
                }
                self.readable.wait_for(&mut st, wait);
                continue;
            }
            if st.closed {
                return Err(Error::ServerShutdown);
            }
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if d <= now {
                        return Err(Error::Timeout);
                    }
                    self.readable.wait_for(&mut st, d - now);
                }
                None => {
                    self.readable.wait_for(&mut st, Duration::from_millis(50));
                }
            }
        }
    }

    /// Close the pipe: wake all blocked senders/receivers. Undelivered
    /// messages are dropped (they were "in flight" at crash time).
    pub fn close(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        st.queue.clear();
        st.bytes = 0;
        drop(st);
        self.readable.notify_all();
        self.writable.notify_all();
    }

    /// Whether [`Pipe::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// Bytes currently buffered (tests/metrics).
    pub fn buffered_bytes(&self) -> usize {
        self.state.lock().bytes
    }
}

/// One endpoint of a bidirectional connection.
pub struct Endpoint {
    /// Outbound direction.
    pub tx: Arc<Pipe>,
    /// Inbound direction.
    pub rx: Arc<Pipe>,
}

impl Endpoint {
    /// Create a connected pair: (client endpoint, server endpoint).
    pub fn pair(client_to_server: NetConfig, server_to_client: NetConfig) -> (Endpoint, Endpoint) {
        let c2s = Pipe::new(client_to_server);
        let s2c = Pipe::new(server_to_client);
        (
            Endpoint {
                tx: Arc::clone(&c2s),
                rx: Arc::clone(&s2c),
            },
            Endpoint { tx: s2c, rx: c2s },
        )
    }

    /// Tear down both directions (crash semantics: in-flight data is lost).
    pub fn close(&self) {
        self.tx.close();
        self.rx.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn round_trip() {
        let (c, s) = Endpoint::pair(NetConfig::instant(), NetConfig::instant());
        c.tx.send(b"hello".to_vec(), None).unwrap();
        assert_eq!(s.rx.recv(Some(Duration::from_secs(1))).unwrap(), b"hello");
        s.tx.send(b"world".to_vec(), None).unwrap();
        assert_eq!(c.rx.recv(Some(Duration::from_secs(1))).unwrap(), b"world");
    }

    #[test]
    fn bounded_buffer_blocks_sender() {
        let cfg = NetConfig {
            buffer_bytes: 100,
            ..NetConfig::instant()
        };
        let pipe = Pipe::new(cfg);
        pipe.send(vec![0u8; 80], None).unwrap();
        // Second message exceeds capacity; sender must block.
        let p2 = Arc::clone(&pipe);
        let h = std::thread::spawn(move || p2.send(vec![0u8; 80], None));
        std::thread::sleep(Duration::from_millis(50));
        assert!(!h.is_finished(), "sender should be blocked on full buffer");
        // Consuming unblocks it.
        pipe.recv(Some(Duration::from_secs(1))).unwrap();
        h.join().unwrap().unwrap();
    }

    #[test]
    fn oversized_message_passes_when_queue_empty() {
        let cfg = NetConfig {
            buffer_bytes: 10,
            ..NetConfig::instant()
        };
        let pipe = Pipe::new(cfg);
        // A message larger than the whole buffer must still be deliverable.
        pipe.send(vec![0u8; 100], None).unwrap();
        assert_eq!(pipe.recv(Some(Duration::from_secs(1))).unwrap().len(), 100);
    }

    #[test]
    fn close_wakes_blocked_receiver() {
        let pipe = Pipe::new(NetConfig::instant());
        let p2 = Arc::clone(&pipe);
        let h = std::thread::spawn(move || p2.recv(Some(Duration::from_secs(5))));
        std::thread::sleep(Duration::from_millis(30));
        pipe.close();
        assert_eq!(h.join().unwrap(), Err(Error::ServerShutdown));
    }

    #[test]
    fn close_wakes_blocked_sender() {
        let cfg = NetConfig {
            buffer_bytes: 10,
            ..NetConfig::instant()
        };
        let pipe = Pipe::new(cfg);
        pipe.send(vec![0u8; 10], None).unwrap();
        let p2 = Arc::clone(&pipe);
        let h = std::thread::spawn(move || p2.send(vec![0u8; 10], None));
        std::thread::sleep(Duration::from_millis(30));
        pipe.close();
        assert_eq!(h.join().unwrap(), Err(Error::ServerShutdown));
    }

    #[test]
    fn recv_times_out() {
        let pipe = Pipe::new(NetConfig::instant());
        let start = Instant::now();
        assert_eq!(
            pipe.recv(Some(Duration::from_millis(50))),
            Err(Error::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(45));
    }

    #[test]
    fn cancel_unblocks_sender() {
        let cfg = NetConfig {
            buffer_bytes: 10,
            ..NetConfig::instant()
        };
        let pipe = Pipe::new(cfg);
        pipe.send(vec![0u8; 10], None).unwrap();
        let p2 = Arc::clone(&pipe);
        let cancel = Arc::new(AtomicBool::new(false));
        let c2 = Arc::clone(&cancel);
        let h = std::thread::spawn(move || p2.send(vec![0u8; 10], Some(&c2)));
        std::thread::sleep(Duration::from_millis(30));
        cancel.store(true, Ordering::Relaxed);
        assert!(matches!(h.join().unwrap(), Err(Error::TxnAborted(_))));
    }

    #[test]
    fn latency_delays_delivery() {
        let cfg = NetConfig {
            latency: Duration::from_millis(30),
            ..NetConfig::instant()
        };
        let pipe = Pipe::new(cfg);
        pipe.send(b"x".to_vec(), None).unwrap();
        let start = Instant::now();
        pipe.recv(Some(Duration::from_secs(1))).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn injected_drop_holes_the_stream() {
        use faultkit::net::{NetFaultKind, NetPlan};
        let pipe = Pipe::new(NetConfig::instant());
        pipe.inject(NetPlan::at(NetFaultKind::Drop, 2).schedule(0));
        pipe.send(b"a".to_vec(), None).unwrap();
        pipe.send(b"b".to_vec(), None).unwrap(); // silently lost
        pipe.send(b"c".to_vec(), None).unwrap();
        assert_eq!(pipe.recv(Some(Duration::from_secs(1))).unwrap(), b"a");
        // "c" must NOT arrive in "b"'s place: frames beyond the hole are
        // withheld (a gap on a stream transport is unrecoverable), and
        // the receiver can detect the loss only by timing out.
        assert_eq!(
            pipe.recv(Some(Duration::from_millis(20))),
            Err(Error::Timeout)
        );
        // Healing the link ("retransmission") resumes delivery in order.
        pipe.clear_faults();
        assert_eq!(pipe.recv(Some(Duration::from_secs(1))).unwrap(), b"c");
    }

    #[test]
    fn injected_truncate_delivers_a_prefix() {
        use faultkit::net::{NetFaultKind, NetPlan};
        let pipe = Pipe::new(NetConfig::instant());
        pipe.inject(NetPlan::at(NetFaultKind::Truncate, 1).schedule(0));
        pipe.send(vec![7u8; 10], None).unwrap();
        let got = pipe.recv(Some(Duration::from_secs(1))).unwrap();
        assert_eq!(got, vec![7u8; 5]);
        // Byte accounting must match the truncated size.
        assert_eq!(pipe.buffered_bytes(), 0);
    }

    #[test]
    fn injected_flap_closes_the_pipe() {
        use faultkit::net::{NetFaultKind, NetPlan};
        let pipe = Pipe::new(NetConfig::instant());
        pipe.inject(NetPlan::at(NetFaultKind::Flap, 2).schedule(0));
        pipe.send(b"a".to_vec(), None).unwrap();
        assert_eq!(pipe.send(b"b".to_vec(), None), Err(Error::ServerShutdown));
        assert!(pipe.is_closed());
        assert_eq!(
            pipe.recv(Some(Duration::from_millis(20))),
            Err(Error::ServerShutdown)
        );
    }

    #[test]
    fn injected_stall_withholds_delivery_without_error() {
        use faultkit::net::{NetFaultKind, NetPlan, STALL};
        let pipe = Pipe::new(NetConfig::instant());
        pipe.inject(NetPlan::at(NetFaultKind::Stall, 1).schedule(0));
        pipe.send(b"x".to_vec(), None).unwrap();
        let start = Instant::now();
        // Short-deadline reads see silence, not an error payload.
        assert_eq!(
            pipe.recv(Some(Duration::from_millis(50))),
            Err(Error::Timeout)
        );
        // Patience (or a watchdog-sized deadline) gets the message.
        let got = pipe.recv(Some(STALL * 4)).unwrap();
        assert_eq!(got, b"x");
        assert!(start.elapsed() >= STALL - Duration::from_millis(20));
    }

    #[test]
    fn injected_delay_spikes_latency_once() {
        use faultkit::net::{NetFaultKind, NetPlan, DELAY_SPIKE};
        let pipe = Pipe::new(NetConfig::instant());
        pipe.inject(NetPlan::at(NetFaultKind::Delay, 1).schedule(0));
        pipe.send(b"x".to_vec(), None).unwrap();
        let start = Instant::now();
        pipe.recv(Some(Duration::from_secs(1))).unwrap();
        assert!(start.elapsed() >= DELAY_SPIKE - Duration::from_millis(5));
        // Later messages are unaffected.
        pipe.send(b"y".to_vec(), None).unwrap();
        let start = Instant::now();
        pipe.recv(Some(Duration::from_secs(1))).unwrap();
        assert!(start.elapsed() < DELAY_SPIKE);
    }

    #[test]
    fn clear_faults_heals_the_link() {
        use faultkit::net::{NetFaultKind, NetPlan};
        let pipe = Pipe::new(NetConfig::instant());
        pipe.inject(NetPlan::at(NetFaultKind::Drop, 1).schedule(0));
        pipe.clear_faults();
        pipe.send(b"a".to_vec(), None).unwrap();
        assert_eq!(pipe.recv(Some(Duration::from_secs(1))).unwrap(), b"a");
    }

    #[test]
    fn bandwidth_serializes_large_transfers() {
        let cfg = NetConfig {
            bytes_per_sec: Some(1_000_000), // 1 MB/s
            ..NetConfig::instant()
        };
        let pipe = Pipe::new(cfg);
        pipe.send(vec![0u8; 100_000], None).unwrap(); // 100 ms of link time
        let start = Instant::now();
        pipe.recv(Some(Duration::from_secs(1))).unwrap();
        assert!(
            start.elapsed() >= Duration::from_millis(80),
            "elapsed {:?}",
            start.elapsed()
        );
    }
}
