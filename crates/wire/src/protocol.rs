//! Binary request/response protocol between the ODBC-like driver and the
//! database server. Messages are encoded to byte frames so the simulated
//! network can account buffer occupancy and transfer time accurately.

use bytes::{Buf, BufMut};

use sqlengine::schema::{decode_row, encode_row};
use sqlengine::types::{DataType, Row};
use sqlengine::{Column, Error};

/// Client-assigned statement identifier; tags every statement-scoped
/// response so stale traffic from cancelled statements can be discarded.
pub type StmtId = u32;

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a database session.
    Connect {
        /// Login string, echoed into the session context.
        login: String,
    },
    /// Execute a SQL batch. If `skip > 0` the server advances past the
    /// first `skip` result rows *server-side* before streaming — the
    /// protocol-level equivalent of the paper's repositioning stored
    /// procedure (rows are scanned at the server, never transmitted).
    Exec {
        /// Statement id chosen by the client.
        stmt: StmtId,
        /// SQL batch text.
        sql: String,
        /// Rows to advance past server-side before streaming (the
        /// repositioning-stored-procedure equivalent).
        skip: u64,
    },
    /// Cancel a streaming statement and release its resources.
    CloseStmt {
        /// The statement to cancel.
        stmt: StmtId,
    },
    /// Liveness probe (Phoenix's private-connection ping).
    Ping,
    /// Orderly session close.
    Disconnect,
}

/// How a statement completed.
#[derive(Debug, Clone, PartialEq)]
pub enum DoneKind {
    /// Result set fully streamed; total row count.
    Rows(u64),
    /// DML row count.
    Affected(u64),
    /// DDL / control success.
    Ok,
}

/// Server → client messages. Statement-scoped messages carry the stmt id
/// so a client can discard stragglers from a cancelled statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Session established.
    Connected {
        /// Server-side session id.
        session: u64,
    },
    /// Result metadata (column names and types).
    Meta {
        /// Owning statement.
        stmt: StmtId,
        /// Column names and types.
        columns: Vec<(String, DataType)>,
    },
    /// A batch of result rows.
    RowBatch {
        /// Owning statement.
        stmt: StmtId,
        /// The rows.
        rows: Vec<Row>,
    },
    /// Statement completed.
    Done {
        /// Owning statement.
        stmt: StmtId,
        /// Completion kind.
        kind: DoneKind,
    },
    /// Reply to [`Request::Ping`].
    Pong,
    /// Statement- or connection-level failure.
    Error {
        /// Owning statement (0 for connection-level).
        stmt: StmtId,
        /// The error.
        error: Error,
    },
}

// -- error code mapping ------------------------------------------------------

fn error_code(e: &Error) -> u8 {
    match e {
        Error::Syntax(_) => 0,
        Error::Semantic(_) => 1,
        Error::NotFound(_) => 2,
        Error::AlreadyExists(_) => 3,
        Error::DuplicateKey(_) => 4,
        Error::Deadlock => 5,
        Error::TxnAborted(_) => 6,
        Error::ServerShutdown => 7,
        Error::NoSuchSession => 8,
        Error::Storage(_) => 9,
        Error::Internal(_) => 10,
        Error::Timeout => 11,
        Error::RecoveryExhausted => 12,
        Error::Corruption { .. } => 13,
        Error::ServerBusy { .. } => 14,
    }
}

/// Field separator for multi-part error payloads (Corruption carries
/// device + detail in one string).
const PAYLOAD_SEP: char = '\u{1f}';

fn error_payload(e: &Error) -> String {
    match e {
        Error::Syntax(m)
        | Error::Semantic(m)
        | Error::NotFound(m)
        | Error::AlreadyExists(m)
        | Error::DuplicateKey(m)
        | Error::TxnAborted(m)
        | Error::Storage(m)
        | Error::Internal(m) => m.clone(),
        Error::Corruption { device, detail } => format!("{device}{PAYLOAD_SEP}{detail}"),
        Error::ServerBusy { retry_after } => retry_after.as_millis().to_string(),
        other => other.to_string(),
    }
}

fn error_from(code: u8, msg: String) -> Error {
    match code {
        0 => Error::Syntax(msg),
        1 => Error::Semantic(msg),
        2 => Error::NotFound(msg),
        3 => Error::AlreadyExists(msg),
        4 => Error::DuplicateKey(msg),
        5 => Error::Deadlock,
        6 => Error::TxnAborted(msg),
        7 => Error::ServerShutdown,
        8 => Error::NoSuchSession,
        9 => Error::Storage(msg),
        11 => Error::Timeout,
        12 => Error::RecoveryExhausted,
        13 => {
            let (device, detail) = msg
                .split_once(PAYLOAD_SEP)
                .map(|(d, r)| (d.to_string(), r.to_string()))
                .unwrap_or(("unknown".into(), msg));
            Error::Corruption { device, detail }
        }
        14 => Error::ServerBusy {
            // A garbled hint degrades to "retry immediately" — the
            // client's own backoff still spaces the attempts.
            retry_after: std::time::Duration::from_millis(msg.parse().unwrap_or(0)),
        },
        _ => Error::Internal(msg),
    }
}

// -- codec helpers -----------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.put_u32(s.len() as u32);
    out.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String, Error> {
    let corrupt = || Error::Internal("corrupt wire frame".into());
    if buf.remaining() < 4 {
        return Err(corrupt());
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(corrupt());
    }
    let s = String::from_utf8(buf[..len].to_vec()).map_err(|_| corrupt())?;
    buf.advance(len);
    Ok(s)
}

fn dtype_tag(t: DataType) -> u8 {
    match t {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Date => 3,
    }
}

fn dtype_from(tag: u8) -> Result<DataType, Error> {
    Ok(match tag {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Str,
        3 => DataType::Date,
        _ => return Err(Error::Internal("bad dtype tag".into())),
    })
}

// -- Request codec -----------------------------------------------------------

impl Request {
    /// Serialize to a wire frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Connect { login } => {
                out.put_u8(0);
                put_str(&mut out, login);
            }
            Request::Exec { stmt, sql, skip } => {
                out.put_u8(1);
                out.put_u32(*stmt);
                out.put_u64(*skip);
                put_str(&mut out, sql);
            }
            Request::CloseStmt { stmt } => {
                out.put_u8(2);
                out.put_u32(*stmt);
            }
            Request::Ping => out.put_u8(3),
            Request::Disconnect => out.put_u8(4),
        }
        out
    }

    /// Parse a wire frame.
    pub fn decode(mut buf: &[u8]) -> Result<Request, Error> {
        let corrupt = || Error::Internal("corrupt wire frame".into());
        if buf.remaining() < 1 {
            return Err(corrupt());
        }
        let tag = buf.get_u8();
        Ok(match tag {
            0 => Request::Connect {
                login: get_str(&mut buf)?,
            },
            1 => {
                if buf.remaining() < 12 {
                    return Err(corrupt());
                }
                let stmt = buf.get_u32();
                let skip = buf.get_u64();
                Request::Exec {
                    stmt,
                    sql: get_str(&mut buf)?,
                    skip,
                }
            }
            2 => {
                if buf.remaining() < 4 {
                    return Err(corrupt());
                }
                Request::CloseStmt {
                    stmt: buf.get_u32(),
                }
            }
            3 => Request::Ping,
            4 => Request::Disconnect,
            _ => return Err(corrupt()),
        })
    }
}

// -- Response codec ----------------------------------------------------------

impl Response {
    /// Serialize to a wire frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Connected { session } => {
                out.put_u8(0);
                out.put_u64(*session);
            }
            Response::Meta { stmt, columns } => {
                out.put_u8(1);
                out.put_u32(*stmt);
                out.put_u16(columns.len() as u16);
                for (name, t) in columns {
                    put_str(&mut out, name);
                    out.put_u8(dtype_tag(*t));
                }
            }
            Response::RowBatch { stmt, rows } => {
                out.put_u8(2);
                out.put_u32(*stmt);
                out.put_u32(rows.len() as u32);
                for r in rows {
                    encode_row(r, &mut out);
                }
            }
            Response::Done { stmt, kind } => {
                out.put_u8(3);
                out.put_u32(*stmt);
                match kind {
                    DoneKind::Rows(n) => {
                        out.put_u8(0);
                        out.put_u64(*n);
                    }
                    DoneKind::Affected(n) => {
                        out.put_u8(1);
                        out.put_u64(*n);
                    }
                    DoneKind::Ok => out.put_u8(2),
                }
            }
            Response::Pong => out.put_u8(4),
            Response::Error { stmt, error } => {
                out.put_u8(5);
                out.put_u32(*stmt);
                out.put_u8(error_code(error));
                put_str(&mut out, &error_payload(error));
            }
        }
        out
    }

    /// Parse a wire frame.
    pub fn decode(mut buf: &[u8]) -> Result<Response, Error> {
        let corrupt = || Error::Internal("corrupt wire frame".into());
        if buf.remaining() < 1 {
            return Err(corrupt());
        }
        let tag = buf.get_u8();
        Ok(match tag {
            0 => {
                if buf.remaining() < 8 {
                    return Err(corrupt());
                }
                Response::Connected {
                    session: buf.get_u64(),
                }
            }
            1 => {
                if buf.remaining() < 6 {
                    return Err(corrupt());
                }
                let stmt = buf.get_u32();
                let n = buf.get_u16() as usize;
                let mut columns = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = get_str(&mut buf)?;
                    if buf.remaining() < 1 {
                        return Err(corrupt());
                    }
                    columns.push((name, dtype_from(buf.get_u8())?));
                }
                Response::Meta { stmt, columns }
            }
            2 => {
                if buf.remaining() < 8 {
                    return Err(corrupt());
                }
                let stmt = buf.get_u32();
                let n = buf.get_u32() as usize;
                let mut rows = Vec::with_capacity(n);
                let mut rest = buf;
                for _ in 0..n {
                    // decode_row consumes a prefix; re-slice manually.
                    let row = decode_row(rest)?;
                    // Compute consumed length by re-encoding (rows are
                    // small; correctness over micro-optimization here).
                    let mut tmp = Vec::new();
                    encode_row(&row, &mut tmp);
                    rest = &rest[tmp.len()..];
                    rows.push(row);
                }
                Response::RowBatch { stmt, rows }
            }
            3 => {
                if buf.remaining() < 5 {
                    return Err(corrupt());
                }
                let stmt = buf.get_u32();
                let kind = match buf.get_u8() {
                    0 => {
                        if buf.remaining() < 8 {
                            return Err(corrupt());
                        }
                        DoneKind::Rows(buf.get_u64())
                    }
                    1 => {
                        if buf.remaining() < 8 {
                            return Err(corrupt());
                        }
                        DoneKind::Affected(buf.get_u64())
                    }
                    2 => DoneKind::Ok,
                    _ => return Err(corrupt()),
                };
                Response::Done { stmt, kind }
            }
            4 => Response::Pong,
            5 => {
                if buf.remaining() < 5 {
                    return Err(corrupt());
                }
                let stmt = buf.get_u32();
                let code = buf.get_u8();
                let msg = get_str(&mut buf)?;
                Response::Error {
                    stmt,
                    error: error_from(code, msg),
                }
            }
            _ => return Err(corrupt()),
        })
    }
}

/// Schema → wire column descriptors.
pub fn columns_to_wire(schema: &[Column]) -> Vec<(String, DataType)> {
    schema.iter().map(|c| (c.name.clone(), c.dtype)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlengine::types::Value;

    #[test]
    fn request_round_trip() {
        let reqs = vec![
            Request::Connect {
                login: "app/user".into(),
            },
            Request::Exec {
                stmt: 7,
                sql: "SELECT * FROM t WHERE 0=1".into(),
                skip: 42,
            },
            Request::CloseStmt { stmt: 7 },
            Request::Ping,
            Request::Disconnect,
        ];
        for r in reqs {
            assert_eq!(Request::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn response_round_trip() {
        let rows = vec![
            vec![Value::Int(1), Value::Str("x".into()), Value::Null],
            vec![Value::Float(2.5), Value::Date(8035), Value::Int(-1)],
        ];
        let resps = vec![
            Response::Connected { session: 9 },
            Response::Meta {
                stmt: 1,
                columns: vec![
                    ("a".into(), DataType::Int),
                    ("b".into(), DataType::Str),
                    ("d".into(), DataType::Date),
                ],
            },
            Response::RowBatch { stmt: 1, rows },
            Response::Done {
                stmt: 1,
                kind: DoneKind::Rows(2),
            },
            Response::Done {
                stmt: 2,
                kind: DoneKind::Affected(17),
            },
            Response::Done {
                stmt: 3,
                kind: DoneKind::Ok,
            },
            Response::Pong,
            Response::Error {
                stmt: 4,
                error: Error::Deadlock,
            },
            Response::Error {
                stmt: 5,
                error: Error::NotFound("table x".into()),
            },
            Response::Error {
                stmt: 0,
                error: Error::ServerBusy {
                    retry_after: std::time::Duration::from_millis(37),
                },
            },
        ];
        for r in resps {
            assert_eq!(Response::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn corrupt_frames_rejected() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[99]).is_err());
        assert!(Response::decode(&[1, 0]).is_err());
    }
}
