//! The database server process: thread-per-connection request handling,
//! streaming result production into bounded network buffers, crash
//! (`SHUTDOWN WITH NOWAIT` / fault injection) and restart with recovery.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use faultkit::net::NetPlan;
use parking_lot::Mutex;

use sqlengine::engine::{Cursor, Durable, Engine, ExecOutcome};
use sqlengine::storage::disk::{DiskModel, IoSnapshot};
use sqlengine::wal::recovery::{RecoveryConfig, RecoveryStats};
use sqlengine::{Error, Result};

pub use sqlengine::wal::log::GroupCommit;

use crate::admission::{self, AdmissionConfig, AdmissionController, AdmissionStats};
use crate::protocol::{columns_to_wire, DoneKind, Request, Response, StmtId};
use crate::transport::{Endpoint, NetConfig};

/// Server tuning.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Per-I/O latency model for the simulated disk.
    pub disk_model: DiskModel,
    /// Buffer-pool capacity in pages.
    pub pool_capacity: usize,
    /// Client → server link model.
    pub net_c2s: NetConfig,
    /// Server → client link model (the bounded output buffer lives here).
    pub net_s2c: NetConfig,
    /// Rows per `RowBatch` message.
    pub row_batch: usize,
    /// Initial network fault plan applied to every new connection's
    /// pipes (see [`DbServer::set_fault_plan`] for runtime control).
    pub faults: Option<NetPlan>,
    /// Run a checksum scrub of every page as the final phase of restart
    /// recovery, repairing latent corruption before clients reconnect.
    pub scrub_on_restart: bool,
    /// Group-commit window: when enabled, concurrent committing
    /// sessions coalesce into one WAL fsync per batch. Survives
    /// crash/restart (it is server tuning, not volatile state).
    pub group_commit: GroupCommit,
    /// Admission control: bounded session registry, pending-accept gate,
    /// idle eviction and per-session memory budgets (see
    /// [`crate::admission`]). Defaults are permissive.
    pub admission: AdmissionConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            disk_model: DiskModel::default(),
            pool_capacity: 4096,
            net_c2s: NetConfig::default(),
            net_s2c: NetConfig::default(),
            row_batch: 16,
            faults: None,
            scrub_on_restart: false,
            group_commit: GroupCommit::default(),
            admission: AdmissionConfig::default(),
        }
    }
}

impl ServerConfig {
    /// Zero-latency network (fast tests).
    pub fn instant_net() -> Self {
        ServerConfig {
            net_c2s: NetConfig::instant(),
            net_s2c: NetConfig::instant(),
            ..Default::default()
        }
    }
}

struct Process {
    engine: Arc<Engine>,
    conns: Mutex<Vec<Arc<Endpoint>>>,
}

struct ServerInner {
    durable: Durable,
    config: ServerConfig,
    process: Mutex<Option<Arc<Process>>>,
    last_recovery: Mutex<Option<(Duration, RecoveryStats)>>,
    /// Active network fault plan; new connections derive per-pipe
    /// schedules from it. Survives crash/restart (the *network* is
    /// faulty, not the server process).
    faults: Mutex<Option<NetPlan>>,
    /// Monotonic pipe index: each connection consumes two (c2s, s2c),
    /// so seeded plans give every pipe its own deterministic stream.
    pipe_seq: AtomicU64,
    /// Admission control. Lives with the durable half — it models the
    /// listener, which outlives database-process crashes.
    admission: AdmissionController,
    /// Incarnation counter, bumped by every successful [`DbServer::restart`].
    /// Admission slots record the epoch they were admitted under so a
    /// post-restart sweep never closes a recycled engine session id.
    epoch: AtomicU64,
}

/// A crashable database server.
///
/// The server owns durable state for its whole lifetime; `crash()` kills
/// the volatile half (engine, sessions, connections — with epoch fencing
/// of stragglers) and `restart()` runs log recovery, exactly the cycle the
/// paper triggers with Query Analyzer's `shutdown with nowait`.
#[derive(Clone)]
pub struct DbServer {
    inner: Arc<ServerInner>,
}

impl DbServer {
    /// Create and start a fresh server.
    pub fn start(config: ServerConfig) -> Result<DbServer> {
        let inner = Arc::new(ServerInner {
            durable: Durable::new(config.disk_model),
            config,
            process: Mutex::new(None),
            last_recovery: Mutex::new(None),
            faults: Mutex::new(config.faults),
            pipe_seq: AtomicU64::new(0),
            admission: AdmissionController::new(config.admission),
            epoch: AtomicU64::new(0),
        });
        let server = DbServer { inner };
        server.restart()?;
        Ok(server)
    }

    /// Boot (or re-boot) the server: run restart recovery.
    pub fn restart(&self) -> Result<RecoveryStats> {
        let mut proc_slot = self.inner.process.lock();
        if proc_slot.is_some() {
            return Err(Error::AlreadyExists("server already running".into()));
        }
        let t0 = Instant::now();
        let engine = Engine::recover(
            &self.inner.durable,
            RecoveryConfig {
                pool_capacity: self.inner.config.pool_capacity,
                scrub: self.inner.config.scrub_on_restart,
                group_commit: self.inner.config.group_commit,
            },
        )?;
        let stats = engine.recovery_stats();
        *self.inner.last_recovery.lock() = Some((t0.elapsed(), stats));
        *proc_slot = Some(Arc::new(Process {
            engine: Arc::new(engine),
            conns: Mutex::new(Vec::new()),
        }));
        let epoch = self.inner.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        drop(proc_slot);
        self.spawn_idle_sweeper(epoch);
        Ok(stats)
    }

    /// Background idle-session sweeper for one server incarnation: ticks
    /// at a quarter of the idle timeout and exits as soon as its epoch is
    /// over (crash, or a newer restart took its place).
    fn spawn_idle_sweeper(&self, epoch: u64) {
        let server = self.clone();
        let tick = (self.inner.config.admission.idle_timeout / 4).max(Duration::from_millis(10));
        std::thread::spawn(move || loop {
            std::thread::sleep(tick);
            if !server.is_up() || server.epoch() != epoch {
                return;
            }
            server.sweep_idle_sessions();
        });
    }

    /// Evict every session idle past the admission timeout. Returns the
    /// number evicted. The background sweeper calls this on a timer;
    /// tests call it directly for determinism.
    pub fn sweep_idle_sessions(&self) -> usize {
        let evicted = self.inner.admission.sweep_idle(Instant::now());
        if evicted.is_empty() {
            return 0;
        }
        let epoch = self.epoch();
        let engine = self.engine();
        for ev in &evicted {
            // Engine session ids are reissued from 1 after a restart: only
            // close the engine session when the slot was admitted under
            // the current incarnation, or a stale slot would tear down an
            // unrelated session that recycled its id.
            if ev.epoch == epoch {
                if let Some(engine) = &engine {
                    engine.close_session(ev.sid);
                }
            }
        }
        evicted.len()
    }

    /// The current server incarnation (bumped by every restart).
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Relaxed)
    }

    /// The admission controller (stats, budgets, sweep bookkeeping).
    pub fn admission(&self) -> &AdmissionController {
        &self.inner.admission
    }

    /// Point-in-time admission statistics.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.inner.admission.stats()
    }

    /// Kill the server immediately: every connection breaks, all volatile
    /// state is lost, durable state is fenced against stragglers.
    pub fn crash(&self) {
        let proc = self.inner.process.lock().take();
        if let Some(p) = proc {
            p.engine.mark_shutdown();
            self.inner.durable.fence();
            for ep in p.conns.lock().iter() {
                ep.close();
            }
        }
    }

    /// Whether the server process is currently running.
    pub fn is_up(&self) -> bool {
        self.inner.process.lock().is_some()
    }

    /// The durable half (disk + log), which outlives crashes.
    pub fn durable(&self) -> &Durable {
        &self.inner.durable
    }

    /// Cumulative disk I/O statistics snapshot.
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.inner.durable.io_snapshot()
    }

    /// Duration and stats of the most recent restart recovery.
    pub fn last_recovery(&self) -> Option<(Duration, RecoveryStats)> {
        *self.inner.last_recovery.lock()
    }

    /// Direct engine access for benchmark setup (bulk loads, checkpoints)
    /// bypassing the network. `None` while crashed.
    pub fn engine(&self) -> Option<Arc<Engine>> {
        self.inner
            .process
            .lock()
            .as_ref()
            .map(|p| Arc::clone(&p.engine))
    }

    /// Install (or clear) the network fault plan. Applies to connections
    /// opened from now on — including the reconnects a recovering client
    /// makes, which is exactly what a chaos soak wants.
    pub fn set_fault_plan(&self, plan: Option<NetPlan>) {
        *self.inner.faults.lock() = plan;
    }

    /// Install (or clear) storage fault schedules on the durable half:
    /// `data` drives page I/O, `wal` drives log flushes. Survives
    /// crash/restart — the *media* is faulty, not the server process.
    pub fn set_disk_fault_plan(
        &self,
        data: Option<faultkit::disk::DiskPlan>,
        wal: Option<faultkit::disk::DiskPlan>,
    ) {
        self.inner.durable.set_disk_faults(data, wal);
    }

    /// Open a network connection to the server.
    ///
    /// Sheds with [`Error::ServerBusy`] when the pending-accept gate is
    /// full — before any endpoint, thread, or engine resource is spent —
    /// bounding the concurrent (re)connects a post-crash herd can land.
    pub fn connect(&self) -> Result<ClientConn> {
        let proc = {
            let slot = self.inner.process.lock();
            slot.as_ref().cloned().ok_or(Error::ServerShutdown)?
        };
        self.inner.admission.begin_pending()?;
        let (client_ep, server_ep) =
            Endpoint::pair(self.inner.config.net_c2s, self.inner.config.net_s2c);
        if let Some(plan) = *self.inner.faults.lock() {
            let i = self.inner.pipe_seq.fetch_add(2, Ordering::Relaxed);
            client_ep.tx.inject(plan.schedule(i)); // client → server
            client_ep.rx.inject(plan.schedule(i + 1)); // server → client
        }
        let server_ep = Arc::new(server_ep);
        proc.conns.lock().push(Arc::clone(&server_ep));
        let engine = Arc::clone(&proc.engine);
        let server = self.clone();
        let cfg = self.inner.config;
        std::thread::spawn(move || connection_loop(server, engine, server_ep, cfg));
        Ok(ClientConn { ep: client_ep })
    }
}

/// Client-side raw connection handle.
pub struct ClientConn {
    ep: Endpoint,
}

impl ClientConn {
    /// Send a request frame.
    pub fn send(&self, req: &Request) -> Result<()> {
        self.ep.tx.send(req.encode(), None)
    }

    /// Receive the next response, waiting up to `timeout`.
    ///
    /// A frame that fails to decode means the byte stream is corrupt
    /// (e.g. a truncated message): there is no way to resynchronize, so
    /// the link is torn down and the error is connection-fatal.
    pub fn recv(&self, timeout: Option<Duration>) -> Result<Response> {
        let frame = self.ep.rx.recv(timeout)?;
        match Response::decode(&frame) {
            Ok(resp) => Ok(resp),
            Err(_) => {
                self.ep.close();
                Err(Error::ServerShutdown)
            }
        }
    }

    /// Drop the link abruptly (client-side close).
    pub fn close(&self) {
        self.ep.close();
    }

    /// Whether the link has been torn down (server crash or close).
    pub fn is_closed(&self) -> bool {
        self.ep.rx.is_closed()
    }
}

// ---------------------------------------------------------------------------
// Server-side connection handling
// ---------------------------------------------------------------------------

/// Best-effort reply on a link that may already be torn down by a server
/// crash or client close. A failed send is deliberately not an error:
/// the response has nowhere to go, and the connection loop observes the
/// dead link at its next `recv`.
fn reply(ep: &Endpoint, resp: Response, cancel: Option<&AtomicBool>) {
    // lint:allow(discard): link death is surfaced by the next recv, not here
    let _ = ep.tx.send(resp.encode(), cancel);
}

/// Releases the pending-accept gate slot taken in [`DbServer::connect`]
/// when the handshake resolves — on every path, including link death.
struct PendingGuard<'a>(&'a AdmissionController);

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        self.0.end_pending();
    }
}

/// Releases an admitted session — registry slot and engine session — on
/// every connection-loop exit path (disconnect, link death, corrupt
/// frame, shutdown statement, panic). `release` reports whether the slot
/// was still registered; an idle eviction may have removed it (and closed
/// the engine session) first, in which case both cleanups are no-ops.
struct SlotGuard<'a> {
    admission: &'a AdmissionController,
    engine: &'a Engine,
    admit_id: u64,
    sid: u64,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.admission.release(self.admit_id);
        self.engine.close_session(self.sid);
    }
}

fn connection_loop(server: DbServer, engine: Arc<Engine>, ep: Arc<Endpoint>, cfg: ServerConfig) {
    let admission = server.admission();
    let epoch = server.epoch();
    // Handshake. The pending-gate slot taken in `connect()` is held until
    // this resolves, bounding concurrent handshakes under a herd — so the
    // wait for the `Connect` frame is itself bounded: a link whose hello
    // never arrives (client died mid-connect, or the frame is stalled by
    // a network fault) must not pin a gate slot past `handshake_timeout`.
    let (sid, admit_id) = {
        let _pending = PendingGuard(admission);
        let handshake_deadline = Instant::now() + cfg.admission.handshake_timeout;
        loop {
            let left = handshake_deadline.saturating_duration_since(Instant::now());
            let Ok(frame) = ep.rx.recv(Some(left)) else {
                ep.close();
                return;
            };
            match Request::decode(&frame) {
                Ok(Request::Connect { .. }) => match admission.admit(epoch, Arc::clone(&ep)) {
                    Ok(admit_id) => match engine.create_session() {
                        Ok(sid) => {
                            admission.bind(admit_id, sid);
                            reply(&ep, Response::Connected { session: sid }, None);
                            break (sid, admit_id);
                        }
                        Err(e) => {
                            admission.release(admit_id);
                            reply(&ep, Response::Error { stmt: 0, error: e }, None);
                            ep.close();
                            return;
                        }
                    },
                    Err(e) => {
                        // Shed: tell the client when to retry, then drop
                        // the link — no server-side state remains.
                        reply(&ep, Response::Error { stmt: 0, error: e }, None);
                        ep.close();
                        return;
                    }
                },
                Ok(Request::Ping) => {
                    reply(&ep, Response::Pong, None);
                }
                _ => {
                    // Corrupt or unexpected pre-session frame: drop the link.
                    ep.close();
                    return;
                }
            }
        }
    };

    let _slot = SlotGuard {
        admission,
        engine: &engine,
        admit_id,
        sid,
    };
    let cancels: Arc<Mutex<HashMap<StmtId, Arc<AtomicBool>>>> =
        Arc::new(Mutex::new(HashMap::new()));

    loop {
        let Ok(frame) = ep.rx.recv(None) else {
            // Link dead (crash or client close). Close our half too so
            // producer threads blocked on the outbound pipe wake up.
            ep.close();
            return;
        };
        // Any inbound frame is liveness for the idle-eviction clock (and
        // traffic for the per-session footprint accounting).
        admission.touch(admit_id, frame.len() as u64);
        // Frame received but not yet acted on: a crash here loses the
        // request entirely (client must re-submit).
        faultkit::crashpoint!("wire.exec.recv");
        let req = match Request::decode(&frame) {
            Ok(r) => r,
            Err(_) => {
                // Corrupt request frame (e.g. truncated in transit): the
                // stream cannot be resynchronized — treat it like a dead
                // link, exactly as a real server drops a broken socket.
                ep.close();
                return;
            }
        };
        match req {
            Request::Ping => {
                reply(&ep, Response::Pong, None);
            }
            Request::Disconnect => {
                ep.close();
                return;
            }
            Request::CloseStmt { stmt } => {
                if let Some(flag) = cancels.lock().get(&stmt) {
                    flag.store(true, std::sync::atomic::Ordering::Relaxed);
                }
            }
            Request::Exec { stmt, sql, skip } => {
                faultkit::crashpoint!("wire.exec.pre");
                // Memory-budget gate: an over-budget session has the
                // statement shed (nothing executes, session preserved)
                // until it drops state. Statements that *release* state
                // (dropping a result table) are always let through — the
                // gate must never block the only way out of it.
                if admission::dropped_result_table(&sql).is_none() {
                    if let Some(e) = admission.over_budget(admit_id) {
                        reply(&ep, Response::Error { stmt, error: e }, None);
                        continue;
                    }
                }
                match engine.execute(sid, &sql) {
                    Err(e) => {
                        reply(&ep, Response::Error { stmt, error: e }, None);
                    }
                    Ok(res) => match res.outcome {
                        ExecOutcome::Affected(n) => {
                            // Phoenix result materialization is charged
                            // against the session's memory budget; the
                            // engine-side state estimate is refreshed on
                            // the same cadence.
                            if let Some(table) = admission::materialized_result_table(&sql) {
                                admission.charge_result(
                                    admit_id,
                                    &table,
                                    n.saturating_mul(admission::RESULT_ROW_BYTES),
                                );
                            }
                            admission.set_state_bytes(admit_id, engine.session_state_bytes(sid));
                            // Executed (and, for modifications, committed)
                            // but the reply has not been sent: the
                            // paper's "crash after commit, before reply"
                            // window that the status table masks.
                            faultkit::crashpoint!("wire.exec.post");
                            reply(
                                &ep,
                                Response::Done {
                                    stmt,
                                    kind: DoneKind::Affected(n),
                                },
                                None,
                            );
                        }
                        ExecOutcome::Ok => {
                            if let Some(table) = admission::dropped_result_table(&sql) {
                                admission.release_result(admit_id, &table);
                            }
                            admission.set_state_bytes(admit_id, engine.session_state_bytes(sid));
                            faultkit::crashpoint!("wire.exec.post.ok");
                            reply(
                                &ep,
                                Response::Done {
                                    stmt,
                                    kind: DoneKind::Ok,
                                },
                                None,
                            );
                        }
                        ExecOutcome::ShutdownRequested { nowait } => {
                            if !nowait {
                                // Graceful: checkpoint so restart redo is
                                // trivial, then stop.
                                if let Some(e) = server.engine() {
                                    // lint:allow(discard): a failed shutdown checkpoint only costs redo time at restart
                                    let _ = e.checkpoint();
                                }
                            }
                            server.crash();
                            return;
                        }
                        ExecOutcome::Rows(cursor) => {
                            let flag = Arc::new(AtomicBool::new(false));
                            cancels.lock().insert(stmt, Arc::clone(&flag));
                            let ep2 = Arc::clone(&ep);
                            let cancels2 = Arc::clone(&cancels);
                            let batch = cfg.row_batch.max(1);
                            std::thread::spawn(move || {
                                stream_result(ep2, stmt, cursor, skip, batch, flag);
                                cancels2.lock().remove(&stmt);
                            });
                        }
                    },
                }
            }
            Request::Connect { .. } => {
                // Duplicate connect: ignore.
            }
        }
    }
}

/// Producer: push a statement's result into the (bounded) outbound pipe.
/// Blocks when the buffer is full — the suspended-scan behaviour from the
/// paper's Table 3 experiment.
fn stream_result(
    ep: Arc<Endpoint>,
    stmt: StmtId,
    mut cursor: Cursor,
    skip: u64,
    batch_size: usize,
    cancel: Arc<AtomicBool>,
) {
    let columns = columns_to_wire(&cursor.schema);
    faultkit::crashpoint!("wire.stream.meta");
    if ep
        .tx
        .send(Response::Meta { stmt, columns }.encode(), Some(&cancel))
        .is_err()
    {
        return;
    }
    // Server-side repositioning: advance without transmitting.
    for _ in 0..skip {
        match cursor.next() {
            Some(Ok(_)) => {}
            Some(Err(e)) => {
                reply(&ep, Response::Error { stmt, error: e }, Some(&cancel));
                return;
            }
            None => break,
        }
    }
    let mut sent: u64 = 0;
    let mut batch = Vec::with_capacity(batch_size);
    loop {
        if cancel.load(std::sync::atomic::Ordering::Relaxed) {
            // Client abandoned the statement; drop cursor (releases locks).
            return;
        }
        match cursor.next() {
            Some(Ok(row)) => {
                batch.push(row);
                if batch.len() >= batch_size {
                    sent += batch.len() as u64;
                    let msg = Response::RowBatch {
                        stmt,
                        rows: std::mem::take(&mut batch),
                    };
                    faultkit::crashpoint!("wire.stream.batch");
                    if ep.tx.send(msg.encode(), Some(&cancel)).is_err() {
                        return;
                    }
                }
            }
            Some(Err(e)) => {
                reply(&ep, Response::Error { stmt, error: e }, Some(&cancel));
                return;
            }
            None => break,
        }
    }
    if !batch.is_empty() {
        sent += batch.len() as u64;
        let msg = Response::RowBatch { stmt, rows: batch };
        faultkit::crashpoint!("wire.stream.tail");
        if ep.tx.send(msg.encode(), Some(&cancel)).is_err() {
            return;
        }
    }
    faultkit::crashpoint!("wire.stream.done");
    reply(
        &ep,
        Response::Done {
            stmt,
            kind: DoneKind::Rows(sent),
        },
        Some(&cancel),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn connect(server: &DbServer) -> (ClientConn, u64) {
        let conn = server.connect().unwrap();
        conn.send(&Request::Connect {
            login: "test".into(),
        })
        .unwrap();
        let Response::Connected { session } = conn.recv(Some(Duration::from_secs(5))).unwrap()
        else {
            panic!("expected Connected")
        };
        (conn, session)
    }

    type ExecOutcome = (
        Vec<(String, sqlengine::DataType)>,
        Vec<sqlengine::Row>,
        DoneKind,
    );

    fn exec_collect(conn: &ClientConn, stmt: StmtId, sql: &str) -> Result<ExecOutcome> {
        conn.send(&Request::Exec {
            stmt,
            sql: sql.into(),
            skip: 0,
        })?;
        let mut cols = Vec::new();
        let mut rows = Vec::new();
        loop {
            match conn.recv(Some(Duration::from_secs(10)))? {
                Response::Meta { stmt: s, columns } if s == stmt => cols = columns,
                Response::RowBatch {
                    stmt: s,
                    rows: mut r,
                } if s == stmt => rows.append(&mut r),
                Response::Done { stmt: s, kind } if s == stmt => return Ok((cols, rows, kind)),
                Response::Error { stmt: s, error } if s == stmt => return Err(error),
                _ => {}
            }
        }
    }

    #[test]
    fn end_to_end_query() {
        let server = DbServer::start(ServerConfig::instant_net()).unwrap();
        let (conn, _) = connect(&server);
        exec_collect(
            &conn,
            1,
            "CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(10))",
        )
        .unwrap();
        let (_, _, kind) = exec_collect(&conn, 2, "INSERT INTO t VALUES (1,'x'),(2,'y')").unwrap();
        assert_eq!(kind, DoneKind::Affected(2));
        let (cols, rows, kind) = exec_collect(&conn, 3, "SELECT * FROM t ORDER BY a").unwrap();
        assert_eq!(cols.len(), 2);
        assert_eq!(rows.len(), 2);
        assert_eq!(kind, DoneKind::Rows(2));
    }

    #[test]
    fn stalled_handshake_frees_its_pending_slot() {
        let mut cfg = ServerConfig::instant_net();
        cfg.admission.pending_accepts = 1;
        cfg.admission.handshake_timeout = Duration::from_millis(300);
        let server = DbServer::start(cfg).unwrap();
        // Take the only handshake slot and never send the hello.
        let silent = server.connect().unwrap();
        // The gate is full: a second arrival sheds instead of queueing.
        assert!(matches!(server.connect(), Err(Error::ServerBusy { .. })));
        // The slowloris link is cut at the handshake bound and the slot
        // drains — a later arrival gets through and completes normally.
        let deadline = Instant::now() + Duration::from_secs(5);
        let conn = loop {
            match server.connect() {
                Ok(c) => break c,
                Err(Error::ServerBusy { .. }) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => panic!("unexpected connect error: {e:?}"),
            }
        };
        conn.send(&Request::Connect {
            login: "late".into(),
        })
        .unwrap();
        assert!(matches!(
            conn.recv(Some(Duration::from_secs(5))).unwrap(),
            Response::Connected { .. }
        ));
        // The abandoned link was torn down server-side at the bound.
        let deadline = Instant::now() + Duration::from_secs(5);
        while !silent.is_closed() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(silent.is_closed());
    }

    #[test]
    fn ping_pong() {
        let server = DbServer::start(ServerConfig::instant_net()).unwrap();
        let (conn, _) = connect(&server);
        conn.send(&Request::Ping).unwrap();
        assert_eq!(
            conn.recv(Some(Duration::from_secs(5))).unwrap(),
            Response::Pong
        );
    }

    #[test]
    fn crash_breaks_connections_and_restart_recovers() {
        let server = DbServer::start(ServerConfig::instant_net()).unwrap();
        let (conn, _) = connect(&server);
        exec_collect(&conn, 1, "CREATE TABLE t (a INT PRIMARY KEY)").unwrap();
        exec_collect(&conn, 2, "INSERT INTO t VALUES (1),(2),(3)").unwrap();

        server.crash();
        assert!(!server.is_up());
        // Connection is dead.
        let err = exec_collect(&conn, 3, "SELECT * FROM t");
        assert!(matches!(err, Err(Error::ServerShutdown)));
        assert!(server.connect().is_err());

        server.restart().unwrap();
        assert!(server.is_up());
        let (conn2, _) = connect(&server);
        let (_, rows, _) = exec_collect(&conn2, 1, "SELECT * FROM t").unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn shutdown_with_nowait_over_the_wire() {
        let server = DbServer::start(ServerConfig::instant_net()).unwrap();
        let (conn, _) = connect(&server);
        exec_collect(&conn, 1, "CREATE TABLE t (a INT)").unwrap();
        conn.send(&Request::Exec {
            stmt: 2,
            sql: "SHUTDOWN WITH NOWAIT".into(),
            skip: 0,
        })
        .unwrap();
        // No orderly reply: the connection just dies.
        let r = conn.recv(Some(Duration::from_secs(5)));
        assert!(matches!(r, Err(Error::ServerShutdown)), "got {r:?}");
        assert!(!server.is_up());
        server.restart().unwrap();
        let (conn2, _) = connect(&server);
        exec_collect(&conn2, 1, "SELECT * FROM t").unwrap();
    }

    #[test]
    fn server_side_skip_transmits_nothing_for_skipped_rows() {
        let server = DbServer::start(ServerConfig::instant_net()).unwrap();
        let (conn, _) = connect(&server);
        exec_collect(&conn, 1, "CREATE TABLE t (a INT PRIMARY KEY)").unwrap();
        let mut vals = String::from("INSERT INTO t VALUES ");
        for i in 0..100 {
            if i > 0 {
                vals.push(',');
            }
            vals.push_str(&format!("({i})"));
        }
        exec_collect(&conn, 2, &vals).unwrap();

        conn.send(&Request::Exec {
            stmt: 3,
            sql: "SELECT a FROM t".into(),
            skip: 95,
        })
        .unwrap();
        let mut rows = Vec::new();
        loop {
            match conn.recv(Some(Duration::from_secs(5))).unwrap() {
                Response::RowBatch {
                    stmt: 3,
                    rows: mut r,
                } => rows.append(&mut r),
                Response::Done { stmt: 3, kind } => {
                    assert_eq!(kind, DoneKind::Rows(5));
                    break;
                }
                _ => {}
            }
        }
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn close_stmt_cancels_suspended_stream() {
        // Tiny output buffer so the producer suspends immediately.
        let mut cfg = ServerConfig::instant_net();
        cfg.net_s2c.buffer_bytes = 256;
        let server = DbServer::start(cfg).unwrap();
        let (conn, _) = connect(&server);
        exec_collect(
            &conn,
            1,
            "CREATE TABLE t (a INT PRIMARY KEY, pad VARCHAR(50))",
        )
        .unwrap();
        let mut vals = String::from("INSERT INTO t VALUES ");
        for i in 0..500 {
            if i > 0 {
                vals.push(',');
            }
            vals.push_str(&format!("({i}, 'ppppppppppppppppppppppppp')"));
        }
        exec_collect(&conn, 2, &vals).unwrap();

        conn.send(&Request::Exec {
            stmt: 3,
            sql: "SELECT * FROM t".into(),
            skip: 0,
        })
        .unwrap();
        // Read the metadata, then abandon the statement.
        loop {
            if let Response::Meta { stmt: 3, .. } = conn.recv(Some(Duration::from_secs(5))).unwrap()
            {
                break;
            }
        }
        conn.send(&Request::CloseStmt { stmt: 3 }).unwrap();
        // A new statement on the same connection must work; stale batches
        // from stmt 3 are filtered by stmt id.
        let (_, rows, _) = exec_collect(&conn, 4, "SELECT TOP 1 a FROM t WHERE a = 7").unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn recovery_time_reported() {
        let server = DbServer::start(ServerConfig::instant_net()).unwrap();
        let (conn, _) = connect(&server);
        exec_collect(&conn, 1, "CREATE TABLE t (a INT)").unwrap();
        exec_collect(&conn, 2, "INSERT INTO t VALUES (1)").unwrap();
        server.crash();
        let stats = server.restart().unwrap();
        assert!(stats.records_scanned > 0);
        assert!(server.last_recovery().is_some());
    }
}
