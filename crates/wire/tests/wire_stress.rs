//! Wire-layer stress tests: many concurrent connections, interleaved
//! statements, and codec robustness against arbitrary bytes.

// Integration tests unwrap freely; hygiene lints target library code.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::sync::Arc;
use std::time::Duration;

use wire::{DbServer, DoneKind, Request, Response, ServerConfig};

fn connect(server: &DbServer) -> wire::ClientConn {
    let conn = server.connect().unwrap();
    conn.send(&Request::Connect {
        login: "stress".into(),
    })
    .unwrap();
    match conn.recv(Some(Duration::from_secs(5))).unwrap() {
        Response::Connected { .. } => conn,
        other => panic!("unexpected {other:?}"),
    }
}

fn exec_ok(conn: &wire::ClientConn, stmt: u32, sql: &str) -> u64 {
    conn.send(&Request::Exec {
        stmt,
        sql: sql.into(),
        skip: 0,
    })
    .unwrap();
    loop {
        match conn.recv(Some(Duration::from_secs(30))).unwrap() {
            Response::Done { stmt: s, kind } if s == stmt => {
                return match kind {
                    DoneKind::Rows(n) | DoneKind::Affected(n) => n,
                    DoneKind::Ok => 0,
                }
            }
            Response::Error { stmt: s, error } if s == stmt => panic!("{error}"),
            _ => {}
        }
    }
}

#[test]
fn many_concurrent_connections() {
    let server = DbServer::start(ServerConfig::instant_net()).unwrap();
    {
        let c = connect(&server);
        exec_ok(&c, 1, "CREATE TABLE t (k INT PRIMARY KEY, owner INT)");
    }
    let threads = 12;
    let per = 40;
    let mut handles = Vec::new();
    for t in 0..threads {
        let s = server.clone();
        handles.push(std::thread::spawn(move || {
            let conn = connect(&s);
            for i in 0..per {
                let k = t * 1000 + i;
                exec_ok(
                    &conn,
                    (i + 1) as u32,
                    &format!("INSERT INTO t VALUES ({k}, {t})"),
                );
            }
            conn.send(&Request::Disconnect).unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let c = connect(&server);
    c.send(&Request::Exec {
        stmt: 99,
        sql: "SELECT COUNT(*) FROM t".into(),
        skip: 0,
    })
    .unwrap();
    loop {
        match c.recv(Some(Duration::from_secs(10))).unwrap() {
            Response::RowBatch { stmt: 99, rows } => {
                assert_eq!(rows[0][0], sqlengine::Value::Int((threads * per) as i64));
            }
            Response::Done { stmt: 99, .. } => break,
            _ => {}
        }
    }
}

#[test]
fn crash_with_many_live_connections_then_restart() {
    let server = DbServer::start(ServerConfig::instant_net()).unwrap();
    {
        let c = connect(&server);
        exec_ok(&c, 1, "CREATE TABLE t (k INT PRIMARY KEY)");
        exec_ok(&c, 2, "INSERT INTO t VALUES (1),(2),(3)");
    }
    let conns: Vec<_> = (0..8).map(|_| connect(&server)).collect();
    server.crash();
    // Every connection observes the failure.
    for c in &conns {
        c.send(&Request::Ping).ok();
        let r = c.recv(Some(Duration::from_secs(2)));
        assert!(r.is_err(), "got {r:?}");
    }
    server.restart().unwrap();
    let c = connect(&server);
    assert_eq!(exec_ok(&c, 1, "SELECT k FROM t"), 3);
}

#[test]
fn decode_never_panics_on_garbage() {
    use rand::RngCore;
    let mut rng = rand::rngs::mock::StepRng::new(0x1234_5678, 0x9E37_79B9);
    for len in 0..200 {
        let mut buf = vec![0u8; len];
        rng.fill_bytes(&mut buf);
        let _ = Request::decode(&buf);
        let _ = Response::decode(&buf);
    }
}

#[test]
fn interleaved_statements_same_connection_are_tagged() {
    // Start a streaming statement, abandon it, run others; stale batches
    // must never corrupt later results.
    let mut cfg = ServerConfig::instant_net();
    cfg.net_s2c.buffer_bytes = 512;
    let server = DbServer::start(cfg).unwrap();
    let c = connect(&server);
    exec_ok(
        &c,
        1,
        "CREATE TABLE big (k INT PRIMARY KEY, pad VARCHAR(64))",
    );
    let vals: Vec<String> = (0..800)
        .map(|k| format!("({k}, 'ppppppppppppppppppppppppppppp')"))
        .collect();
    for ch in vals.chunks(200) {
        exec_ok(&c, 2, &format!("INSERT INTO big VALUES {}", ch.join(",")));
    }
    for round in 0..5u32 {
        let sid = 100 + round * 2;
        // Streaming statement we abandon mid-flight.
        c.send(&Request::Exec {
            stmt: sid,
            sql: "SELECT * FROM big".into(),
            skip: 0,
        })
        .unwrap();
        // Read a couple of messages then cancel.
        let _ = c.recv(Some(Duration::from_secs(5))).unwrap();
        c.send(&Request::CloseStmt { stmt: sid }).unwrap();
        // A tidy follow-up query.
        let target = 17 * (round as i64 + 1);
        c.send(&Request::Exec {
            stmt: sid + 1,
            sql: format!("SELECT k FROM big WHERE k = {target}"),
            skip: 0,
        })
        .unwrap();
        let mut got = Vec::new();
        loop {
            match c.recv(Some(Duration::from_secs(10))).unwrap() {
                Response::RowBatch { stmt, mut rows } if stmt == sid + 1 => got.append(&mut rows),
                Response::Done { stmt, .. } if stmt == sid + 1 => break,
                _ => {} // stale traffic from the cancelled statement
            }
        }
        assert_eq!(got.len(), 1, "round {round}");
        assert_eq!(got[0][0], sqlengine::Value::Int(target));
    }
}

#[test]
fn server_restart_is_rejected_while_running() {
    let server = DbServer::start(ServerConfig::instant_net()).unwrap();
    assert!(server.restart().is_err());
    server.crash();
    assert!(server.restart().is_ok());
    assert!(Arc::strong_count(&server.engine().unwrap()) >= 1);
}
