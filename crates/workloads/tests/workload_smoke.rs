//! End-to-end workload validation: load seeded TPC-H/TPC-C databases and
//! run every query / transaction type against the engine.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use workloads::client::{EngineClient, SqlClient};
use workloads::tpcc::{self, txns, TpccScale};
use workloads::tpch::{self, queries, refresh, TpchScale};

fn engine_client() -> EngineClient {
    let durable = sqlengine::Durable::new(Default::default());
    let engine =
        std::sync::Arc::new(sqlengine::Engine::recover(&durable, Default::default()).unwrap());
    // Leak the durable so the engine's Arc references stay valid for the
    // test duration (the engine holds its own Arcs; this is belt&braces).
    std::mem::forget(durable);
    EngineClient::new(engine).unwrap()
}

#[test]
fn tpch_loads_and_all_22_queries_run() {
    let client = engine_client();
    let scale = TpchScale::new(0.002);
    let t0 = Instant::now();
    let counts = tpch::load(&client, scale, 42).unwrap();
    eprintln!("loaded {} rows in {:?}", counts.total(), t0.elapsed());
    assert_eq!(counts.region, 5);
    assert_eq!(counts.nation, 25);
    assert_eq!(counts.orders as i64, scale.orders());
    assert!(counts.lineitem as i64 >= scale.orders());

    let mut nonempty = 0;
    for (i, sql) in queries::all_queries() {
        let t = Instant::now();
        let rows = client
            .query(&sql)
            .unwrap_or_else(|e| panic!("Q{i} failed: {e}"));
        eprintln!("Q{i:02}: {} rows in {:?}", rows.len(), t.elapsed());
        if !rows.is_empty() {
            nonempty += 1;
        }
        // Aggregation queries must produce stable arity.
        if let Some(r) = rows.first() {
            assert!(!r.is_empty());
        }
    }
    // Most queries must return data at this scale (a few highly selective
    // ones may legitimately be empty).
    assert!(nonempty >= 16, "only {nonempty}/22 queries returned rows");

    // Q1 sanity: four (returnflag, linestatus) groups at most, count > 0.
    let rows = client.query(&queries::q1()).unwrap();
    assert!(!rows.is_empty() && rows.len() <= 4);
    let count_order = rows[0].last().unwrap().as_i64().unwrap();
    assert!(count_order > 0);
}

#[test]
fn tpch_refresh_functions_roundtrip() {
    let client = engine_client();
    let scale = TpchScale::new(0.001);
    tpch::load(&client, scale, 7).unwrap();
    let mut st = refresh::RefreshState::new(scale, 7);

    let before_orders = client.query("SELECT COUNT(*) FROM orders").unwrap()[0][0]
        .as_i64()
        .unwrap();
    let ins = refresh::rf1(&client, &mut st).unwrap();
    assert!(ins > 0);
    let after_rf1 = client.query("SELECT COUNT(*) FROM orders").unwrap()[0][0]
        .as_i64()
        .unwrap();
    assert_eq!(after_rf1 - before_orders, st.orders_per_refresh());

    let del = refresh::rf2(&client, &mut st).unwrap();
    assert!(del > 0);
    let after_rf2 = client.query("SELECT COUNT(*) FROM orders").unwrap()[0][0]
        .as_i64()
        .unwrap();
    assert_eq!(after_rf2, before_orders);
}

#[test]
fn tpcc_loads_and_all_txn_types_run() {
    let client = engine_client();
    let scale = TpccScale::tiny();
    tpcc::load(&client, scale, 99).unwrap();

    let stock = client.query("SELECT COUNT(*) FROM stock").unwrap()[0][0]
        .as_i64()
        .unwrap();
    assert_eq!(stock, scale.stock_rows());

    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..5 {
        txns::new_order(&client, &mut rng, &scale).unwrap();
        txns::payment(&client, &mut rng, &scale).unwrap();
        txns::order_status(&client, &mut rng, &scale).unwrap();
        txns::stock_level(&client, &mut rng, &scale).unwrap();
    }
    txns::delivery(&client, &mut rng, &scale).unwrap();

    // New orders advanced the district counters and inserted rows.
    let orders = client.query("SELECT COUNT(*) FROM orders").unwrap()[0][0]
        .as_i64()
        .unwrap();
    assert!(orders > scale.orders_per_district * scale.districts_per_warehouse);
    // History rows from payments.
    let hist = client.query("SELECT COUNT(*) FROM history").unwrap()[0][0]
        .as_i64()
        .unwrap();
    assert!(hist >= 5);
}

#[test]
fn tpcc_consistency_after_new_orders() {
    // Mini consistency check (spec §3.3.2.1): d_next_o_id - 1 equals the
    // max o_id per district.
    let client = engine_client();
    let scale = TpccScale::tiny();
    tpcc::load(&client, scale, 11).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..10 {
        let _ = txns::new_order(&client, &mut rng, &scale);
    }
    for d in 1..=scale.districts_per_warehouse {
        let next = client
            .query(&format!(
                "SELECT d_next_o_id FROM district WHERE d_w_id = 1 AND d_id = {d}"
            ))
            .unwrap()[0][0]
            .as_i64()
            .unwrap();
        let max_o = client
            .query(&format!(
                "SELECT MAX(o_id) FROM orders WHERE o_w_id = 1 AND o_d_id = {d}"
            ))
            .unwrap()[0][0]
            .as_i64()
            .unwrap();
        assert_eq!(next - 1, max_o, "district {d}");
    }
}
