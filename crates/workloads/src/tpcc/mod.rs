//! TPC-C style OLTP workload: the order-entry schema, seeded population,
//! the five transaction types, and a multi-user driver with the spec mix.

pub mod driver;
pub mod gen;
pub mod txns;

use sqlengine::Result;

use crate::client::SqlClient;

/// Scale configuration. The paper used 5 warehouses (~500 MB); this
/// reproduction defaults far smaller and everything is parameterized.
#[derive(Debug, Clone, Copy)]
pub struct TpccScale {
    /// Number of warehouses (spec cardinality driver).
    pub warehouses: i64,
    /// Districts per warehouse (spec: 10).
    pub districts_per_warehouse: i64,
    /// Customers per district (spec: 3000).
    pub customers_per_district: i64,
    /// Catalog size (spec: 100 000 items).
    pub items: i64,
    /// Initial orders per district (with matching order-lines/new-orders).
    pub orders_per_district: i64,
}

impl Default for TpccScale {
    fn default() -> Self {
        TpccScale {
            warehouses: 1,
            districts_per_warehouse: 10,
            customers_per_district: 300,
            items: 1000,
            orders_per_district: 300,
        }
    }
}

impl TpccScale {
    /// Tiny configuration for fast tests.
    pub fn tiny() -> TpccScale {
        TpccScale {
            warehouses: 1,
            districts_per_warehouse: 2,
            customers_per_district: 30,
            items: 100,
            orders_per_district: 30,
        }
    }

    /// Rows in the stock table (warehouses × items).
    pub fn stock_rows(&self) -> i64 {
        self.warehouses * self.items
    }
}

/// The nine-table TPC-C schema.
pub fn schema_ddl() -> Vec<&'static str> {
    vec![
        "CREATE TABLE warehouse (w_id INT PRIMARY KEY, w_name VARCHAR(10), w_street VARCHAR(20), w_city VARCHAR(20), w_state VARCHAR(2), w_zip VARCHAR(9), w_tax FLOAT, w_ytd FLOAT)",
        "CREATE TABLE district (d_w_id INT, d_id INT, d_name VARCHAR(10), d_street VARCHAR(20), d_city VARCHAR(20), d_state VARCHAR(2), d_zip VARCHAR(9), d_tax FLOAT, d_ytd FLOAT, d_next_o_id INT, PRIMARY KEY (d_w_id, d_id))",
        "CREATE TABLE customer (c_w_id INT, c_d_id INT, c_id INT, c_first VARCHAR(16), c_middle VARCHAR(2), c_last VARCHAR(16), c_street VARCHAR(20), c_city VARCHAR(20), c_state VARCHAR(2), c_zip VARCHAR(9), c_phone VARCHAR(16), c_since DATE, c_credit VARCHAR(2), c_credit_lim FLOAT, c_discount FLOAT, c_balance FLOAT, c_ytd_payment FLOAT, c_payment_cnt INT, c_delivery_cnt INT, c_data VARCHAR(100), PRIMARY KEY (c_w_id, c_d_id, c_id))",
        "CREATE TABLE item (i_id INT PRIMARY KEY, i_im_id INT, i_name VARCHAR(24), i_price FLOAT, i_data VARCHAR(50))",
        "CREATE TABLE stock (s_w_id INT, s_i_id INT, s_quantity INT, s_dist_01 VARCHAR(24), s_ytd FLOAT, s_order_cnt INT, s_remote_cnt INT, s_data VARCHAR(50), PRIMARY KEY (s_w_id, s_i_id))",
        "CREATE TABLE orders (o_w_id INT, o_d_id INT, o_id INT, o_c_id INT, o_entry_d DATE, o_carrier_id INT, o_ol_cnt INT, o_all_local INT, PRIMARY KEY (o_w_id, o_d_id, o_id))",
        "CREATE TABLE new_order (no_w_id INT, no_d_id INT, no_o_id INT, PRIMARY KEY (no_w_id, no_d_id, no_o_id))",
        "CREATE TABLE order_line (ol_w_id INT, ol_d_id INT, ol_o_id INT, ol_number INT, ol_i_id INT, ol_supply_w_id INT, ol_delivery_d DATE, ol_quantity INT, ol_amount FLOAT, ol_dist_info VARCHAR(24), PRIMARY KEY (ol_w_id, ol_d_id, ol_o_id, ol_number))",
        "CREATE TABLE history (h_c_id INT, h_c_d_id INT, h_c_w_id INT, h_d_id INT, h_w_id INT, h_date DATE, h_amount FLOAT, h_data VARCHAR(24))",
    ]
}

/// Create the schema and load a seeded database at the given scale.
pub fn load(client: &impl SqlClient, scale: TpccScale, seed: u64) -> Result<()> {
    for ddl in schema_ddl() {
        client.execute(ddl)?;
    }
    gen::populate(client, scale, seed)
}
