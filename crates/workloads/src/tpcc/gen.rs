//! Seeded TPC-C population (spec §4.3.3, scaled).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sqlengine::Result;

use super::TpccScale;
use crate::client::SqlClient;

/// Spec syllables for C_LAST.
pub const LAST_SYLLABLES: [&str; 10] = [
    "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
];

/// Customer last name for a number 0..999 (spec NURand domain).
pub fn c_last(num: i64) -> String {
    let n = num.clamp(0, 999);
    format!(
        "{}{}{}",
        LAST_SYLLABLES[(n / 100) as usize % 10],
        LAST_SYLLABLES[(n / 10) as usize % 10],
        LAST_SYLLABLES[n as usize % 10]
    )
}

/// Spec NURand(A, x, y) non-uniform random.
pub fn nurand(rng: &mut StdRng, a: i64, x: i64, y: i64) -> i64 {
    let c = 7; // constant per run
    (((rng.gen_range(0..=a) | rng.gen_range(x..=y)) + c) % (y - x + 1)) + x
}

const LOAD_DATE: &str = "1999-01-01";

fn flush(client: &impl SqlClient, table: &str, rows: &mut Vec<String>) -> Result<()> {
    if rows.is_empty() {
        return Ok(());
    }
    client.execute(&format!("INSERT INTO {table} VALUES {}", rows.join(",")))?;
    rows.clear();
    Ok(())
}

fn push(client: &impl SqlClient, table: &str, rows: &mut Vec<String>, tuple: String) -> Result<()> {
    rows.push(tuple);
    if rows.len() >= 200 {
        flush(client, table, rows)?;
    }
    Ok(())
}

/// Populate all nine tables.
pub fn populate(client: &impl SqlClient, scale: TpccScale, seed: u64) -> Result<()> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buf: Vec<String> = Vec::new();

    // item
    for i in 1..=scale.items {
        let data = if rng.gen_range(0..10) == 0 {
            "ORIGINAL brand goods"
        } else {
            "standard goods"
        };
        push(
            client,
            "item",
            &mut buf,
            format!(
                "({i}, {}, 'Item#{i:06}', {:.2}, '{data}')",
                rng.gen_range(1..=10_000),
                rng.gen_range(1.0..100.0)
            ),
        )?;
    }
    flush(client, "item", &mut buf)?;

    for w in 1..=scale.warehouses {
        client.execute(&format!(
            "INSERT INTO warehouse VALUES ({w}, 'WH{w}', 'street', 'city', 'ST', '123456789', {:.4}, 300000.00)",
            rng.gen_range(0.0..0.2)
        ))?;

        // stock
        for i in 1..=scale.items {
            push(
                client,
                "stock",
                &mut buf,
                format!(
                    "({w}, {i}, {}, 'dist-info-{i:05}', 0.0, 0, 0, 'stock data')",
                    rng.gen_range(10..=100)
                ),
            )?;
        }
        flush(client, "stock", &mut buf)?;

        for d in 1..=scale.districts_per_warehouse {
            let next_o = scale.orders_per_district + 1;
            client.execute(&format!(
                "INSERT INTO district VALUES ({w}, {d}, 'D{d}', 'street', 'city', 'ST', '123456789', {:.4}, 30000.00, {next_o})",
                rng.gen_range(0.0..0.2)
            ))?;

            // customers
            for c in 1..=scale.customers_per_district {
                let last = if c <= 300 {
                    c_last(c - 1)
                } else {
                    c_last(nurand(&mut rng, 255, 0, 999))
                };
                let credit = if rng.gen_range(0..10) == 0 {
                    "BC"
                } else {
                    "GC"
                };
                push(
                    client,
                    "customer",
                    &mut buf,
                    format!(
                        "({w}, {d}, {c}, 'First{c:08}', 'OE', '{last}', 'street', 'city', 'ST', \
                         '123456789', '0123456789012345', '{LOAD_DATE}', '{credit}', 50000.00, \
                         {:.4}, -10.00, 10.00, 1, 0, 'cdata')",
                        rng.gen_range(0.0..0.5)
                    ),
                )?;
            }
            flush(client, "customer", &mut buf)?;

            // orders / order_line / new_order (last third are "new").
            let mut ol_rows: Vec<String> = Vec::new();
            let mut no_rows: Vec<String> = Vec::new();
            for o in 1..=scale.orders_per_district {
                let c = rng.gen_range(1..=scale.customers_per_district);
                let ol_cnt = rng.gen_range(5..=15);
                let is_new = o > scale.orders_per_district * 2 / 3;
                let carrier = if is_new {
                    "NULL".to_string()
                } else {
                    rng.gen_range(1..=10).to_string()
                };
                push(
                    client,
                    "orders",
                    &mut buf,
                    format!("({w}, {d}, {o}, {c}, '{LOAD_DATE}', {carrier}, {ol_cnt}, 1)"),
                )?;
                for ln in 1..=ol_cnt {
                    let i = rng.gen_range(1..=scale.items);
                    let (deliv, amount) = if is_new {
                        (
                            "NULL".to_string(),
                            format!("{:.2}", rng.gen_range(0.01..9999.99)),
                        )
                    } else {
                        (format!("'{LOAD_DATE}'"), "0.00".to_string())
                    };
                    ol_rows.push(format!(
                        "({w}, {d}, {o}, {ln}, {i}, {w}, {deliv}, 5, {amount}, 'dist-info-{i:05}')"
                    ));
                    if ol_rows.len() >= 200 {
                        flush(client, "order_line", &mut ol_rows)?;
                    }
                }
                if is_new {
                    no_rows.push(format!("({w}, {d}, {o})"));
                    if no_rows.len() >= 200 {
                        flush(client, "new_order", &mut no_rows)?;
                    }
                }
            }
            flush(client, "orders", &mut buf)?;
            flush(client, "order_line", &mut ol_rows)?;
            flush(client, "new_order", &mut no_rows)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_names_follow_syllables() {
        assert_eq!(c_last(0), "BARBARBAR");
        assert_eq!(c_last(371), "PRICALLYOUGHT");
        assert_eq!(c_last(999), "EINGEINGEING");
    }

    #[test]
    fn nurand_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = nurand(&mut rng, 1023, 1, 3000);
            assert!((1..=3000).contains(&v));
        }
    }
}
