//! Multi-user TPC-C driver: emulated users with zero think time submit
//! transactions at the spec mix; the measurement interval starts after a
//! warm-up and reports TPM-C (new-order transactions per minute).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sqlengine::Result;

use super::txns::{run_with_retries, TxnOutcome, TxnType};
use super::TpccScale;
use crate::client::SqlClient;

/// Spec transaction mix (weights out of 100): payment ≥43%, order-status /
/// delivery / stock-level ≥4% each, new-order making up the rest.
pub const MIX: [(TxnType, u32); 5] = [
    (TxnType::NewOrder, 45),
    (TxnType::Payment, 43),
    (TxnType::OrderStatus, 4),
    (TxnType::Delivery, 4),
    (TxnType::StockLevel, 4),
];

fn pick_txn(rng: &mut StdRng) -> TxnType {
    let roll = rng.gen_range(0..100u32);
    let mut acc = 0;
    for (t, w) in MIX {
        acc += w;
        if roll < acc {
            return t;
        }
    }
    TxnType::NewOrder
}

/// Aggregated results of a driver run.
#[derive(Debug, Clone)]
pub struct TpccReport {
    /// New-order transactions per minute during the measurement interval.
    pub tpm_c: f64,
    /// All completed transactions (any type) during measurement.
    pub total_txns: u64,
    /// Completions per transaction type.
    pub per_type: HashMap<TxnType, u64>,
    /// Spec-mandated 1%-invalid-item rollbacks observed.
    pub user_aborts: u64,
    /// Deadlock / crash-abort retries performed.
    pub retries: u64,
    /// Transactions that failed permanently (retry budget exhausted).
    pub errors: u64,
    /// Actual measurement interval.
    pub measured: Duration,
}

#[derive(Default)]
struct Counters {
    per_type: HashMap<TxnType, u64>,
    new_orders: u64,
    total: u64,
    user_aborts: u64,
    retries: u64,
    errors: u64,
}

/// Run `clients.len()` emulated users for `warmup + measure`. Each client
/// runs on its own thread with zero think time. Only transactions
/// completing inside the measurement interval are counted.
pub fn run_mixed_load<C: SqlClient + Send + 'static>(
    clients: Vec<C>,
    scale: TpccScale,
    warmup: Duration,
    measure: Duration,
    seed: u64,
) -> Result<TpccReport> {
    let stop = Arc::new(AtomicBool::new(false));
    let measuring = Arc::new(AtomicBool::new(false));
    let counters = Arc::new(Mutex::new(Counters::default()));

    let mut handles = Vec::new();
    for (u, client) in clients.into_iter().enumerate() {
        let stop = Arc::clone(&stop);
        let measuring = Arc::clone(&measuring);
        let counters = Arc::clone(&counters);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed ^ (u as u64 + 1).wrapping_mul(0x9E37_79B9));
            while !stop.load(Ordering::Relaxed) {
                let t = pick_txn(&mut rng);
                match run_with_retries(&client, &mut rng, &scale, t, 30) {
                    Ok((outcome, retries)) => {
                        if measuring.load(Ordering::Relaxed) {
                            let mut c = counters.lock();
                            c.retries += retries as u64;
                            match outcome {
                                TxnOutcome::Committed => {
                                    c.total += 1;
                                    *c.per_type.entry(t).or_insert(0) += 1;
                                    if t == TxnType::NewOrder {
                                        c.new_orders += 1;
                                    }
                                }
                                TxnOutcome::UserAborted => c.user_aborts += 1,
                            }
                        }
                    }
                    Err(_) => {
                        if measuring.load(Ordering::Relaxed) {
                            counters.lock().errors += 1;
                        }
                    }
                }
            }
        }));
    }

    std::thread::sleep(warmup);
    measuring.store(true, Ordering::Relaxed);
    let t0 = Instant::now();
    std::thread::sleep(measure);
    measuring.store(false, Ordering::Relaxed);
    let measured = t0.elapsed();
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }

    let c = Arc::try_unwrap(counters)
        .map(|m| m.into_inner())
        .unwrap_or_else(|arc| {
            let guard = arc.lock();
            Counters {
                per_type: guard.per_type.clone(),
                new_orders: guard.new_orders,
                total: guard.total,
                user_aborts: guard.user_aborts,
                retries: guard.retries,
                errors: guard.errors,
            }
        });
    Ok(TpccReport {
        tpm_c: c.new_orders as f64 / (measured.as_secs_f64() / 60.0),
        total_txns: c.total,
        per_type: c.per_type,
        user_aborts: c.user_aborts,
        retries: c.retries,
        errors: c.errors,
        measured,
    })
}
