//! The five TPC-C transactions, expressed against [`SqlClient`] so the
//! same code drives native ODBC and Phoenix connections.

use rand::rngs::StdRng;
use rand::Rng;

use sqlengine::types::Value;
use sqlengine::{Error, Result};

use super::gen::{c_last, nurand};
use super::TpccScale;
use crate::client::SqlClient;

/// Which transaction ran, for mix accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnType {
    /// Order placement (§2.4) — the TPM-C metric counts these.
    NewOrder,
    /// Customer payment (§2.5).
    Payment,
    /// Read-only order status (§2.6).
    OrderStatus,
    /// Batch delivery (§2.7).
    Delivery,
    /// Read-only stock level (§2.8).
    StockLevel,
}

/// Completed, or rolled back by design (the spec's 1% invalid-item rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome {
    /// Transaction committed.
    Committed,
    /// Rolled back by the spec's 1% invalid-item rule.
    UserAborted,
}

fn f(v: &Value) -> f64 {
    v.as_f64().unwrap_or(0.0)
}

fn i(v: &Value) -> i64 {
    v.as_i64().unwrap_or(0)
}

/// Pick a customer: 60% by id (NURand), 40% by last name (spec 2.1.6).
fn pick_customer(
    client: &impl SqlClient,
    rng: &mut StdRng,
    scale: &TpccScale,
    w: i64,
    d: i64,
) -> Result<i64> {
    if rng.gen_range(0..100) < 60 {
        Ok(nurand(rng, 1023, 1, scale.customers_per_district))
    } else {
        let last = c_last(nurand(rng, 255, 0, 999));
        let rows = client.query(&format!(
            "SELECT c_id FROM customer WHERE c_w_id = {w} AND c_d_id = {d} \
             AND c_last = '{last}' ORDER BY c_first"
        ))?;
        if rows.is_empty() {
            // Name not present at this scale: fall back to an id.
            Ok(nurand(rng, 1023, 1, scale.customers_per_district))
        } else {
            Ok(i(&rows[rows.len() / 2][0]))
        }
    }
}

/// Best-effort rollback after a failed transaction body.
fn try_rollback(client: &impl SqlClient) {
    let _ = client.execute("ROLLBACK");
}

/// The new-order transaction (spec §2.4).
pub fn new_order(
    client: &impl SqlClient,
    rng: &mut StdRng,
    scale: &TpccScale,
) -> Result<TxnOutcome> {
    let w = rng.gen_range(1..=scale.warehouses);
    let d = rng.gen_range(1..=scale.districts_per_warehouse);
    let c = nurand(rng, 1023, 1, scale.customers_per_district);
    let ol_cnt = rng.gen_range(5..=15);
    // Spec: 1% of new-orders hit an unused item and roll back.
    let rollback_at = if rng.gen_range(0..100) == 0 {
        Some(rng.gen_range(0..ol_cnt))
    } else {
        None
    };

    let mut body = || -> Result<TxnOutcome> {
        client.execute("BEGIN TRAN")?;
        let dist = client.query(&format!(
            "SELECT d_tax, d_next_o_id FROM district WHERE d_w_id = {w} AND d_id = {d}"
        ))?;
        let o_id = i(&dist[0][1]);
        client.execute(&format!(
            "UPDATE district SET d_next_o_id = {} WHERE d_w_id = {w} AND d_id = {d}",
            o_id + 1
        ))?;
        client.query(&format!("SELECT w_tax FROM warehouse WHERE w_id = {w}"))?;
        client.query(&format!(
            "SELECT c_discount, c_last, c_credit FROM customer \
             WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}"
        ))?;
        client.execute(&format!(
            "INSERT INTO orders VALUES ({w}, {d}, {o_id}, {c}, '1999-06-01', NULL, {ol_cnt}, 1)"
        ))?;
        client.execute(&format!("INSERT INTO new_order VALUES ({w}, {d}, {o_id})"))?;

        for ln in 0..ol_cnt {
            let item = if rollback_at == Some(ln) {
                // Unused item number: the lookup comes back empty and the
                // application rolls the transaction back.
                scale.items + 1_000_000
            } else {
                nurand(rng, 8191, 1, scale.items)
            };
            let found = client.query(&format!(
                "SELECT i_price, i_name FROM item WHERE i_id = {item}"
            ))?;
            if found.is_empty() {
                client.execute("ROLLBACK")?;
                return Ok(TxnOutcome::UserAborted);
            }
            let price = f(&found[0][0]);
            let qty = rng.gen_range(1..=10);
            let stock = client.query(&format!(
                "SELECT s_quantity FROM stock WHERE s_w_id = {w} AND s_i_id = {item}"
            ))?;
            let s_qty = i(&stock[0][0]);
            let new_qty = if s_qty >= qty + 10 {
                s_qty - qty
            } else {
                s_qty - qty + 91
            };
            client.execute(&format!(
                "UPDATE stock SET s_quantity = {new_qty}, s_ytd = s_ytd + {qty}, \
                 s_order_cnt = s_order_cnt + 1 WHERE s_w_id = {w} AND s_i_id = {item}"
            ))?;
            client.execute(&format!(
                "INSERT INTO order_line VALUES ({w}, {d}, {o_id}, {}, {item}, {w}, NULL, {qty}, {:.2}, 'dist-info')",
                ln + 1,
                price * qty as f64
            ))?;
        }
        client.execute("COMMIT")?;
        Ok(TxnOutcome::Committed)
    };
    match body() {
        Ok(o) => Ok(o),
        Err(e) => {
            try_rollback(client);
            Err(e)
        }
    }
}

/// The payment transaction (spec §2.5).
pub fn payment(client: &impl SqlClient, rng: &mut StdRng, scale: &TpccScale) -> Result<TxnOutcome> {
    let w = rng.gen_range(1..=scale.warehouses);
    let d = rng.gen_range(1..=scale.districts_per_warehouse);
    let amount = rng.gen_range(1.0..5000.0);

    let body = |rng: &mut StdRng| -> Result<TxnOutcome> {
        client.execute("BEGIN TRAN")?;
        client.execute(&format!(
            "UPDATE warehouse SET w_ytd = w_ytd + {amount:.2} WHERE w_id = {w}"
        ))?;
        client.query(&format!("SELECT w_name FROM warehouse WHERE w_id = {w}"))?;
        client.execute(&format!(
            "UPDATE district SET d_ytd = d_ytd + {amount:.2} WHERE d_w_id = {w} AND d_id = {d}"
        ))?;
        client.query(&format!(
            "SELECT d_name FROM district WHERE d_w_id = {w} AND d_id = {d}"
        ))?;
        let c = pick_customer(client, rng, scale, w, d)?;
        client.execute(&format!(
            "UPDATE customer SET c_balance = c_balance - {amount:.2}, \
             c_ytd_payment = c_ytd_payment + {amount:.2}, c_payment_cnt = c_payment_cnt + 1 \
             WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}"
        ))?;
        client.execute(&format!(
            "INSERT INTO history VALUES ({c}, {d}, {w}, {d}, {w}, '1999-06-01', {amount:.2}, 'payment')"
        ))?;
        client.execute("COMMIT")?;
        Ok(TxnOutcome::Committed)
    };
    match body(rng) {
        Ok(o) => Ok(o),
        Err(e) => {
            try_rollback(client);
            Err(e)
        }
    }
}

/// The order-status transaction (spec §2.6; read-only).
pub fn order_status(
    client: &impl SqlClient,
    rng: &mut StdRng,
    scale: &TpccScale,
) -> Result<TxnOutcome> {
    let w = rng.gen_range(1..=scale.warehouses);
    let d = rng.gen_range(1..=scale.districts_per_warehouse);
    let c = pick_customer(client, rng, scale, w, d)?;
    client.query(&format!(
        "SELECT c_balance, c_first, c_middle, c_last FROM customer \
         WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}"
    ))?;
    let last = client.query(&format!(
        "SELECT TOP 1 o_id, o_entry_d, o_carrier_id FROM orders \
         WHERE o_w_id = {w} AND o_d_id = {d} AND o_c_id = {c} ORDER BY o_id DESC"
    ))?;
    if let Some(row) = last.first() {
        let o_id = i(&row[0]);
        client.query(&format!(
            "SELECT ol_i_id, ol_supply_w_id, ol_quantity, ol_amount, ol_delivery_d \
             FROM order_line WHERE ol_w_id = {w} AND ol_d_id = {d} AND ol_o_id = {o_id}"
        ))?;
    }
    Ok(TxnOutcome::Committed)
}

/// The delivery transaction (spec §2.7): process one pending order per
/// district.
pub fn delivery(
    client: &impl SqlClient,
    rng: &mut StdRng,
    scale: &TpccScale,
) -> Result<TxnOutcome> {
    let w = rng.gen_range(1..=scale.warehouses);
    let carrier = rng.gen_range(1..=10);

    let body = || -> Result<TxnOutcome> {
        client.execute("BEGIN TRAN")?;
        for d in 1..=scale.districts_per_warehouse {
            let oldest = client.query(&format!(
                "SELECT TOP 1 no_o_id FROM new_order \
                 WHERE no_w_id = {w} AND no_d_id = {d} ORDER BY no_o_id"
            ))?;
            let Some(row) = oldest.first() else { continue };
            let o_id = i(&row[0]);
            client.execute(&format!(
                "DELETE FROM new_order WHERE no_w_id = {w} AND no_d_id = {d} AND no_o_id = {o_id}"
            ))?;
            let cust = client.query(&format!(
                "SELECT o_c_id FROM orders WHERE o_w_id = {w} AND o_d_id = {d} AND o_id = {o_id}"
            ))?;
            let c = i(&cust[0][0]);
            client.execute(&format!(
                "UPDATE orders SET o_carrier_id = {carrier} \
                 WHERE o_w_id = {w} AND o_d_id = {d} AND o_id = {o_id}"
            ))?;
            client.execute(&format!(
                "UPDATE order_line SET ol_delivery_d = '1999-06-02' \
                 WHERE ol_w_id = {w} AND ol_d_id = {d} AND ol_o_id = {o_id}"
            ))?;
            let total = client.query(&format!(
                "SELECT SUM(ol_amount) FROM order_line \
                 WHERE ol_w_id = {w} AND ol_d_id = {d} AND ol_o_id = {o_id}"
            ))?;
            let amount = f(&total[0][0]);
            client.execute(&format!(
                "UPDATE customer SET c_balance = c_balance + {amount:.2}, \
                 c_delivery_cnt = c_delivery_cnt + 1 \
                 WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}"
            ))?;
        }
        client.execute("COMMIT")?;
        Ok(TxnOutcome::Committed)
    };
    match body() {
        Ok(o) => Ok(o),
        Err(e) => {
            try_rollback(client);
            Err(e)
        }
    }
}

/// The stock-level transaction (spec §2.8; read-only).
pub fn stock_level(
    client: &impl SqlClient,
    rng: &mut StdRng,
    scale: &TpccScale,
) -> Result<TxnOutcome> {
    let w = rng.gen_range(1..=scale.warehouses);
    let d = rng.gen_range(1..=scale.districts_per_warehouse);
    let threshold = rng.gen_range(10..=20);
    let next = client.query(&format!(
        "SELECT d_next_o_id FROM district WHERE d_w_id = {w} AND d_id = {d}"
    ))?;
    let next_o = i(&next[0][0]);
    client.query(&format!(
        "SELECT COUNT(DISTINCT ol_i_id) AS low_stock FROM order_line, stock \
         WHERE ol_w_id = {w} AND ol_d_id = {d} \
         AND ol_o_id >= {} AND ol_o_id < {next_o} \
         AND s_w_id = {w} AND s_i_id = ol_i_id AND s_quantity < {threshold}",
        next_o - 20
    ))?;
    Ok(TxnOutcome::Committed)
}

/// Run one transaction of the given type, retrying wait-die victims and
/// crash-aborted transactions (both are "normal events" the application
/// handles, per the paper).
pub fn run_with_retries(
    client: &impl SqlClient,
    rng: &mut StdRng,
    scale: &TpccScale,
    txn: TxnType,
    max_retries: u32,
) -> Result<(TxnOutcome, u32)> {
    let mut retries = 0;
    loop {
        let r = match txn {
            TxnType::NewOrder => new_order(client, rng, scale),
            TxnType::Payment => payment(client, rng, scale),
            TxnType::OrderStatus => order_status(client, rng, scale),
            TxnType::Delivery => delivery(client, rng, scale),
            TxnType::StockLevel => stock_level(client, rng, scale),
        };
        match r {
            Ok(o) => return Ok((o, retries)),
            Err(Error::Deadlock) | Err(Error::TxnAborted(_)) if retries < max_retries => {
                retries += 1;
                // Brief jittered backoff to break wait-die retry storms.
                std::thread::sleep(std::time::Duration::from_micros(rng.gen_range(200..1500)));
            }
            Err(e) => return Err(e),
        }
    }
}
