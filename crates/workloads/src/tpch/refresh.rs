//! TPC-H refresh functions RF1 (insert new sales) and RF2 (delete obsolete
//! sales). Following the paper's setup, each refresh function is
//! decomposed into two transactions, each receiving one half of the key
//! range; RF1 submits a total of 4 insert requests and RF2 a total of 4
//! delete requests, all as autocommit statements (which is what lets
//! Phoenix wrap each with its status-table transaction).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sqlengine::types::format_date;
use sqlengine::Result;

use super::gen::{ORDERDATE_HI, ORDERDATE_LO};
use super::TpchScale;
use crate::client::SqlClient;

/// Tracks which order keys have been inserted/deleted by refresh runs.
#[derive(Debug)]
pub struct RefreshState {
    scale: TpchScale,
    rng: StdRng,
    /// Next unused key above the loaded range (RF1 inserts here).
    next_new: i64,
    /// Next loaded key to delete (RF2 consumes from the bottom).
    next_del: i64,
}

impl RefreshState {
    /// Fresh state for a newly loaded database.
    pub fn new(scale: TpchScale, seed: u64) -> RefreshState {
        RefreshState {
            scale,
            rng: StdRng::seed_from_u64(seed),
            next_new: scale.orders() + 1,
            next_del: 1,
        }
    }

    /// Orders touched per refresh run (spec: SF × 1500).
    pub fn orders_per_refresh(&self) -> i64 {
        ((self.scale.orders() as f64) * 0.001).ceil() as i64 * 10
    }
}

/// RF1: insert `orders_per_refresh` new orders (≈4 lineitems each), as two
/// transactions × (1 orders insert + 1 lineitem insert).
pub fn rf1(client: &impl SqlClient, st: &mut RefreshState) -> Result<u64> {
    let n = st.orders_per_refresh();
    let lo = st.next_new;
    st.next_new += n;
    let mut affected = 0;
    let halves = [(lo, lo + n / 2 - 1), (lo + n / 2, lo + n - 1)];
    for (a, b) in halves {
        let mut orders = Vec::new();
        let mut lines = Vec::new();
        for o in a..=b {
            let odate = st.rng.gen_range(ORDERDATE_LO..=ORDERDATE_HI);
            let cust = st.rng.gen_range(1..=st.scale.customers());
            let nlines = st.rng.gen_range(2..=6);
            orders.push(format!(
                "({o}, {cust}, 'O', {:.2}, '{}', '1-URGENT', 'Clerk#000000001', 0, 'rf1')",
                st.rng.gen_range(1000.0..100_000.0),
                format_date(odate as i32),
            ));
            for ln in 1..=nlines {
                let p = st.rng.gen_range(1..=st.scale.parts());
                let s = st.rng.gen_range(1..=st.scale.suppliers());
                let ship = odate + st.rng.gen_range(1..=121);
                lines.push(format!(
                    "({o}, {p}, {s}, {ln}, {}, {:.2}, 0.05, 0.04, 'N', 'O', '{}', '{}', '{}', 'NONE', 'MAIL', 'rf1')",
                    st.rng.gen_range(1..=50),
                    st.rng.gen_range(1000.0..50_000.0),
                    format_date(ship as i32),
                    format_date((odate + 45) as i32),
                    format_date((ship + 7) as i32),
                ));
            }
        }
        affected += client
            .execute(&format!("INSERT INTO orders VALUES {}", orders.join(",")))?
            .affected();
        affected += client
            .execute(&format!("INSERT INTO lineitem VALUES {}", lines.join(",")))?
            .affected();
    }
    Ok(affected)
}

/// RF2: delete `orders_per_refresh` old orders and their lineitems, as two
/// transactions × (1 lineitem delete + 1 orders delete).
pub fn rf2(client: &impl SqlClient, st: &mut RefreshState) -> Result<u64> {
    let n = st.orders_per_refresh();
    let lo = st.next_del;
    st.next_del += n;
    let mut affected = 0;
    let halves = [(lo, lo + n / 2 - 1), (lo + n / 2, lo + n - 1)];
    for (a, b) in halves {
        affected += client
            .execute(&format!(
                "DELETE FROM lineitem WHERE l_orderkey BETWEEN {a} AND {b}"
            ))?
            .affected();
        affected += client
            .execute(&format!(
                "DELETE FROM orders WHERE o_orderkey BETWEEN {a} AND {b}"
            ))?
            .affected();
    }
    Ok(affected)
}
