//! The 22 TPC-H queries, adapted to the engine's dialect (date intervals
//! precomputed, `TOP` instead of vendor row-limits). Parameters use the
//! spec's validation defaults; a handful are scaled for small databases.
//!
//! `all_queries()` returns them in Q1..Q22 order (the power test);
//! `stream_order(i)` permutes them per throughput-test stream.

/// Number of queries in the suite.
pub const NUM_QUERIES: usize = 22;

/// Q1 — pricing summary report.
pub fn q1() -> String {
    "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, \
     SUM(l_extendedprice) AS sum_base_price, \
     SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, \
     SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge, \
     AVG(l_quantity) AS avg_qty, AVG(l_extendedprice) AS avg_price, \
     AVG(l_discount) AS avg_disc, COUNT(*) AS count_order \
     FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' \
     GROUP BY l_returnflag, l_linestatus \
     ORDER BY l_returnflag, l_linestatus"
        .into()
}

/// Q2 — minimum cost supplier.
pub fn q2() -> String {
    "SELECT TOP 100 s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone \
     FROM part, supplier, partsupp, nation, region \
     WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey AND p_size = 15 \
     AND p_type LIKE '%BRASS' AND s_nationkey = n_nationkey \
     AND n_regionkey = r_regionkey AND r_name = 'EUROPE' \
     AND ps_supplycost = (SELECT MIN(ps_supplycost) FROM partsupp, supplier, nation, region \
       WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey \
       AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey AND r_name = 'EUROPE') \
     ORDER BY s_acctbal DESC, n_name, s_name, p_partkey"
        .into()
}

/// Q3 — shipping priority.
pub fn q3() -> String {
    "SELECT TOP 10 l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue, \
     o_orderdate, o_shippriority \
     FROM customer, orders, lineitem \
     WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey AND l_orderkey = o_orderkey \
     AND o_orderdate < DATE '1995-03-15' AND l_shipdate > DATE '1995-03-15' \
     GROUP BY l_orderkey, o_orderdate, o_shippriority \
     ORDER BY revenue DESC, o_orderdate"
        .into()
}

/// Q4 — order priority checking.
pub fn q4() -> String {
    "SELECT o_orderpriority, COUNT(*) AS order_count FROM orders \
     WHERE o_orderdate >= DATE '1993-07-01' AND o_orderdate < DATE '1993-10-01' \
     AND EXISTS (SELECT 1 FROM lineitem WHERE l_orderkey = o_orderkey \
       AND l_commitdate < l_receiptdate) \
     GROUP BY o_orderpriority ORDER BY o_orderpriority"
        .into()
}

/// Q5 — local supplier volume.
pub fn q5() -> String {
    "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue \
     FROM customer, orders, lineitem, supplier, nation, region \
     WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND l_suppkey = s_suppkey \
     AND c_nationkey = s_nationkey AND s_nationkey = n_nationkey \
     AND n_regionkey = r_regionkey AND r_name = 'ASIA' \
     AND o_orderdate >= DATE '1994-01-01' AND o_orderdate < DATE '1995-01-01' \
     GROUP BY n_name ORDER BY revenue DESC"
        .into()
}

/// Q6 — forecasting revenue change.
pub fn q6() -> String {
    "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem \
     WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' \
     AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24"
        .into()
}

/// Q7 — volume shipping.
pub fn q7() -> String {
    "SELECT supp_nation, cust_nation, l_year, SUM(volume) AS revenue FROM \
     (SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation, \
       YEAR(l_shipdate) AS l_year, l_extendedprice * (1 - l_discount) AS volume \
      FROM supplier, lineitem, orders, customer, nation n1, nation n2 \
      WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey AND c_custkey = o_custkey \
      AND s_nationkey = n1.n_nationkey AND c_nationkey = n2.n_nationkey \
      AND ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY') \
        OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE')) \
      AND l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31') shipping \
     GROUP BY supp_nation, cust_nation, l_year \
     ORDER BY supp_nation, cust_nation, l_year"
        .into()
}

/// Q8 — national market share.
pub fn q8() -> String {
    "SELECT o_year, \
     SUM(CASE WHEN nation = 'BRAZIL' THEN volume ELSE 0 END) / SUM(volume) AS mkt_share \
     FROM (SELECT YEAR(o_orderdate) AS o_year, \
       l_extendedprice * (1 - l_discount) AS volume, n2.n_name AS nation \
      FROM part, supplier, lineitem, orders, customer, nation n1, nation n2, region \
      WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey AND l_orderkey = o_orderkey \
      AND o_custkey = c_custkey AND c_nationkey = n1.n_nationkey \
      AND n1.n_regionkey = r_regionkey AND r_name = 'AMERICA' \
      AND s_nationkey = n2.n_nationkey \
      AND o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31' \
      AND p_type = 'ECONOMY ANODIZED STEEL') all_nations \
     GROUP BY o_year ORDER BY o_year"
        .into()
}

/// Q9 — product type profit measure.
pub fn q9() -> String {
    "SELECT nation, o_year, SUM(amount) AS sum_profit FROM \
     (SELECT n_name AS nation, YEAR(o_orderdate) AS o_year, \
       l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity AS amount \
      FROM part, supplier, lineitem, partsupp, orders, nation \
      WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey AND ps_partkey = l_partkey \
      AND p_partkey = l_partkey AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey \
      AND p_name LIKE '%green%') profit \
     GROUP BY nation, o_year ORDER BY nation, o_year DESC"
        .into()
}

/// Q10 — returned item reporting.
pub fn q10() -> String {
    "SELECT TOP 20 c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue, \
     c_acctbal, n_name, c_address, c_phone, c_comment \
     FROM customer, orders, lineitem, nation \
     WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
     AND o_orderdate >= DATE '1993-10-01' AND o_orderdate < DATE '1994-01-01' \
     AND l_returnflag = 'R' AND c_nationkey = n_nationkey \
     GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment \
     ORDER BY revenue DESC"
        .into()
}

/// Q11 — important stock identification (Figure 5), with the `Fraction`
/// parameter the paper varies to sweep result-set sizes.
pub fn q11_with_fraction(fraction: f64) -> String {
    format!(
        "SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS value \
         FROM partsupp, supplier, nation \
         WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey AND n_name = 'GERMANY' \
         GROUP BY ps_partkey \
         HAVING SUM(ps_supplycost * ps_availqty) > \
          (SELECT SUM(ps_supplycost * ps_availqty) * {fraction} \
           FROM partsupp, supplier, nation \
           WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey AND n_name = 'GERMANY') \
         ORDER BY value DESC"
    )
}

/// Q11 with the spec's default fraction scaled for SF < 1 databases.
pub fn q11() -> String {
    q11_with_fraction(0.0001)
}

/// Q12 — shipping modes and order priority.
pub fn q12() -> String {
    "SELECT l_shipmode, \
     SUM(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH' \
       THEN 1 ELSE 0 END) AS high_line_count, \
     SUM(CASE WHEN o_orderpriority <> '1-URGENT' AND o_orderpriority <> '2-HIGH' \
       THEN 1 ELSE 0 END) AS low_line_count \
     FROM orders, lineitem \
     WHERE o_orderkey = l_orderkey AND l_shipmode IN ('MAIL', 'SHIP') \
     AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate \
     AND l_receiptdate >= DATE '1994-01-01' AND l_receiptdate < DATE '1995-01-01' \
     GROUP BY l_shipmode ORDER BY l_shipmode"
        .into()
}

/// Q13 — customer distribution.
pub fn q13() -> String {
    "SELECT c_count, COUNT(*) AS custdist FROM \
     (SELECT c_custkey AS ck, COUNT(o_orderkey) AS c_count \
      FROM customer LEFT OUTER JOIN orders \
      ON c_custkey = o_custkey AND o_comment NOT LIKE '%special%requests%' \
      GROUP BY c_custkey) c_orders \
     GROUP BY c_count ORDER BY custdist DESC, c_count DESC"
        .into()
}

/// Q14 — promotion effect.
pub fn q14() -> String {
    "SELECT 100.00 * SUM(CASE WHEN p_type LIKE 'PROMO%' \
       THEN l_extendedprice * (1 - l_discount) ELSE 0 END) / \
     SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue \
     FROM lineitem, part \
     WHERE l_partkey = p_partkey \
     AND l_shipdate >= DATE '1995-09-01' AND l_shipdate < DATE '1995-10-01'"
        .into()
}

/// Q15 — top supplier (the spec's revenue view expressed as derived tables).
pub fn q15() -> String {
    "SELECT s_suppkey, s_name, s_address, s_phone, total_revenue \
     FROM supplier, \
     (SELECT l_suppkey AS supplier_no, SUM(l_extendedprice * (1 - l_discount)) AS total_revenue \
      FROM lineitem WHERE l_shipdate >= DATE '1996-01-01' AND l_shipdate < DATE '1996-04-01' \
      GROUP BY l_suppkey) revenue \
     WHERE s_suppkey = supplier_no AND total_revenue = \
      (SELECT MAX(total_revenue) FROM \
       (SELECT l_suppkey AS supplier_no, SUM(l_extendedprice * (1 - l_discount)) AS total_revenue \
        FROM lineitem WHERE l_shipdate >= DATE '1996-01-01' AND l_shipdate < DATE '1996-04-01' \
        GROUP BY l_suppkey) revenue2) \
     ORDER BY s_suppkey"
        .into()
}

/// Q16 — parts/supplier relationship.
pub fn q16() -> String {
    "SELECT p_brand, p_type, p_size, COUNT(DISTINCT ps_suppkey) AS supplier_cnt \
     FROM partsupp, part \
     WHERE p_partkey = ps_partkey AND p_brand <> 'Brand#45' \
     AND p_type NOT LIKE 'MEDIUM POLISHED%' \
     AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9) \
     AND ps_suppkey NOT IN \
      (SELECT s_suppkey FROM supplier WHERE s_comment LIKE '%Customer%Complaints%') \
     GROUP BY p_brand, p_type, p_size \
     ORDER BY supplier_cnt DESC, p_brand, p_type, p_size"
        .into()
}

/// Q17 — small-quantity-order revenue.
pub fn q17() -> String {
    "SELECT SUM(l_extendedprice) / 7.0 AS avg_yearly FROM lineitem, part \
     WHERE p_partkey = l_partkey AND p_brand = 'Brand#23' AND p_container = 'MED BOX' \
     AND l_quantity < (SELECT 0.2 * AVG(l_quantity) FROM lineitem \
       WHERE l_partkey = p_partkey)"
        .into()
}

/// Q18 — large volume customers. The spec threshold 300 assumes SF ≥ 1;
/// 200 keeps the query selective-but-nonempty on small databases.
pub fn q18() -> String {
    "SELECT TOP 100 c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, \
     SUM(l_quantity) AS total_qty \
     FROM customer, orders, lineitem \
     WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem \
       GROUP BY l_orderkey HAVING SUM(l_quantity) > 200) \
     AND c_custkey = o_custkey AND o_orderkey = l_orderkey \
     GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice \
     ORDER BY o_totalprice DESC, o_orderdate"
        .into()
}

/// Q19 — discounted revenue.
pub fn q19() -> String {
    "SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue FROM lineitem, part \
     WHERE (p_partkey = l_partkey AND p_brand = 'Brand#12' \
       AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG') \
       AND l_quantity >= 1 AND l_quantity <= 11 AND p_size BETWEEN 1 AND 5 \
       AND l_shipmode IN ('AIR', 'REG AIR') AND l_shipinstruct = 'DELIVER IN PERSON') \
     OR (p_partkey = l_partkey AND p_brand = 'Brand#23' \
       AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK') \
       AND l_quantity >= 10 AND l_quantity <= 20 AND p_size BETWEEN 1 AND 10 \
       AND l_shipmode IN ('AIR', 'REG AIR') AND l_shipinstruct = 'DELIVER IN PERSON') \
     OR (p_partkey = l_partkey AND p_brand = 'Brand#34' \
       AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG') \
       AND l_quantity >= 20 AND l_quantity <= 30 AND p_size BETWEEN 1 AND 15 \
       AND l_shipmode IN ('AIR', 'REG AIR') AND l_shipinstruct = 'DELIVER IN PERSON')"
        .into()
}

/// Q20 — potential part promotion.
pub fn q20() -> String {
    "SELECT s_name, s_address FROM supplier, nation \
     WHERE s_suppkey IN \
      (SELECT ps_suppkey FROM partsupp \
       WHERE ps_partkey IN (SELECT p_partkey FROM part WHERE p_name LIKE 'forest%') \
       AND ps_availqty > (SELECT 0.5 * SUM(l_quantity) FROM lineitem \
         WHERE l_partkey = ps_partkey AND l_suppkey = ps_suppkey \
         AND l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01')) \
     AND s_nationkey = n_nationkey AND n_name = 'CANADA' \
     ORDER BY s_name"
        .into()
}

/// Q21 — suppliers who kept orders waiting.
pub fn q21() -> String {
    "SELECT TOP 100 s_name, COUNT(*) AS numwait \
     FROM supplier, lineitem l1, orders, nation \
     WHERE s_suppkey = l1.l_suppkey AND o_orderkey = l1.l_orderkey AND o_orderstatus = 'F' \
     AND l1.l_receiptdate > l1.l_commitdate \
     AND EXISTS (SELECT 1 FROM lineitem l2 \
       WHERE l2.l_orderkey = l1.l_orderkey AND l2.l_suppkey <> l1.l_suppkey) \
     AND NOT EXISTS (SELECT 1 FROM lineitem l3 \
       WHERE l3.l_orderkey = l1.l_orderkey AND l3.l_suppkey <> l1.l_suppkey \
       AND l3.l_receiptdate > l3.l_commitdate) \
     AND s_nationkey = n_nationkey AND n_name = 'SAUDI ARABIA' \
     GROUP BY s_name ORDER BY numwait DESC, s_name"
        .into()
}

/// Q22 — global sales opportunity.
pub fn q22() -> String {
    "SELECT cntrycode, COUNT(*) AS numcust, SUM(c_acctbal) AS totacctbal FROM \
     (SELECT SUBSTRING(c_phone, 1, 2) AS cntrycode, c_acctbal \
      FROM customer \
      WHERE SUBSTRING(c_phone, 1, 2) IN ('13', '31', '23', '29', '30', '18', '17') \
      AND c_acctbal > (SELECT AVG(c_acctbal) FROM customer WHERE c_acctbal > 0.00 \
        AND SUBSTRING(c_phone, 1, 2) IN ('13', '31', '23', '29', '30', '18', '17')) \
      AND NOT EXISTS (SELECT 1 FROM orders WHERE o_custkey = c_custkey)) custsale \
     GROUP BY cntrycode ORDER BY cntrycode"
        .into()
}

/// All 22 queries in power-test order.
pub fn all_queries() -> Vec<(usize, String)> {
    vec![
        (1, q1()),
        (2, q2()),
        (3, q3()),
        (4, q4()),
        (5, q5()),
        (6, q6()),
        (7, q7()),
        (8, q8()),
        (9, q9()),
        (10, q10()),
        (11, q11()),
        (12, q12()),
        (13, q13()),
        (14, q14()),
        (15, q15()),
        (16, q16()),
        (17, q17()),
        (18, q18()),
        (19, q19()),
        (20, q20()),
        (21, q21()),
        (22, q22()),
    ]
}

/// Deterministic per-stream query permutation for the throughput test
/// (each stream runs the full suite in a unique order, per the spec).
pub fn stream_order(stream: usize) -> Vec<(usize, String)> {
    let mut qs = all_queries();
    let n = qs.len();
    // Simple decorrelated rotation + stride shuffle, deterministic.
    let stride = [1, 7, 11, 13, 17, 19][stream % 6];
    let mut out = Vec::with_capacity(n);
    let mut idx = stream % n;
    let mut taken = vec![false; n];
    for _ in 0..n {
        while taken[idx] {
            idx = (idx + 1) % n;
        }
        taken[idx] = true;
        out.push(qs[idx].clone());
        idx = (idx + stride) % n;
    }
    qs.clear();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_parse() {
        for (i, sql) in all_queries() {
            sqlengine::sql::parser::parse_one(&sql)
                .unwrap_or_else(|e| panic!("Q{i} failed to parse: {e}"));
        }
    }

    #[test]
    fn stream_orders_are_permutations() {
        for s in 0..4 {
            let order = stream_order(s);
            let mut ids: Vec<usize> = order.iter().map(|(i, _)| *i).collect();
            ids.sort_unstable();
            assert_eq!(ids, (1..=22).collect::<Vec<_>>());
        }
        assert_ne!(
            stream_order(0).iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            stream_order(1).iter().map(|(i, _)| *i).collect::<Vec<_>>()
        );
    }

    #[test]
    fn q11_fraction_is_injected() {
        let sql = q11_with_fraction(0.025);
        assert!(sql.contains("* 0.025"));
        sqlengine::sql::parser::parse_one(&sql).unwrap();
    }
}
