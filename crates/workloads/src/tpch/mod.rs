//! TPC-H style decision-support workload: schema, seeded data generator,
//! the 22 queries (dialect-adapted), and refresh functions RF1/RF2.

pub mod gen;
pub mod queries;
pub mod refresh;

use sqlengine::Result;

use crate::client::SqlClient;

/// Scale configuration. `sf = 1.0` matches the paper's 1 GB database;
/// this reproduction typically runs `sf = 0.01..0.05`.
#[derive(Debug, Clone, Copy)]
pub struct TpchScale {
    /// TPC-H scale factor (1.0 ≈ 1 GB in the paper's setup).
    pub sf: f64,
}

impl TpchScale {
    /// Scale with the given factor.
    pub fn new(sf: f64) -> TpchScale {
        TpchScale { sf }
    }

    /// Supplier cardinality (spec: 10 000 × SF).
    pub fn suppliers(&self) -> i64 {
        ((10_000.0 * self.sf) as i64).max(50)
    }

    /// Part cardinality (spec: 200 000 × SF).
    pub fn parts(&self) -> i64 {
        ((200_000.0 * self.sf) as i64).max(200)
    }

    /// Customer cardinality (spec: 150 000 × SF).
    pub fn customers(&self) -> i64 {
        ((150_000.0 * self.sf) as i64).max(150)
    }

    /// Order cardinality (spec: 10 per customer).
    pub fn orders(&self) -> i64 {
        self.customers() * 10
    }
}

/// Row counts after loading (sanity checks + reporting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field names mirror the TPC-H table names
pub struct TpchCounts {
    pub region: u64,
    pub nation: u64,
    pub supplier: u64,
    pub part: u64,
    pub partsupp: u64,
    pub customer: u64,
    pub orders: u64,
    pub lineitem: u64,
}

impl TpchCounts {
    /// Total rows across all eight tables.
    pub fn total(&self) -> u64 {
        self.region
            + self.nation
            + self.supplier
            + self.part
            + self.partsupp
            + self.customer
            + self.orders
            + self.lineitem
    }
}

/// The eight-table TPC-H schema.
pub fn schema_ddl() -> Vec<&'static str> {
    vec![
        "CREATE TABLE region (r_regionkey INT PRIMARY KEY, r_name VARCHAR(25), r_comment VARCHAR(152))",
        "CREATE TABLE nation (n_nationkey INT PRIMARY KEY, n_name VARCHAR(25), n_regionkey INT, n_comment VARCHAR(152))",
        "CREATE TABLE supplier (s_suppkey INT PRIMARY KEY, s_name VARCHAR(25), s_address VARCHAR(40), s_nationkey INT, s_phone VARCHAR(15), s_acctbal FLOAT, s_comment VARCHAR(101))",
        "CREATE TABLE part (p_partkey INT PRIMARY KEY, p_name VARCHAR(55), p_mfgr VARCHAR(25), p_brand VARCHAR(10), p_type VARCHAR(25), p_size INT, p_container VARCHAR(10), p_retailprice FLOAT, p_comment VARCHAR(23))",
        "CREATE TABLE partsupp (ps_partkey INT, ps_suppkey INT, ps_availqty INT, ps_supplycost FLOAT, ps_comment VARCHAR(199), PRIMARY KEY (ps_partkey, ps_suppkey))",
        "CREATE TABLE customer (c_custkey INT PRIMARY KEY, c_name VARCHAR(25), c_address VARCHAR(40), c_nationkey INT, c_phone VARCHAR(15), c_acctbal FLOAT, c_mktsegment VARCHAR(10), c_comment VARCHAR(117))",
        "CREATE TABLE orders (o_orderkey INT PRIMARY KEY, o_custkey INT, o_orderstatus VARCHAR(1), o_totalprice FLOAT, o_orderdate DATE, o_orderpriority VARCHAR(15), o_clerk VARCHAR(15), o_shippriority INT, o_comment VARCHAR(79))",
        "CREATE TABLE lineitem (l_orderkey INT, l_partkey INT, l_suppkey INT, l_linenumber INT, l_quantity FLOAT, l_extendedprice FLOAT, l_discount FLOAT, l_tax FLOAT, l_returnflag VARCHAR(1), l_linestatus VARCHAR(1), l_shipdate DATE, l_commitdate DATE, l_receiptdate DATE, l_shipinstruct VARCHAR(25), l_shipmode VARCHAR(10), l_comment VARCHAR(44), PRIMARY KEY (l_orderkey, l_linenumber))",
    ]
}

/// Create the schema and load a seeded database at the given scale.
pub fn load(client: &impl SqlClient, scale: TpchScale, seed: u64) -> Result<TpchCounts> {
    for ddl in schema_ddl() {
        client.execute(ddl)?;
    }
    gen::populate(client, scale, seed)
}
