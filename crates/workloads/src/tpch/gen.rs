//! Seeded TPC-H data generator (dbgen-lite). Value distributions follow
//! the spec closely enough that every query's predicates select the
//! intended slices (colors in part names, nation-coded phone prefixes,
//! PROMO types, shipmodes, comment markers for Q13/Q16, ...).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sqlengine::Result;

use super::{TpchCounts, TpchScale};
use crate::client::SqlClient;

/// The spec's five region names.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// (name, region index) — the spec's 25 nations.
pub const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("ROMANIA", 3),
    ("RUSSIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
    ("CHINA", 2),
];

const COLORS: [&str; 20] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "chartreuse",
    "chocolate",
    "coral",
    "cornflower",
    "cream",
    "forest",
    "green",
    "honeydew",
];

const TYPE_1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPE_3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const CONTAINER_1: [&str; 5] = ["SM", "MED", "LG", "JUMBO", "WRAP"];
const CONTAINER_2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"];
const SHIPMODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const INSTRUCT: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];

/// Days since epoch for the start of the order-date window (1992-01-01).
pub const ORDERDATE_LO: i64 = 8035;
/// Days since epoch for the end of the order-date window (1998-08-02).
pub const ORDERDATE_HI: i64 = 10440;

fn date_str(days: i64) -> String {
    sqlengine::types::format_date(days as i32)
}

fn pick<'a>(rng: &mut StdRng, xs: &[&'a str]) -> &'a str {
    xs[rng.gen_range(0..xs.len())]
}

/// Batch-insert helper: accumulates VALUES tuples and flushes every
/// `batch` rows.
struct Inserter<'a, C: SqlClient> {
    client: &'a C,
    table: &'static str,
    batch: usize,
    pending: Vec<String>,
    total: u64,
}

impl<'a, C: SqlClient> Inserter<'a, C> {
    fn new(client: &'a C, table: &'static str) -> Self {
        Inserter {
            client,
            table,
            batch: 200,
            pending: Vec::new(),
            total: 0,
        }
    }

    fn push(&mut self, tuple: String) -> Result<()> {
        self.pending.push(tuple);
        if self.pending.len() >= self.batch {
            self.flush()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let sql = format!(
            "INSERT INTO {} VALUES {}",
            self.table,
            self.pending.join(",")
        );
        self.total += self.client.execute(&sql)?.affected();
        self.pending.clear();
        Ok(())
    }

    fn finish(mut self) -> Result<u64> {
        self.flush()?;
        Ok(self.total)
    }
}

/// Generate a part name containing 3 colors (Q9 `%green%`, Q20 `forest%`).
fn part_name(rng: &mut StdRng) -> String {
    let mut words: Vec<&str> = Vec::with_capacity(3);
    for _ in 0..3 {
        words.push(pick(rng, &COLORS));
    }
    words.join(" ")
}

/// Nation-coded phone per spec: country code = 10 + nationkey (Q22).
fn phone(rng: &mut StdRng, nationkey: i64) -> String {
    format!(
        "{}-{:03}-{:03}-{:04}",
        10 + nationkey,
        rng.gen_range(100..1000),
        rng.gen_range(100..1000),
        rng.gen_range(1000..10000)
    )
}

/// Load all eight tables. Orders/lineitems fill keys `1..=orders`; refresh
/// functions insert above that range.
pub fn populate(client: &impl SqlClient, scale: TpchScale, seed: u64) -> Result<TpchCounts> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = TpchCounts::default();

    // region / nation
    let mut ins = Inserter::new(client, "region");
    for (i, r) in REGIONS.iter().enumerate() {
        ins.push(format!("({i}, '{r}', 'rc')"))?;
    }
    counts.region = ins.finish()?;

    let mut ins = Inserter::new(client, "nation");
    for (i, (n, r)) in NATIONS.iter().enumerate() {
        ins.push(format!("({i}, '{n}', {r}, 'nc')"))?;
    }
    counts.nation = ins.finish()?;

    // supplier
    let n_supp = scale.suppliers();
    let mut ins = Inserter::new(client, "supplier");
    for s in 1..=n_supp {
        // Stride assignment guarantees every nation has suppliers even at
        // tiny scales (7 is coprime with 25).
        let nk = (s * 7 + 3) % 25;
        // ~2% carry the Q16 complaints marker.
        let comment = if rng.gen_range(0..50) == 0 {
            "Customer unhappy Complaints filed"
        } else {
            "quiet supplier"
        };
        ins.push(format!(
            "({s}, 'Supplier#{s:09}', 'addr{s}', {nk}, '{}', {:.2}, '{comment}')",
            phone(&mut rng, nk),
            rng.gen_range(-999.99..9999.99)
        ))?;
    }
    counts.supplier = ins.finish()?;

    // part
    let n_part = scale.parts();
    let mut ins = Inserter::new(client, "part");
    let mut retail = Vec::with_capacity(n_part as usize + 1);
    retail.push(0.0);
    for p in 1..=n_part {
        let t1 = pick(&mut rng, &TYPE_1);
        let t2 = pick(&mut rng, &TYPE_2);
        let t3 = pick(&mut rng, &TYPE_3);
        let price = 900.0 + (p % 200) as f64 + rng.gen_range(0.0..100.0);
        retail.push(price);
        ins.push(format!(
            "({p}, '{}', 'Manufacturer#{}', 'Brand#{}{}', '{t1} {t2} {t3}', {}, '{} {}', {price:.2}, 'pc')",
            part_name(&mut rng),
            rng.gen_range(1..6),
            rng.gen_range(1..6),
            rng.gen_range(1..6),
            rng.gen_range(1..51),
            pick(&mut rng, &CONTAINER_1),
            pick(&mut rng, &CONTAINER_2),
        ))?;
    }
    counts.part = ins.finish()?;

    // partsupp: 4 distinct random suppliers per part. Remember the sets so
    // lineitem can pick consistent (l_partkey, l_suppkey) pairs — Q9/Q20
    // join partsupp on both keys.
    let mut ins = Inserter::new(client, "partsupp");
    let mut supp_of: Vec<[i64; 4]> = Vec::with_capacity(n_part as usize + 1);
    supp_of.push([1, 1, 1, 1]);
    for p in 1..=n_part {
        let mut set = [0i64; 4];
        let mut k = 0;
        while k < 4 {
            let s = rng.gen_range(1..=n_supp);
            if !set[..k].contains(&s) {
                set[k] = s;
                k += 1;
            }
        }
        supp_of.push(set);
        for s in set {
            ins.push(format!(
                "({p}, {s}, {}, {:.2}, 'psc')",
                rng.gen_range(1..10_000),
                rng.gen_range(1.0..1000.0)
            ))?;
        }
    }
    counts.partsupp = ins.finish()?;

    // customer
    let n_cust = scale.customers();
    let mut ins = Inserter::new(client, "customer");
    for c in 1..=n_cust {
        let nk = (c * 11 + 5) % 25;
        ins.push(format!(
            "({c}, 'Customer#{c:09}', 'caddr{c}', {nk}, '{}', {:.2}, '{}', 'cc')",
            phone(&mut rng, nk),
            rng.gen_range(-999.99..9999.99),
            pick(&mut rng, &SEGMENTS)
        ))?;
    }
    counts.customer = ins.finish()?;

    // orders + lineitem
    let n_orders = scale.orders();
    let mut o_ins = Inserter::new(client, "orders");
    let mut l_ins = Inserter::new(client, "lineitem");
    for o in 1..=n_orders {
        let odate = rng.gen_range(ORDERDATE_LO..=ORDERDATE_HI);
        // Per the spec, a third of customers (custkey ≡ 0 mod 3) place no
        // orders — Q22's target population.
        let cust = {
            let mut c = rng.gen_range(1..=n_cust);
            while c % 3 == 0 {
                c = rng.gen_range(1..=n_cust);
            }
            c
        };
        let nlines = rng.gen_range(1..=7);
        let mut total = 0.0;
        let mut all_f = true;
        let mut any_f = false;
        let mut lines = Vec::with_capacity(nlines as usize);
        for ln in 1..=nlines {
            let p = rng.gen_range(1..=n_part);
            let s = supp_of[p as usize][rng.gen_range(0..4)];
            let qty = rng.gen_range(1..=50) as f64;
            let eprice = qty * retail[p as usize] / 10.0;
            let disc = rng.gen_range(0.0..=0.10);
            let tax = rng.gen_range(0.0..=0.08);
            let ship = odate + rng.gen_range(1..=121);
            let commit = odate + rng.gen_range(30..=90);
            let receipt = ship + rng.gen_range(1..=30);
            let rflag = if receipt <= 9131 {
                if rng.gen_bool(0.5) {
                    "R"
                } else {
                    "A"
                }
            } else {
                "N"
            };
            let lstatus = if ship > 9131 { "O" } else { "F" };
            if lstatus == "F" {
                any_f = true;
            } else {
                all_f = false;
            }
            total += eprice * (1.0 + tax) * (1.0 - disc);
            lines.push(format!(
                "({o}, {p}, {s}, {ln}, {qty}, {eprice:.2}, {disc:.2}, {tax:.2}, '{rflag}', '{lstatus}', '{}', '{}', '{}', '{}', '{}', 'lc')",
                date_str(ship),
                date_str(commit),
                date_str(receipt),
                pick(&mut rng, &INSTRUCT),
                pick(&mut rng, &SHIPMODES),
            ));
        }
        let status = if all_f {
            "F"
        } else if any_f {
            "P"
        } else {
            "O"
        };
        // ~5% of orders carry the Q13 comment marker.
        let comment = if rng.gen_range(0..20) == 0 {
            "was special requests handled"
        } else {
            "ordinary order"
        };
        o_ins.push(format!(
            "({o}, {cust}, '{status}', {total:.2}, '{}', '{}', 'Clerk#{:09}', 0, '{comment}')",
            date_str(odate),
            pick(&mut rng, &PRIORITIES),
            rng.gen_range(1..1000)
        ))?;
        for l in lines {
            l_ins.push(l)?;
        }
    }
    counts.orders = o_ins.finish()?;
    counts.lineitem = l_ins.finish()?;
    Ok(counts)
}
