//! A uniform SQL-client abstraction so the same workload driver code runs
//! over native ODBC ([`odbcsim::OdbcConnection`]) and over Phoenix
//! ([`phoenix::PhoenixConnection`]) — the paper's application binary had
//! exactly this switch ("an option to select either Phoenix/ODBC or native
//! ODBC for data access").

use sqlengine::types::Row;
use sqlengine::Result;

/// Result of executing one statement, with all rows materialized.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecResult {
    /// A materialized result set.
    Rows(Vec<Row>),
    /// DML affected-row count.
    Affected(u64),
    /// DDL / control success.
    Ok,
}

impl ExecResult {
    /// The rows, or empty for non-result statements.
    pub fn rows(self) -> Vec<Row> {
        match self {
            ExecResult::Rows(r) => r,
            _ => Vec::new(),
        }
    }

    /// Affected-row count (result sets report their length).
    pub fn affected(&self) -> u64 {
        match self {
            ExecResult::Affected(n) => *n,
            ExecResult::Rows(r) => r.len() as u64,
            ExecResult::Ok => 0,
        }
    }
}

/// Anything that can execute SQL and deliver results.
pub trait SqlClient {
    /// Execute one SQL request, materializing any result rows.
    fn execute(&self, sql: &str) -> Result<ExecResult>;

    /// Convenience for queries.
    fn query(&self, sql: &str) -> Result<Vec<Row>> {
        Ok(self.execute(sql)?.rows())
    }
}

impl SqlClient for odbcsim::OdbcConnection {
    fn execute(&self, sql: &str) -> Result<ExecResult> {
        let mut st = self.exec_direct(sql)?;
        match st.kind() {
            odbcsim::StatementKind::RowCount(n) => Ok(ExecResult::Affected(n)),
            odbcsim::StatementKind::Ok => Ok(ExecResult::Ok),
            odbcsim::StatementKind::ResultSet => {
                let mut rows = Vec::new();
                while let Some(r) = st.fetch()? {
                    rows.push(r);
                }
                Ok(ExecResult::Rows(rows))
            }
        }
    }
}

impl SqlClient for phoenix::PhoenixConnection {
    fn execute(&self, sql: &str) -> Result<ExecResult> {
        match self.exec(sql)? {
            phoenix::ExecKind::ResultSet { .. } => Ok(ExecResult::Rows(self.fetch_all()?)),
            phoenix::ExecKind::RowCount(n) => Ok(ExecResult::Affected(n)),
            phoenix::ExecKind::Ok => Ok(ExecResult::Ok),
        }
    }
}

/// Direct in-process engine client (used for bulk loading and validation,
/// bypassing the simulated network).
pub struct EngineClient {
    engine: std::sync::Arc<sqlengine::Engine>,
    session: sqlengine::session::SessionId,
}

impl EngineClient {
    /// Open a session on the engine.
    pub fn new(engine: std::sync::Arc<sqlengine::Engine>) -> Result<EngineClient> {
        let session = engine.create_session()?;
        Ok(EngineClient { engine, session })
    }
}

impl Drop for EngineClient {
    fn drop(&mut self) {
        self.engine.close_session(self.session);
    }
}

impl SqlClient for EngineClient {
    fn execute(&self, sql: &str) -> Result<ExecResult> {
        match self.engine.execute(self.session, sql)?.outcome {
            sqlengine::ExecOutcome::Rows(cursor) => {
                let rows: Result<Vec<Row>> = cursor.collect();
                Ok(ExecResult::Rows(rows?))
            }
            sqlengine::ExecOutcome::Affected(n) => Ok(ExecResult::Affected(n)),
            _ => Ok(ExecResult::Ok),
        }
    }
}
