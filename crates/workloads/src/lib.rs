//! # workloads
//!
//! TPC-H and TPC-C style workload generators, queries and drivers used by
//! the Phoenix/ODBC reproduction's experiments — the stand-ins for the
//! paper's dbgen-loaded 1 GB TPC-H database and five-warehouse TPC-C
//! database, scaled for laptop-class runs and fully seeded/deterministic.

pub mod client;
pub mod tpcc;
pub mod tpch;

pub use client::{EngineClient, ExecResult, SqlClient};
