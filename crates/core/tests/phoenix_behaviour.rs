//! Behavioural tests for Phoenix/ODBC persistent sessions: crash masking,
//! repositioning, exactly-once updates, client caching, and transaction
//! abort surfacing.

// Integration tests unwrap freely; hygiene lints target library code.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::time::Duration;

use phoenix::{
    CacheMode, ExecKind, PhoenixConfig, PhoenixConnection, ReconnectPolicy, RepositionMode,
};
use sqlengine::types::Value;
use sqlengine::Error;
use wire::{DbServer, ServerConfig};

fn quick_policy() -> ReconnectPolicy {
    ReconnectPolicy::fixed(100, Duration::from_millis(20))
}

fn cfg_with(reposition: RepositionMode, cache: CacheMode) -> PhoenixConfig {
    let mut cfg = PhoenixConfig {
        cache,
        reposition,
        reconnect: quick_policy(),
        ..Default::default()
    };
    cfg.driver.query_timeout = Some(Duration::from_secs(10));
    // A small driver buffer so crashes interrupt result delivery rather
    // than being absorbed by client-side buffering.
    cfg.driver.buffer_bytes = 512;
    cfg
}

fn server_with_rows(n: usize) -> DbServer {
    let server = DbServer::start(ServerConfig::instant_net()).unwrap();
    let engine = server.engine().unwrap();
    let sid = engine.create_session().unwrap();
    engine
        .execute(sid, "CREATE TABLE items (k INT PRIMARY KEY, v VARCHAR(32))")
        .unwrap();
    for chunk in (0..n).collect::<Vec<_>>().chunks(200) {
        let mut sql = String::from("INSERT INTO items VALUES ");
        for (i, k) in chunk.iter().enumerate() {
            if i > 0 {
                sql.push(',');
            }
            sql.push_str(&format!("({k}, 'value-{k}')"));
        }
        engine.execute(sid, &sql).unwrap();
    }
    engine.close_session(sid);
    server
}

fn restart_after(server: &DbServer, delay: Duration) -> std::thread::JoinHandle<()> {
    let s = server.clone();
    std::thread::spawn(move || {
        std::thread::sleep(delay);
        s.restart().unwrap();
    })
}

#[test]
fn crash_mid_fetch_is_masked_server_reposition() {
    let server = server_with_rows(500);
    let px = PhoenixConnection::connect(
        &server,
        cfg_with(RepositionMode::Server, CacheMode::Disabled),
    )
    .unwrap();
    let ExecKind::ResultSet { columns } = px.exec("SELECT k, v FROM items ORDER BY k").unwrap()
    else {
        panic!("expected result set")
    };
    assert_eq!(columns.len(), 2);

    // Consume part of the result, then crash (as in §3.4).
    let mut rows = Vec::new();
    for _ in 0..250 {
        rows.push(px.fetch().unwrap().unwrap());
    }
    server.crash();
    let h = restart_after(&server, Duration::from_millis(150));

    // The application never sees the outage.
    while let Some(r) = px.fetch().unwrap() {
        rows.push(r);
    }
    h.join().unwrap();
    assert_eq!(rows.len(), 500);
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(r[0], Value::Int(i as i64), "row order preserved at {i}");
        assert_eq!(r[1], Value::Str(format!("value-{i}")));
    }
    assert_eq!(px.stats().recoveries, 1);
    let t = px.last_recovery_timing().unwrap();
    assert!(t.virtual_session > Duration::ZERO);
}

#[test]
fn crash_mid_fetch_is_masked_client_reposition() {
    let server = server_with_rows(300);
    let px = PhoenixConnection::connect(
        &server,
        cfg_with(RepositionMode::Client, CacheMode::Disabled),
    )
    .unwrap();
    px.exec("SELECT k FROM items ORDER BY k").unwrap();
    let mut rows = px.fetch_block(150).unwrap();
    server.crash();
    let h = restart_after(&server, Duration::from_millis(100));
    rows.extend(px.fetch_all().unwrap());
    h.join().unwrap();
    let ks: Vec<i64> = rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    assert_eq!(ks, (0..300).collect::<Vec<i64>>());
    assert!(px.stats().recoveries >= 1);
}

#[test]
fn repeated_crashes_during_one_result() {
    let server = server_with_rows(400);
    let px = PhoenixConnection::connect(
        &server,
        cfg_with(RepositionMode::Server, CacheMode::Disabled),
    )
    .unwrap();
    px.exec("SELECT k FROM items ORDER BY k").unwrap();
    let mut got = 0usize;
    for round in 0..3 {
        for _ in 0..100 {
            assert!(px.fetch().unwrap().is_some());
            got += 1;
        }
        server.crash();
        let h = restart_after(&server, Duration::from_millis(80 + round * 20));
        h.join().unwrap();
    }
    got += px.fetch_all().unwrap().len();
    assert_eq!(got, 400);
    assert!(px.stats().recoveries >= 3);
}

#[test]
fn update_statements_have_exactly_once_semantics() {
    let server = server_with_rows(10);
    let px = PhoenixConnection::connect(
        &server,
        cfg_with(RepositionMode::Server, CacheMode::Disabled),
    )
    .unwrap();

    // Normal operation.
    let ExecKind::RowCount(n) = px
        .exec("UPDATE items SET v = 'touched' WHERE k < 5")
        .unwrap()
    else {
        panic!()
    };
    assert_eq!(n, 5);

    // Crash *after* the update committed but before the app read the reply
    // cannot be simulated deterministically from outside, but a crash mid
    // retry loop exercises the status-table check path: run a mix of
    // updates around crashes and verify none applied twice.
    px.exec("CREATE TABLE counter (id INT PRIMARY KEY, n INT)")
        .unwrap();
    px.exec("INSERT INTO counter VALUES (1, 0)").unwrap();
    for i in 0..6 {
        if i == 2 || i == 4 {
            server.crash();
            let h = restart_after(&server, Duration::from_millis(100));
            h.join().unwrap();
        }
        let ExecKind::RowCount(n) = px
            .exec("UPDATE counter SET n = n + 1 WHERE id = 1")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(n, 1);
    }
    let rows = px.query_all("SELECT n FROM counter WHERE id = 1").unwrap();
    assert_eq!(
        rows[0][0],
        Value::Int(6),
        "each update applied exactly once"
    );
    assert!(px.stats().updates_wrapped >= 7);
}

#[test]
fn client_cached_results_survive_even_while_server_is_down() {
    let server = server_with_rows(50);
    let px = PhoenixConnection::connect(
        &server,
        cfg_with(RepositionMode::Server, CacheMode::enabled(1 << 20)),
    )
    .unwrap();
    px.exec("SELECT k, v FROM items ORDER BY k").unwrap();
    // Entire (small) result is cached client-side; crash the server and do
    // NOT restart — delivery still completes.
    server.crash();
    let rows = px.fetch_all().unwrap();
    assert_eq!(rows.len(), 50);
    assert_eq!(px.stats().results_cached, 1);
    assert_eq!(px.stats().results_persisted, 0);
    assert_eq!(px.stats().recoveries, 0, "no recovery was even needed");
    server.restart().unwrap();
}

#[test]
fn client_caching_creates_no_server_tables() {
    let server = server_with_rows(30);
    let px = PhoenixConnection::connect(
        &server,
        cfg_with(RepositionMode::Server, CacheMode::enabled(1 << 20)),
    )
    .unwrap();
    for _ in 0..5 {
        px.exec("SELECT k FROM items WHERE k < 20").unwrap();
        let rows = px.fetch_all().unwrap();
        assert_eq!(rows.len(), 20);
    }
    // No phx_res_* tables on the server.
    let engine = server.engine().unwrap();
    let names = engine.storage().catalog.table_names();
    assert!(
        names.iter().all(|n| !n.starts_with("phx_res_")),
        "unexpected result tables: {names:?}"
    );
}

#[test]
fn cache_overflow_falls_back_to_server_persistence() {
    let server = server_with_rows(2000);
    let px = PhoenixConnection::connect(
        &server,
        cfg_with(RepositionMode::Server, CacheMode::enabled(512)),
    )
    .unwrap();
    px.exec("SELECT k, v FROM items ORDER BY k").unwrap();
    let rows = px.fetch_all().unwrap();
    assert_eq!(rows.len(), 2000);
    let stats = px.stats();
    assert_eq!(stats.cache_overflows, 1);
    assert_eq!(stats.results_persisted, 1);
}

#[test]
fn app_transactions_abort_on_crash_but_session_survives() {
    let server = server_with_rows(10);
    let px = PhoenixConnection::connect(
        &server,
        cfg_with(RepositionMode::Server, CacheMode::Disabled),
    )
    .unwrap();

    px.exec("BEGIN TRAN").unwrap();
    px.exec("UPDATE items SET v = 'dirty' WHERE k = 1").unwrap();
    server.crash();
    let h = restart_after(&server, Duration::from_millis(100));
    // The next statement in the transaction surfaces the abort.
    let err = px
        .exec("UPDATE items SET v = 'dirty' WHERE k = 2")
        .unwrap_err();
    assert!(matches!(err, Error::TxnAborted(_)), "got {err:?}");
    h.join().unwrap();

    // Uncommitted work rolled back by server recovery.
    let rows = px.query_all("SELECT v FROM items WHERE k = 1").unwrap();
    assert_eq!(rows[0][0], Value::Str("value-1".into()));

    // The session remains usable: retry the transaction.
    px.exec("BEGIN TRAN").unwrap();
    px.exec("UPDATE items SET v = 'clean' WHERE k = 1").unwrap();
    px.exec("COMMIT").unwrap();
    let rows = px.query_all("SELECT v FROM items WHERE k = 1").unwrap();
    assert_eq!(rows[0][0], Value::Str("clean".into()));
    assert!(px.stats().txn_aborts_surfaced >= 1);
}

#[test]
fn result_tables_are_cleaned_up() {
    let server = server_with_rows(20);
    let px = PhoenixConnection::connect(
        &server,
        cfg_with(RepositionMode::Server, CacheMode::Disabled),
    )
    .unwrap();
    for _ in 0..4 {
        px.exec("SELECT k FROM items").unwrap();
        px.fetch_all().unwrap();
    }
    px.close_result();
    let engine = server.engine().unwrap();
    let leftovers: Vec<String> = engine
        .storage()
        .catalog
        .table_names()
        .into_iter()
        .filter(|n| n.starts_with("phx_res_"))
        .collect();
    // At most the currently-open (none) result's table may remain.
    assert!(
        leftovers.is_empty(),
        "leftover result tables: {leftovers:?}"
    );
}

#[test]
fn phoenix_gives_up_when_server_never_returns() {
    let server = server_with_rows(2000);
    let mut cfg = cfg_with(RepositionMode::Server, CacheMode::Disabled);
    cfg.reconnect = ReconnectPolicy::fixed(3, Duration::from_millis(10));
    let px = PhoenixConnection::connect(&server, cfg).unwrap();
    px.exec("SELECT k FROM items").unwrap();
    px.fetch().unwrap();
    server.crash();
    // Server never restarts: once the client-side buffer is exhausted and
    // all reconnect attempts fail, Phoenix degrades gracefully — the error
    // is the *retryable* RecoveryExhausted, not a fatal one, because the
    // virtual session survives the exhausted budget.
    let err = loop {
        match px.fetch() {
            Ok(Some(_)) => continue,
            Ok(None) => panic!("result cannot complete: server is down"),
            Err(e) => break e,
        }
    };
    assert!(matches!(err, Error::RecoveryExhausted), "got {err:?}");
    assert!(err.is_retryable(), "RecoveryExhausted must be retryable");
    assert!(!err.is_connection_fatal());
}

#[test]
fn persist_timing_and_metadata_exposed() {
    let server = server_with_rows(100);
    let px = PhoenixConnection::connect(
        &server,
        cfg_with(RepositionMode::Server, CacheMode::Disabled),
    )
    .unwrap();
    let ExecKind::ResultSet { columns } = px
        .exec("SELECT k AS key_col, v AS val_col FROM items WHERE k < 10")
        .unwrap()
    else {
        panic!()
    };
    assert_eq!(columns[0].0, "key_col");
    assert_eq!(columns[1].0, "val_col");
    let t = px.last_persist_timing().unwrap();
    assert!(t.total() > Duration::ZERO);
    assert_eq!(px.fetch_all().unwrap().len(), 10);
}

#[test]
fn aggregate_results_survive_crash() {
    let server = server_with_rows(500);
    let px = PhoenixConnection::connect(
        &server,
        cfg_with(RepositionMode::Server, CacheMode::Disabled),
    )
    .unwrap();
    // Aggregate query: result persisted as a table; crash between exec and
    // fetch; values still delivered.
    px.exec("SELECT k % 10 AS bucket, COUNT(*) AS n FROM items GROUP BY k % 10 ORDER BY bucket")
        .unwrap();
    server.crash();
    let h = restart_after(&server, Duration::from_millis(100));
    let rows = px.fetch_all().unwrap();
    h.join().unwrap();
    assert_eq!(rows.len(), 10);
    for r in &rows {
        assert_eq!(r[1], Value::Int(50));
    }
}

#[test]
fn exhausted_budget_preserves_session_and_resumes_on_later_call() {
    let server = server_with_rows(2000);
    let mut cfg = cfg_with(RepositionMode::Server, CacheMode::Disabled);
    // Tiny recovery budget: exhausts quickly while the server is down.
    cfg.reconnect = ReconnectPolicy {
        max_attempts: 100,
        initial_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(20),
        deadline: Duration::from_millis(150),
        ..Default::default()
    };
    let px = PhoenixConnection::connect(&server, cfg).unwrap();
    px.exec("SELECT k FROM items ORDER BY k").unwrap();
    let mut delivered = 0i64;
    for _ in 0..50 {
        px.fetch().unwrap().unwrap();
        delivered += 1;
    }
    server.crash();
    // Server stays down: a few client-buffered rows may still arrive, then
    // the recovery budget runs out.
    let err = loop {
        match px.fetch() {
            Ok(Some(_)) => delivered += 1,
            Ok(None) => panic!("result cannot complete: server is down"),
            Err(e) => break e,
        }
    };
    assert!(matches!(err, Error::RecoveryExhausted), "got {err:?}");
    // A failed recovery performed no reconnect: the counter must not move
    // (the historical over-count incremented it on every attempt).
    assert_eq!(px.stats().recoveries, 0);
    // Still down: the next call re-enters recovery and exhausts again —
    // the session is not poisoned, just waiting.
    let err2 = px.fetch().unwrap_err();
    assert!(matches!(err2, Error::RecoveryExhausted), "got {err2:?}");

    // Server returns: the very next call resumes recovery and delivers
    // the remaining rows from the exact remembered position.
    server.restart().unwrap();
    let mut rest = Vec::new();
    while let Some(r) = px.fetch().unwrap() {
        rest.push(r);
    }
    assert_eq!(rest.len(), (2000 - delivered) as usize);
    assert_eq!(rest[0][0], Value::Int(delivered), "resumed at the position");
    let stats = px.stats();
    assert_eq!(stats.recoveries, 1, "exactly one real reconnect happened");
}

#[test]
fn client_reposition_surfaces_short_persisted_result() {
    let server = server_with_rows(300);
    let px = PhoenixConnection::connect(
        &server,
        cfg_with(RepositionMode::Client, CacheMode::Disabled),
    )
    .unwrap();
    px.exec("SELECT k FROM items ORDER BY k").unwrap();
    for _ in 0..60 {
        px.fetch().unwrap().unwrap();
    }
    // Corrupt the persisted result out of band: most of its rows vanish,
    // so the remembered position (60) now lies beyond the end.
    let engine = server.engine().unwrap();
    let table = engine
        .storage()
        .catalog
        .table_names()
        .into_iter()
        .find(|n| n.starts_with("phx_res_"))
        .expect("persisted result table");
    let sid = engine.create_session().unwrap();
    engine
        .execute(sid, &format!("DELETE FROM {table} WHERE k >= 10"))
        .unwrap();
    engine.close_session(sid);
    server.crash();
    server.restart().unwrap();
    // Client repositioning must notice the truncated result and surface a
    // consistent error — never silently resume at a wrong position. (A few
    // client-buffered rows may still drain first.)
    let err = loop {
        match px.fetch() {
            Ok(Some(_)) => continue,
            Ok(None) => panic!("truncated result must not complete cleanly"),
            Err(e) => break e,
        }
    };
    assert!(matches!(err, Error::Storage(_)), "got {err:?}");
    // The condition is persistent, so a retry reports it again rather
    // than delivering mispositioned rows.
    let err2 = px.fetch().unwrap_err();
    assert!(matches!(err2, Error::Storage(_)), "got {err2:?}");
}
