//! The virtual ODBC database session (Sections 2.2–2.3, 4.1).
//!
//! A [`PhoenixConnection`] is what the application holds instead of a raw
//! driver connection. Underneath it maps to *two* real connections — the
//! application's and a private one that masks Phoenix's own traffic
//! (result-table creation, pings, recovery probes). When the server
//! crashes, Phoenix detects it (driver error or timeout), reconnects,
//! re-binds the virtual session, reinstalls SQL state (reopening the
//! persistent result table and repositioning), and the application simply
//! continues — it pauses, it does not fail.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use odbcsim::{DriverConfig, OdbcConnection, OdbcStatement};
use sqlengine::schema::encode_row;
use sqlengine::types::{DataType, Row, Value};
use sqlengine::{Error, Result};
use wire::DbServer;

use crate::config::{Backoff, CacheMode, PhoenixConfig, RepositionMode};
use crate::intercept::{classify, reopen_sql, RequestClass};
use crate::persist::{persist_result, PersistTiming};

/// Phoenix-managed status table for exactly-once modification statements.
pub const STATUS_TABLE: &str = "phx_status";
/// Session liveness proxy: a temp table that dies with the real session.
const PROBE_TABLE: &str = "#phx_probe";

static NEXT_CONN_ID: AtomicU64 = AtomicU64::new(1);

/// Snapshot of Phoenix's activity counters (observability + tests).
///
/// Since the obskit migration this is a *view*: the live values are
/// per-connection [`obskit::Counter`]s in the registry returned by
/// [`PhoenixConnection::metrics`], and [`PhoenixConnection::stats`]
/// materializes them into this struct for API compatibility.
#[derive(Debug, Default, Clone, Copy)]
pub struct PhoenixStats {
    /// Real session recoveries: phase-1 reconnects actually performed.
    pub recoveries: u64,
    /// Suspected failures that turned out to be transient: the existing
    /// connections still answered, nothing was rebuilt.
    pub false_alarms: u64,
    /// Result sets persisted as server tables (Section 2 path).
    pub results_persisted: u64,
    /// Result sets served entirely from the client cache (Section 4 path).
    pub results_cached: u64,
    /// Cache attempts that overflowed and fell back to persistence.
    pub cache_overflows: u64,
    /// Modification statements wrapped with the status-table transaction.
    pub updates_wrapped: u64,
    /// Rows handed to the application.
    pub rows_delivered: u64,
    /// Transaction aborts surfaced to the application after a crash.
    pub txn_aborts_surfaced: u64,
}

/// Timing of the most recent session recovery, split into the paper's two
/// phases (Figures 3 and 4). Derived from the finer-grained
/// [`RecoveryPhases`] breakdown.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryTiming {
    /// Phase 1: reconnect, reset connection options, re-map the virtual
    /// session (the paper's constant ≈0.37 s component).
    pub virtual_session: Duration,
    /// Phase 2: reinstall SQL state — reopen the persistent result and
    /// reposition to the last delivered tuple.
    pub sql_state: Duration,
    /// Reconnect attempts made during phase 1.
    pub attempts: u32,
}

/// Per-phase breakdown of one session recovery, in pipeline order. The
/// first four phases sum (with loop bookkeeping) to
/// [`RecoveryTiming::virtual_session`], the last two to
/// [`RecoveryTiming::sql_state`]. Each phase is also recorded as a
/// histogram under its name in both the connection's and the global
/// obskit registry, and emitted as a trace span when tracing is on.
#[derive(Debug, Default, Clone, Copy)]
pub struct RecoveryPhases {
    /// Deciding the suspected failure is real (app-link liveness check).
    pub detect: Duration,
    /// Pinging the surviving private connection (false-alarm probe).
    pub ping: Duration,
    /// Re-opening the connection pair until the server answers, including
    /// reconnect backoff waits.
    pub reconnect: Duration,
    /// Re-binding the virtual session (probe table + status table).
    pub rebind: Duration,
    /// Verifying — and if lost, re-persisting — the result table.
    pub reinstall: Duration,
    /// Reopening the persisted result and repositioning to the last
    /// delivered tuple.
    pub reposition: Duration,
}

impl RecoveryPhases {
    /// Histogram/trace-span names, in causal pipeline order.
    pub const NAMES: [&'static str; 6] = [
        "phoenix.recovery.detect",
        "phoenix.recovery.ping",
        "phoenix.recovery.reconnect",
        "phoenix.recovery.rebind",
        "phoenix.recovery.reinstall",
        "phoenix.recovery.reposition",
    ];

    /// `(name, duration)` pairs in pipeline order.
    pub fn named(&self) -> [(&'static str, Duration); 6] {
        let [detect, ping, reconnect, rebind, reinstall, reposition] = Self::NAMES;
        [
            (detect, self.detect),
            (ping, self.ping),
            (reconnect, self.reconnect),
            (rebind, self.rebind),
            (reinstall, self.reinstall),
            (reposition, self.reposition),
        ]
    }

    /// Sum of all six phases (≤ the recovery wall-clock, which also
    /// spans loop bookkeeping between phases).
    pub fn total(&self) -> Duration {
        self.named().iter().map(|(_, d)| *d).sum()
    }
}

/// Outcome of [`PhoenixConnection::exec`].
#[derive(Debug, Clone, PartialEq)]
pub enum ExecKind {
    /// A result set is open; fetch with [`PhoenixConnection::fetch`].
    ResultSet {
        /// Column names and types of the open result.
        columns: Vec<(String, DataType)>,
    },
    /// DML affected-row count.
    RowCount(u64),
    /// Control/DDL success.
    Ok,
}

enum ActiveSource {
    /// Fully cached at the client (Section 4): crash-proof by construction.
    Cached(VecDeque<Row>),
    /// Persisted as a server table; `stmt` streams from the reopen query.
    /// Inside an application transaction the persistence work still
    /// happens (it is the overhead the paper measures in Table 4), but a
    /// crash surfaces as a transaction abort rather than being masked.
    Persisted { table: String, stmt: OdbcStatement },
}

struct Active {
    sql: String,
    columns: Vec<(String, DataType)>,
    delivered: u64,
    source: ActiveSource,
    /// Set while the server-side state backing this result is stale
    /// (recovery phase 2 started but did not finish). Cleared only when
    /// reinstall fully succeeds, so an interrupted recovery is resumed —
    /// never served from a dead statement.
    needs_reinstall: bool,
}

struct Inner {
    app: OdbcConnection,
    private: OdbcConnection,
    in_app_txn: bool,
    next_req: u64,
    active: Option<Active>,
    last_recovery: Option<RecoveryTiming>,
    last_phases: Option<RecoveryPhases>,
    last_persist: Option<PersistTiming>,
    /// Result tables whose DROP is pending (processed lazily).
    pending_drop: Vec<String>,
    next_result: u64,
}

/// Per-connection activity counters: the single source of truth behind
/// [`PhoenixConnection::stats`]. Handles are resolved once so the hot
/// paths (row delivery, wrapped updates) pay one relaxed atomic add.
struct ConnMetrics {
    registry: std::sync::Arc<obskit::Registry>,
    recoveries: std::sync::Arc<obskit::Counter>,
    false_alarms: std::sync::Arc<obskit::Counter>,
    results_persisted: std::sync::Arc<obskit::Counter>,
    results_cached: std::sync::Arc<obskit::Counter>,
    cache_overflows: std::sync::Arc<obskit::Counter>,
    updates_wrapped: std::sync::Arc<obskit::Counter>,
    rows_delivered: std::sync::Arc<obskit::Counter>,
    txn_aborts_surfaced: std::sync::Arc<obskit::Counter>,
}

impl ConnMetrics {
    fn new() -> ConnMetrics {
        let registry = std::sync::Arc::new(obskit::Registry::new());
        ConnMetrics {
            recoveries: registry.counter("phoenix.session.recoveries"),
            false_alarms: registry.counter("phoenix.session.false_alarms"),
            results_persisted: registry.counter("phoenix.session.results_persisted"),
            results_cached: registry.counter("phoenix.session.results_cached"),
            cache_overflows: registry.counter("phoenix.session.cache_overflows"),
            updates_wrapped: registry.counter("phoenix.session.updates_wrapped"),
            rows_delivered: registry.counter("phoenix.session.rows_delivered"),
            txn_aborts_surfaced: registry.counter("phoenix.session.txn_aborts_surfaced"),
            registry,
        }
    }
}

/// A persistent database session.
pub struct PhoenixConnection {
    server: DbServer,
    cfg: PhoenixConfig,
    /// Stable identity used for result-table names and status-table keys.
    conn_id: u64,
    metrics: ConnMetrics,
    inner: Mutex<Inner>,
}

impl PhoenixConnection {
    /// Open a persistent session: connects the application connection and
    /// the private connection, installs the session probe and ensures the
    /// status table exists.
    pub fn connect(server: &DbServer, cfg: PhoenixConfig) -> Result<PhoenixConnection> {
        let conn_id = NEXT_CONN_ID.fetch_add(1, Ordering::Relaxed);
        let (app, private) = Self::open_pair(server, &cfg)?;
        Self::install_session_context(&app, &private)?;
        Ok(PhoenixConnection {
            server: server.clone(),
            cfg,
            conn_id,
            metrics: ConnMetrics::new(),
            inner: Mutex::new(Inner {
                app,
                private,
                in_app_txn: false,
                next_req: 1,
                active: None,
                last_recovery: None,
                last_phases: None,
                last_persist: None,
                pending_drop: Vec::new(),
                next_result: 1,
            }),
        })
    }

    fn open_pair(
        server: &DbServer,
        cfg: &PhoenixConfig,
    ) -> Result<(OdbcConnection, OdbcConnection)> {
        let app = OdbcConnection::connect(server, cfg.driver.clone())?;
        let private = OdbcConnection::connect(
            server,
            DriverConfig {
                login: format!("{}:phoenix-private", cfg.driver.login),
                ..cfg.driver.clone()
            },
        )?;
        Ok((app, private))
    }

    fn install_session_context(app: &OdbcConnection, private: &OdbcConnection) -> Result<()> {
        // Session-liveness proxy (temp table, dies with the session).
        app.exec_direct(&format!("CREATE TABLE {PROBE_TABLE} (x INT)"))?;
        // Status table for exactly-once updates (shared, persistent).
        match private.exec_direct(&format!(
            "CREATE TABLE {STATUS_TABLE} (app_key VARCHAR(64), req_id INT, affected INT, \
             PRIMARY KEY (app_key, req_id))"
        )) {
            Ok(_) => Ok(()),
            Err(Error::AlreadyExists(_)) => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn status_key(&self) -> String {
        format!("phx_{}", self.conn_id)
    }

    /// The key this connection's wrapped modifications are ledgered under
    /// in `phx_status` — lets a test (or an auditor) read exactly this
    /// session's exactly-once history.
    pub fn app_key(&self) -> String {
        self.status_key()
    }

    // -- observability --------------------------------------------------------

    /// Counters describing this session's activity (a snapshot view over
    /// the per-connection obskit registry).
    pub fn stats(&self) -> PhoenixStats {
        PhoenixStats {
            recoveries: self.metrics.recoveries.get(),
            false_alarms: self.metrics.false_alarms.get(),
            results_persisted: self.metrics.results_persisted.get(),
            results_cached: self.metrics.results_cached.get(),
            cache_overflows: self.metrics.cache_overflows.get(),
            updates_wrapped: self.metrics.updates_wrapped.get(),
            rows_delivered: self.metrics.rows_delivered.get(),
            txn_aborts_surfaced: self.metrics.txn_aborts_surfaced.get(),
        }
    }

    /// This connection's metrics registry: the counters behind
    /// [`Self::stats`] plus per-phase recovery histograms.
    pub fn metrics(&self) -> std::sync::Arc<obskit::Registry> {
        std::sync::Arc::clone(&self.metrics.registry)
    }

    /// Timing of the most recent recovery, if any happened.
    pub fn last_recovery_timing(&self) -> Option<RecoveryTiming> {
        self.inner.lock().last_recovery
    }

    /// Per-phase breakdown of the most recent *real* recovery (a false
    /// alarm does not produce one).
    pub fn last_recovery_phases(&self) -> Option<RecoveryPhases> {
        self.inner.lock().last_phases
    }

    /// Step timings of the most recent server-side result persistence.
    pub fn last_persist_timing(&self) -> Option<PersistTiming> {
        self.inner.lock().last_persist
    }

    /// Columns of the open result set, if any.
    pub fn columns(&self) -> Option<Vec<(String, DataType)>> {
        self.inner.lock().active.as_ref().map(|a| a.columns.clone())
    }

    // -- statement execution ---------------------------------------------------

    /// Execute an application request through Phoenix.
    pub fn exec(&self, sql: &str) -> Result<ExecKind> {
        let t_parse = Instant::now();
        let class = classify(sql)?;
        let parse_time = t_parse.elapsed();

        let mut inner = self.inner.lock();
        self.retire_active(&mut inner);

        match class {
            RequestClass::TxnBegin => {
                self.masked_passthrough(&mut inner, sql)?;
                inner.in_app_txn = true;
                Ok(ExecKind::Ok)
            }
            RequestClass::TxnCommit | RequestClass::TxnRollback => {
                let r = inner.app.exec_direct(sql);
                inner.in_app_txn = false;
                match r {
                    Ok(_) => Ok(ExecKind::Ok),
                    Err(e) if e.is_connection_fatal() => {
                        // Transaction outcome unknown/aborted: recover the
                        // session, surface the abort to the application.
                        self.recover(&mut inner)?;
                        self.metrics.txn_aborts_surfaced.incr();
                        Err(Error::TxnAborted(
                            "server failure during transaction".into(),
                        ))
                    }
                    Err(e) => Err(e),
                }
            }
            RequestClass::Passthrough => {
                if inner.in_app_txn {
                    self.in_txn_exec(&mut inner, sql)
                        .map(|st| match st.row_count() {
                            Some(n) => ExecKind::RowCount(n),
                            None => ExecKind::Ok,
                        })
                } else {
                    let st = self.masked_passthrough(&mut inner, sql)?;
                    Ok(match st.row_count() {
                        Some(n) => ExecKind::RowCount(n),
                        None => ExecKind::Ok,
                    })
                }
            }
            RequestClass::Modification => {
                if inner.in_app_txn {
                    let st = self.in_txn_exec(&mut inner, sql)?;
                    Ok(ExecKind::RowCount(st.row_count().unwrap_or(0)))
                } else {
                    let n = self.wrapped_modification(&mut inner, sql)?;
                    Ok(ExecKind::RowCount(n))
                }
            }
            RequestClass::ResultGenerating => self.open_result(&mut inner, sql, parse_time),
        }
    }

    /// Fetch the next row of the open result set. Server failures during
    /// delivery are masked: Phoenix recovers the session, repositions, and
    /// returns the row as if nothing happened.
    pub fn fetch(&self) -> Result<Option<Row>> {
        enum Step {
            Row(Option<Row>),
            Recover,
            TxnDead,
            Fail(Error),
        }
        let mut guard = self.inner.lock();
        loop {
            let inner = &mut *guard;
            let Some(active) = inner.active.as_mut() else {
                return Err(Error::Semantic("no open result set".into()));
            };
            let in_txn = inner.in_app_txn;
            let step = match &mut active.source {
                ActiveSource::Cached(rows) => Step::Row(rows.pop_front()),
                ActiveSource::Persisted { stmt, .. } => match stmt.fetch() {
                    Ok(row) => Step::Row(row),
                    Err(e) if e.is_connection_fatal() => {
                        if in_txn {
                            Step::TxnDead
                        } else {
                            Step::Recover
                        }
                    }
                    Err(e) => Step::Fail(e),
                },
            };
            match step {
                Step::Row(Some(row)) => {
                    active.delivered += 1;
                    self.metrics.rows_delivered.incr();
                    return Ok(Some(row));
                }
                Step::Row(None) => return Ok(None),
                Step::Recover => {
                    self.recover(&mut guard)?;
                    // Loop: the reopened, repositioned statement resumes
                    // delivery seamlessly.
                }
                Step::TxnDead => {
                    self.recover(&mut guard)?;
                    guard.in_app_txn = false;
                    guard.active = None;
                    self.metrics.txn_aborts_surfaced.incr();
                    return Err(Error::TxnAborted(
                        "server failure during transaction".into(),
                    ));
                }
                Step::Fail(e) => return Err(e),
            }
        }
    }

    /// Fetch up to `n` rows.
    pub fn fetch_block(&self, n: usize) -> Result<Vec<Row>> {
        let mut out = Vec::with_capacity(n.min(1024));
        while out.len() < n {
            match self.fetch()? {
                Some(r) => out.push(r),
                None => break,
            }
        }
        Ok(out)
    }

    /// Drain the open result fully.
    pub fn fetch_all(&self) -> Result<Vec<Row>> {
        self.fetch_block(usize::MAX)
    }

    /// Convenience: exec + fetch_all.
    pub fn query_all(&self, sql: &str) -> Result<Vec<Row>> {
        match self.exec(sql)? {
            ExecKind::ResultSet { .. } => self.fetch_all(),
            _ => Ok(Vec::new()),
        }
    }

    /// Close the open result set (drops the persistent result table).
    pub fn close_result(&self) {
        let mut inner = self.inner.lock();
        self.retire_active(&mut inner);
        self.process_pending_drops(&mut inner);
    }

    /// Orderly close: drop pending result tables, clear status rows.
    pub fn close(self) {
        let mut inner = self.inner.lock();
        self.retire_active(&mut inner);
        self.process_pending_drops(&mut inner);
        // lint:allow(discard): close is best-effort; stale status rows are reclaimed on next connect
        let _ = inner.private.exec_direct(&format!(
            "DELETE FROM {STATUS_TABLE} WHERE app_key = '{}'",
            self.status_key()
        ));
    }

    // -- internals --------------------------------------------------------------

    /// Retire the current result set: persistent tables are scheduled for
    /// dropping; statements close implicitly when superseded.
    fn retire_active(&self, inner: &mut Inner) {
        if let Some(active) = inner.active.take() {
            if let ActiveSource::Persisted { table, stmt } = active.source {
                // lint:allow(discard): a dead link closes the statement server-side anyway
                let _ = stmt.close();
                inner.pending_drop.push(table);
            }
        }
    }

    fn process_pending_drops(&self, inner: &mut Inner) {
        let tables = std::mem::take(&mut inner.pending_drop);
        for t in tables {
            if inner
                .private
                .exec_direct(&format!("DROP TABLE IF EXISTS {t}"))
                .is_err()
            {
                // Keep for a later attempt (e.g. server temporarily down).
                inner.pending_drop.push(t);
            }
        }
    }

    /// Run a passthrough statement with failure masking: on a fatal error,
    /// recover and re-execute (safe for DDL-style requests, which are
    /// idempotent under `IF EXISTS`/`OR REPLACE` or fail cleanly).
    fn masked_passthrough(&self, inner: &mut Inner, sql: &str) -> Result<OdbcStatement> {
        let mut attempts = 0;
        loop {
            match inner.app.exec_direct(sql) {
                Ok(st) => return Ok(st),
                Err(e)
                    if e.is_connection_fatal() && attempts < self.cfg.reconnect.masking_retries =>
                {
                    attempts += 1;
                    self.recover(inner)?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Statement inside an application transaction: no masking beyond
    /// session recovery (crash ⇒ transaction abort surfaced to the app).
    fn in_txn_exec(&self, inner: &mut Inner, sql: &str) -> Result<OdbcStatement> {
        match inner.app.exec_direct(sql) {
            Ok(st) => Ok(st),
            Err(e) if e.is_connection_fatal() => {
                self.recover(inner)?;
                inner.in_app_txn = false;
                self.metrics.txn_aborts_surfaced.incr();
                Err(Error::TxnAborted(
                    "server failure during transaction".into(),
                ))
            }
            Err(e) => Err(e),
        }
    }

    /// Section 2.1 + 4.1: open a result set recoverably.
    fn open_result(&self, inner: &mut Inner, sql: &str, parse_time: Duration) -> Result<ExecKind> {
        self.process_pending_drops(inner);

        // Client caching first (Section 4): execute the original statement
        // and pull the whole result into the client cache.
        if let CacheMode::Enabled { capacity_bytes } = self.cfg.cache {
            match self.try_cache_result(inner, sql, capacity_bytes)? {
                CacheAttempt::Cached { columns, rows } => {
                    self.metrics.results_cached.incr();
                    let columns2 = columns.clone();
                    inner.active = Some(Active {
                        sql: sql.to_string(),
                        columns,
                        delivered: 0,
                        source: ActiveSource::Cached(rows),
                        needs_reinstall: false,
                    });
                    return Ok(ExecKind::ResultSet { columns: columns2 });
                }
                CacheAttempt::Overflow => {
                    self.metrics.cache_overflows.incr();
                    // Fall through to server-side persistence.
                }
            }
        }

        // Server-side persistence with masking: a failure at any step
        // restarts the whole sequence (fresh table name ⇒ idempotent).
        // Inside an application transaction a server failure cannot be
        // masked (the transaction is gone): recover the session and
        // surface the abort.
        let mut attempts = 0;
        loop {
            let table = format!("phx_res_{}_{}", self.conn_id, inner.next_result);
            inner.next_result += 1;
            match persist_result(&inner.app, &inner.private, &table, sql, parse_time) {
                Ok(pr) => {
                    self.metrics.results_persisted.incr();
                    inner.last_persist = Some(pr.timing);
                    let columns = pr.columns.clone();
                    inner.active = Some(Active {
                        sql: sql.to_string(),
                        columns: pr.columns,
                        delivered: 0,
                        source: ActiveSource::Persisted {
                            table: pr.table,
                            stmt: pr.stmt,
                        },
                        needs_reinstall: false,
                    });
                    return Ok(ExecKind::ResultSet { columns });
                }
                Err(e) if e.is_connection_fatal() => {
                    inner.pending_drop.push(table);
                    self.recover(inner)?;
                    if inner.in_app_txn {
                        inner.in_app_txn = false;
                        self.metrics.txn_aborts_surfaced.incr();
                        return Err(Error::TxnAborted(
                            "server failure during transaction".into(),
                        ));
                    }
                    if attempts >= self.cfg.reconnect.masking_retries {
                        return Err(e);
                    }
                    attempts += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn try_cache_result(
        &self,
        inner: &mut Inner,
        sql: &str,
        capacity: usize,
    ) -> Result<CacheAttempt> {
        let mut attempts = 0;
        'retry: loop {
            let mut stmt = match inner.app.exec_direct(sql) {
                Ok(s) => s,
                Err(e)
                    if e.is_connection_fatal() && attempts < self.cfg.reconnect.masking_retries =>
                {
                    self.recover(inner)?;
                    if inner.in_app_txn {
                        inner.in_app_txn = false;
                        self.metrics.txn_aborts_surfaced.incr();
                        return Err(Error::TxnAborted(
                            "server failure during transaction".into(),
                        ));
                    }
                    attempts += 1;
                    continue 'retry;
                }
                Err(e) => return Err(e),
            };
            let columns = stmt.columns().to_vec();
            let mut rows = VecDeque::new();
            let mut bytes = 0usize;
            loop {
                // Single block-cursor read per driver call.
                let batch = match stmt.fetch_block(256) {
                    Ok(b) => b,
                    Err(e)
                        if e.is_connection_fatal()
                            && attempts < self.cfg.reconnect.masking_retries =>
                    {
                        // Full result never arrived: usual recovery, then
                        // re-execute the query (Section 4.1).
                        self.recover(inner)?;
                        if inner.in_app_txn {
                            inner.in_app_txn = false;
                            self.metrics.txn_aborts_surfaced.incr();
                            return Err(Error::TxnAborted(
                                "server failure during transaction".into(),
                            ));
                        }
                        attempts += 1;
                        continue 'retry;
                    }
                    Err(e) => return Err(e),
                };
                if batch.is_empty() {
                    // Entire result now at the client: deliverability is
                    // guaranteed regardless of later server failures.
                    return Ok(CacheAttempt::Cached { columns, rows });
                }
                for r in batch {
                    let mut tmp = Vec::new();
                    encode_row(&r, &mut tmp);
                    bytes += tmp.len();
                    rows.push_back(r);
                }
                if bytes > capacity {
                    // lint:allow(discard): overflow abandons the probe; statement cleanup is advisory
                    let _ = stmt.close();
                    return Ok(CacheAttempt::Overflow);
                }
            }
        }
    }

    /// Modification statement with exactly-once semantics: wrap in a
    /// transaction that also records the affected count in the status
    /// table; on failure, the status row tells recovery whether the
    /// statement completed.
    fn wrapped_modification(&self, inner: &mut Inner, sql: &str) -> Result<u64> {
        self.metrics.updates_wrapped.incr();
        let req_id = inner.next_req;
        inner.next_req += 1;
        let key = self.status_key();

        let mut attempts = 0u32;
        loop {
            let r = (|| -> Result<u64> {
                inner.app.exec_direct("BEGIN TRAN")?;
                let st = inner.app.exec_direct(sql)?;
                let n = st.row_count().unwrap_or(0);
                // The two windows the status table exists to close: crash
                // before the status row is written (txn aborts, safe to
                // re-execute) and crash after commit but before the client
                // learns of it (status row says "done", don't re-execute).
                faultkit::crashpoint!("phoenix.status.write");
                inner.app.exec_direct(&format!(
                    "INSERT INTO {STATUS_TABLE} VALUES ('{key}', {req_id}, {n})"
                ))?;
                faultkit::crashpoint!("phoenix.status.commit");
                inner.app.exec_direct("COMMIT")?;
                Ok(n)
            })();
            match r {
                Ok(n) => return Ok(n),
                Err(e) if e.is_connection_fatal() => {
                    if attempts >= self.cfg.reconnect.masking_retries {
                        return Err(e);
                    }
                    attempts += 1;
                    self.recover(inner)?;
                    // Did the wrapped transaction commit before the crash?
                    // The check itself runs over the network and can hit
                    // the next fault — keep it inside the masking loop.
                    let committed = loop {
                        match query_all(
                            &inner.private,
                            &format!(
                                "SELECT affected FROM {STATUS_TABLE} \
                                 WHERE app_key = '{key}' AND req_id = {req_id}"
                            ),
                        ) {
                            Ok(check) => {
                                break check.first().and_then(|row| match row.first() {
                                    Some(Value::Int(n)) => Some(*n as u64),
                                    _ => None,
                                })
                            }
                            Err(e) if e.is_connection_fatal() => {
                                if attempts >= self.cfg.reconnect.masking_retries {
                                    return Err(e);
                                }
                                attempts += 1;
                                self.recover(inner)?;
                            }
                            Err(Error::Deadlock) => {
                                // The ledger read lost a wait-die conflict
                                // (e.g. against another session's status
                                // write mid-storm): reads are safe to
                                // retry after a decorrelated pause.
                                if attempts >= self.cfg.reconnect.masking_retries {
                                    return Err(Error::Deadlock);
                                }
                                attempts += 1;
                                // lint:allow(sleep): deadlock-retry spacing, bounded by the policy's max_backoff
                                std::thread::sleep(
                                    self.cfg
                                        .reconnect
                                        .backoff_delay_stream(self.conn_id, attempts),
                                );
                            }
                            Err(e) => return Err(e),
                        }
                    };
                    if let Some(n) = committed {
                        return Ok(n);
                    }
                    // Not recorded ⇒ the transaction aborted; re-execute.
                }
                Err(Error::Deadlock) => {
                    // Wait-die victim: retry the wrapped transaction.
                    // lint:allow(discard): the victim txn is already rolled back server-side
                    let _ = inner.app.exec_direct("ROLLBACK");
                    if attempts >= self.cfg.reconnect.masking_retries {
                        // The victim transaction aborted, so this request
                        // definitively did not apply (its status row cannot
                        // exist). Return the req_id to the pool: an
                        // application-level retry keeps the ledger dense.
                        inner.next_req = req_id;
                        return Err(Error::Deadlock);
                    }
                    attempts += 1;
                    // A fresh BEGIN is always the *youngest* transaction, so
                    // under heavy contention an immediate retry just dies
                    // again (victim livelock). Space retries out with the
                    // session's own jittered backoff stream, the same
                    // decorrelation that spreads a reconnect storm.
                    // lint:allow(sleep): deadlock-retry spacing, bounded by the policy's max_backoff
                    std::thread::sleep(
                        self.cfg
                            .reconnect
                            .backoff_delay_stream(self.conn_id, attempts),
                    );
                }
                Err(e) => {
                    // lint:allow(discard): ROLLBACK after a failed txn is best-effort; the error to surface is `e`
                    let _ = inner.app.exec_direct("ROLLBACK");
                    return Err(e);
                }
            }
        }
    }

    // -- recovery (Section 2.3) --------------------------------------------------

    /// Recover the virtual database session after a suspected failure.
    /// Idempotent: a crash *during* recovery simply re-enters here, and an
    /// exhausted budget ([`Error::RecoveryExhausted`]) leaves the virtual
    /// session intact so the *next* application call resumes recovery
    /// instead of failing permanently.
    fn recover(&self, inner: &mut Inner) -> Result<()> {
        let policy = self.cfg.reconnect;
        let t0 = Instant::now();
        let mut phases = RecoveryPhases::default();

        // Transient-failure short circuit: if the private connection still
        // answers pings, the app connection is alive, and no interrupted
        // phase-2 work is outstanding, nothing needs rebuilding.
        let app_dead = inner.app.is_dead();
        phases.detect = t0.elapsed();
        let t_ping = Instant::now();
        let private_alive = !app_dead && inner.private.ping().is_ok();
        phases.ping = t_ping.elapsed();
        if !app_dead && private_alive && !inner.active.as_ref().is_some_and(|a| a.needs_reinstall) {
            self.metrics.false_alarms.incr();
            obskit::event!("phoenix.recovery.false_alarm");
            inner.last_recovery = Some(RecoveryTiming {
                virtual_session: t0.elapsed(),
                sql_state: Duration::ZERO,
                attempts: 0,
            });
            return Ok(());
        }

        // Concurrent-recovery telemetry: the inflight gauge (and its
        // high-water mark) rises while this recovery is actively working
        // and falls on every exit path — a reconnect storm shows up as
        // the peak, and a leak would leave the gauge nonzero.
        struct InflightGuard(std::sync::Arc<obskit::metrics::Gauge>);
        impl Drop for InflightGuard {
            fn drop(&mut self) {
                self.0.add(-1);
            }
        }
        let inflight = obskit::metrics::global().gauge("phoenix.recovery.inflight");
        inflight.add(1);
        obskit::metrics::global()
            .gauge("phoenix.recovery.inflight.peak")
            .max(inflight.get());
        let _inflight = InflightGuard(inflight);

        // One budget governs both phases; a connection-fatal error in
        // phase 2 re-enters phase 1 on the same Backoff, so a crash during
        // recovery cannot leak `ServerShutdown` past this function.
        // Budget-exhausted exits flow through `exhausted` so the abandoned
        // attempt still lands on the timeline. The backoff draws jitter
        // from this session's own stream (keyed by connection id): one
        // configured seed, decorrelated schedules across a storm.
        let mut backoff = Backoff::for_stream(&policy, self.conn_id);
        let exhausted = || {
            obskit::event!("phoenix.recovery.exhausted");
            Err(Error::RecoveryExhausted)
        };
        // When the server sheds a reconnect (`ServerBusy`), its
        // `retry_after` hint steers the next wait instead of the pure
        // backoff schedule — still jittered, still inside the one budget.
        let mut busy_hint: Option<Duration> = None;
        let (virtual_session, sql_state) = loop {
            // Phase 1: re-establish connections and the virtual session
            // (skipped when the links survived and only phase 2 remains).
            // Reconnect time includes the backoff waits between attempts.
            if inner.app.is_dead() || inner.private.ping().is_err() {
                let t_reconnect = Instant::now();
                let fresh = match Self::open_pair(&self.server, &self.cfg) {
                    // Ping over the private connection, then decide whether
                    // the database session survived via the temp-table
                    // proxy (temp tables die with their session).
                    Ok((app, private)) if private.ping().is_ok() => {
                        let _session_survived = app
                            .exec_direct(&format!("SELECT * FROM {PROBE_TABLE} WHERE 0=1"))
                            .is_ok();
                        // (In this substrate a broken link always implies a
                        // dead session, so the probe is informational.)
                        Some((app, private))
                    }
                    Err(Error::ServerBusy { retry_after }) => {
                        // Shed by admission control: a maskable phase-1
                        // outcome, like the server still being down — but
                        // the next wait honors the server's hint.
                        obskit::event!("phoenix.recovery.shed");
                        busy_hint = Some(retry_after);
                        None
                    }
                    _ => None,
                };
                phases.reconnect += t_reconnect.elapsed();
                let Some((app, private)) = fresh else {
                    let t_wait = Instant::now();
                    let retry = match busy_hint.take() {
                        Some(hint) => backoff.wait_shed(hint),
                        None => backoff.wait(),
                    };
                    phases.reconnect += t_wait.elapsed();
                    if !retry {
                        return exhausted();
                    }
                    continue;
                };
                let t_rebind = Instant::now();
                let rebound = Self::install_session_context(&app, &private);
                phases.rebind += t_rebind.elapsed();
                if let Err(e) = rebound {
                    // Maskable rebind outcomes: the link died again, the
                    // server shed us, or the context statements lost a
                    // wait-die conflict with another recovering session —
                    // all retryable inside the one budget.
                    if e.is_connection_fatal()
                        || matches!(e, Error::ServerBusy { .. } | Error::Deadlock)
                    {
                        if let Error::ServerBusy { retry_after } = e {
                            obskit::event!("phoenix.recovery.shed");
                            busy_hint = Some(retry_after);
                        }
                        let t_wait = Instant::now();
                        let retry = match busy_hint.take() {
                            Some(hint) => backoff.wait_shed(hint),
                            None => backoff.wait(),
                        };
                        phases.reconnect += t_wait.elapsed();
                        if !retry {
                            return exhausted();
                        }
                        continue;
                    }
                    return Err(e);
                }
                inner.app = app;
                inner.private = private;
                self.metrics.recoveries.incr();
            }
            let virtual_session = t0.elapsed();

            // Phase 2: reinstall SQL state for the interrupted request.
            let t1 = Instant::now();
            match self.reinstall_sql_state(inner, &mut phases) {
                Ok(()) => break (virtual_session, t1.elapsed()),
                Err(e)
                    if e.is_connection_fatal()
                        || matches!(e, Error::ServerBusy { .. } | Error::Deadlock) =>
                {
                    if let Error::ServerBusy { retry_after } = e {
                        obskit::event!("phoenix.recovery.shed");
                        busy_hint = Some(retry_after);
                    }
                    let t_wait = Instant::now();
                    let retry = match busy_hint.take() {
                        Some(hint) => backoff.wait_shed(hint),
                        None => backoff.wait(),
                    };
                    phases.reconnect += t_wait.elapsed();
                    if !retry {
                        return exhausted();
                    }
                    // Loop: `needs_reinstall` stays set, so we retry the
                    // reinstall (after phase 1 if the link died again).
                }
                Err(e) => return Err(e),
            }
        };

        // Publish the breakdown: per-phase histograms in both the
        // connection's and the process registry, plus one trace span per
        // phase in pipeline order (seq order = causal order).
        for (name, d) in phases.named() {
            self.metrics.registry.record(name, d);
            obskit::metrics::global().record(name, d);
            obskit::trace::emit_span(name, d, String::new());
        }
        inner.last_recovery = Some(RecoveryTiming {
            virtual_session,
            sql_state,
            attempts: backoff.attempts(),
        });
        inner.last_phases = Some(phases);
        Ok(())
    }

    /// Phase 2 of recovery: reinstall SQL state on the (fresh or verified)
    /// connections. Failures leave `inner.active` in place with
    /// `needs_reinstall` set, so the work can be resumed — the virtual
    /// session is never torn down by a failed reinstall. Time spent is
    /// accumulated into `phases` (verification/re-persist → `reinstall`,
    /// reopen/skip → `reposition`), including on the error paths, so a
    /// retried phase 2 reports its full cost.
    fn reinstall_sql_state(&self, inner: &mut Inner, phases: &mut RecoveryPhases) -> Result<()> {
        let t_reinstall = Instant::now();
        let Inner {
            app,
            private,
            in_app_txn,
            active,
            next_result,
            ..
        } = inner;
        if *in_app_txn {
            // The transaction died with the server; the caller surfaces
            // TxnAborted. Nothing to reinstall.
            *active = None;
            phases.reinstall += t_reinstall.elapsed();
            return Ok(());
        }
        let Some(a) = active.as_mut() else {
            phases.reinstall += t_reinstall.elapsed();
            return Ok(());
        };
        a.needs_reinstall = true;
        match &mut a.source {
            // Entire result is client-side; no server state needed.
            ActiveSource::Cached(_) => {
                a.needs_reinstall = false;
                phases.reinstall += t_reinstall.elapsed();
                Ok(())
            }
            ActiveSource::Persisted { table, stmt } => {
                // Verify database recovery restored the result table. If it
                // is somehow gone (it was dropped out of band, or never
                // reached commit), redo the whole persistence from the
                // remembered request — the result is recomputed, not lost.
                let verified =
                    match private.exec_direct(&format!("SELECT * FROM {table} WHERE 0=1")) {
                        Ok(_) => Ok(()),
                        Err(Error::NotFound(_)) => {
                            let fresh = format!("phx_res_{}_{}", self.conn_id, *next_result);
                            *next_result += 1;
                            persist_result(app, private, &fresh, &a.sql, Duration::ZERO).map(|pr| {
                                // lint:allow(discard): the persisted table is what matters; the probe stmt is disposable
                                let _ = pr.stmt.close();
                                *table = fresh;
                            })
                        }
                        Err(e) => Err(e),
                    };
                phases.reinstall += t_reinstall.elapsed();
                verified?;
                // Reopen and reposition to the last delivered tuple.
                let t_reposition = Instant::now();
                let reopened = match self.cfg.reposition {
                    RepositionMode::Server => {
                        // Advance server-side; no tuples cross the wire
                        // (the repositioning stored procedure).
                        app.exec_direct_skip(&reopen_sql(table), a.delivered)
                    }
                    RepositionMode::Client => {
                        // Sequence through the result from the client. A
                        // reopened result shorter than the remembered
                        // position means the persisted table lost rows —
                        // surface that, never silently resume short.
                        (|| {
                            let mut s = app.exec_direct(&reopen_sql(table))?;
                            for consumed in 0..a.delivered {
                                if s.fetch()?.is_none() {
                                    return Err(Error::Storage(format!(
                                        "persisted result {table} ended at row {consumed} \
                                         while repositioning to {}",
                                        a.delivered
                                    )));
                                }
                            }
                            Ok(s)
                        })()
                    }
                };
                phases.reposition += t_reposition.elapsed();
                *stmt = reopened?;
                a.needs_reinstall = false;
                Ok(())
            }
        }
    }
}

enum CacheAttempt {
    Cached {
        columns: Vec<(String, DataType)>,
        rows: VecDeque<Row>,
    },
    Overflow,
}

/// Run a query on a raw driver connection and collect all rows.
pub(crate) fn query_all(conn: &OdbcConnection, sql: &str) -> Result<Vec<Row>> {
    let mut st = conn.exec_direct(sql)?;
    let mut out = Vec::new();
    while let Some(r) = st.fetch()? {
        out.push(r);
    }
    Ok(out)
}
