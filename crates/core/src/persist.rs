//! Result-set persistence (Section 2.1): metadata probe, persistent table
//! creation, server-side materialization, and reopen — with per-step
//! timings (the measurements behind Figure 6 and §3.5).

use std::time::{Duration, Instant};

use odbcsim::{OdbcConnection, OdbcStatement};
use sqlengine::types::DataType;
use sqlengine::{Error, Result};

use crate::intercept::{materialize_sql, metadata_probe_sql, reopen_sql};

/// Per-step elapsed times for one persisted result set.
#[derive(Debug, Clone, Copy, Default)]
pub struct PersistTiming {
    /// Request interception + one-pass parse (filled by the caller).
    pub parse: Duration,
    /// `WHERE 0=1` metadata probe round trip.
    pub metadata: Duration,
    /// `CREATE TABLE` for the persistent result table.
    pub create_table: Duration,
    /// Stored-procedure-equivalent `INSERT INTO T <select>` round trip —
    /// query execution plus writing the result into the table.
    pub load: Duration,
    /// `SELECT * FROM T` reopen.
    pub reopen: Duration,
}

impl PersistTiming {
    /// Sum of all steps.
    pub fn total(&self) -> Duration {
        self.parse + self.metadata + self.create_table + self.load + self.reopen
    }
}

/// Outcome of persisting one result set.
pub struct PersistedResult {
    /// Name of the persistent result table on the server.
    pub table: String,
    /// Result metadata from the `WHERE 0=1` probe.
    pub columns: Vec<(String, DataType)>,
    /// Rows materialized into the table.
    pub loaded: u64,
    /// The reopened `SELECT * FROM <table>` statement, positioned at row 0.
    pub stmt: OdbcStatement,
    /// Per-step elapsed times.
    pub timing: PersistTiming,
}

/// Render a `CREATE TABLE` for the result table from probe metadata.
/// Column names are bracket-quoted and de-duplicated.
pub fn create_table_sql(table: &str, columns: &[(String, DataType)]) -> String {
    let mut seen = std::collections::HashSet::new();
    let cols: Vec<String> = columns
        .iter()
        .enumerate()
        .map(|(i, (name, t))| {
            let mut n = if name.is_empty() {
                format!("c{}", i + 1)
            } else {
                name.clone()
            };
            if !seen.insert(n.to_ascii_lowercase()) {
                n = format!("{n}_{}", i + 1);
                seen.insert(n.to_ascii_lowercase());
            }
            let ty = match t {
                DataType::Int => "INT",
                DataType::Float => "FLOAT",
                DataType::Str => "VARCHAR(255)",
                DataType::Date => "DATE",
            };
            format!("[{n}] {ty}")
        })
        .collect();
    format!("CREATE TABLE {table} ({})", cols.join(", "))
}

/// Execute the full Section 2.1 sequence for `select_sql`:
///
/// 1. metadata probe (`WHERE 0=1`) — *private* connection;
/// 2. `CREATE TABLE` — *private* connection (masked from the app);
/// 3. `INSERT INTO T <select>` — app connection (the app's request; once
///    the server acknowledges, the result is crash-durable);
/// 4. reopen `SELECT * FROM T` — app connection.
pub fn persist_result(
    app: &OdbcConnection,
    private: &OdbcConnection,
    table: &str,
    select_sql: &str,
    parse_time: Duration,
) -> Result<PersistedResult> {
    let mut timing = PersistTiming {
        parse: parse_time,
        ..Default::default()
    };

    // Step 1: metadata.
    faultkit::crashpoint!("persist.probe");
    let t = Instant::now();
    let probe = private.exec_direct(&metadata_probe_sql(select_sql))?;
    let columns = probe.columns().to_vec();
    timing.metadata = t.elapsed();
    if columns.is_empty() {
        return Err(Error::Semantic(
            "statement does not produce a result set".into(),
        ));
    }

    // Step 2: create the persistent holding table.
    faultkit::crashpoint!("persist.create");
    let t = Instant::now();
    private.exec_direct(&create_table_sql(table, &columns))?;
    timing.create_table = t.elapsed();

    // Step 3: materialize at the server (data moves locally, not to the
    // client). When this returns, the result survives server crashes.
    faultkit::crashpoint!("persist.materialize");
    let t = Instant::now();
    let load = app.exec_direct(&materialize_sql(table, select_sql))?;
    let loaded = load.row_count().unwrap_or(0);
    timing.load = t.elapsed();

    // Step 4: reopen for seamless delivery.
    faultkit::crashpoint!("persist.reopen");
    let t = Instant::now();
    let stmt = app.exec_direct(&reopen_sql(table))?;
    timing.reopen = t.elapsed();

    // Publish the step breakdown (the paper's Figure 6 decomposition):
    // histograms feed the bench JSON snapshots, spans the trace timeline.
    for (name, d) in [
        ("phoenix.persist.probe", timing.metadata),
        ("phoenix.persist.create", timing.create_table),
        ("phoenix.persist.materialize", timing.load),
        ("phoenix.persist.reopen", timing.reopen),
    ] {
        obskit::metrics::global().record(name, d);
        obskit::trace::emit_span(name, d, String::new());
    }

    Ok(PersistedResult {
        table: table.to_string(),
        columns,
        loaded,
        stmt,
        timing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table_sql_quoting_and_dedup() {
        let sql = create_table_sql(
            "phx_res_1_1",
            &[
                ("value".into(), DataType::Float),
                ("value".into(), DataType::Float),
                ("".into(), DataType::Int),
                ("order".into(), DataType::Str),
            ],
        );
        assert_eq!(
            sql,
            "CREATE TABLE phx_res_1_1 ([value] FLOAT, [value_2] FLOAT, [c3] INT, [order] VARCHAR(255))"
        );
        sqlengine::sql::parser::parse_one(&sql).unwrap();
    }
}
