//! Phoenix/ODBC configuration.

use std::time::{Duration, Instant};

use odbcsim::DriverConfig;

/// How Phoenix repositions a reopened result set after a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepositionMode {
    /// Re-fetch from the client, discarding rows until the remembered
    /// position (Figure 3: cost grows with position, tuples cross the
    /// network).
    Client,
    /// Advance server-side without transmitting tuples — the paper's
    /// repositioning stored procedure (Figure 4: ~10× faster for large
    /// results).
    Server,
}

/// Reconnection policy used after a suspected server failure: bounded
/// exponential backoff with deterministic jitter and an overall recovery
/// deadline budget. One policy governs every retry decision Phoenix
/// makes — reconnect pacing in phase-1 recovery *and* the
/// statement-level masking retries around it.
///
/// When either bound (attempts or deadline) is exhausted, `recover()`
/// degrades gracefully: it returns the retryable
/// `Error::RecoveryExhausted` with the virtual-session state intact, so
/// a later application call resumes recovery instead of failing
/// permanently.
#[derive(Debug, Clone, Copy)]
pub struct ReconnectPolicy {
    /// Maximum reconnect attempts per recovery before Phoenix reports
    /// `RecoveryExhausted` to the application.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt (the paper
    /// "periodically attempts to reconnect", made adaptive).
    pub initial_backoff: Duration,
    /// Ceiling on the per-attempt backoff.
    pub max_backoff: Duration,
    /// Overall wall-clock budget for one recovery. Counted from the
    /// moment recovery starts; once spent, `RecoveryExhausted`.
    pub deadline: Duration,
    /// How many times a *statement* is transparently re-executed across
    /// successful recoveries before the underlying error is surfaced
    /// (the masking-retry cap formerly hardcoded as `3`).
    pub masking_retries: u32,
    /// Seed for the deterministic jitter mixed into each backoff delay,
    /// decorrelating concurrent reconnect storms while keeping every
    /// run reproducible.
    pub jitter_seed: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            max_attempts: 50,
            initial_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_millis(800),
            deadline: Duration::from_secs(30),
            masking_retries: 10,
            jitter_seed: 0x5eed,
        }
    }
}

impl ReconnectPolicy {
    /// Fixed-interval policy (no growth, generous deadline): the shape
    /// the pre-backoff tests were written against. `interval` is used
    /// for every attempt.
    pub fn fixed(max_attempts: u32, interval: Duration) -> ReconnectPolicy {
        ReconnectPolicy {
            max_attempts,
            initial_backoff: interval,
            max_backoff: interval,
            deadline: Duration::from_secs(24 * 60 * 60),
            ..ReconnectPolicy::default()
        }
    }

    /// The pure backoff schedule: delay before retry `attempt` (1-based),
    /// exponentially grown from `initial_backoff`, capped at
    /// `max_backoff`, plus deterministic jitter in `[0, delay/4]` drawn
    /// from `jitter_seed` — same policy and attempt, same delay.
    ///
    /// Stream 0 of [`backoff_delay_stream`](Self::backoff_delay_stream).
    pub fn backoff_delay(&self, attempt: u32) -> Duration {
        self.backoff_delay_stream(0, attempt)
    }

    /// Per-stream backoff schedule: like
    /// [`backoff_delay`](Self::backoff_delay), but the jitter is drawn
    /// from a per-`stream` seed (one stream per virtual session, keyed by
    /// its connection id). One shared `jitter_seed` would give every
    /// session the *same* schedule — a reconnect storm would stay
    /// synchronized on every retry; decorrelated streams spread it out.
    pub fn backoff_delay_stream(&self, stream: u64, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(16);
        let base = self
            .initial_backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff);
        let quarter = (base / 4).as_nanos() as u64;
        if quarter == 0 {
            return base;
        }
        let jitter = Duration::from_nanos(
            splitmix64(mix_stream(self.jitter_seed, stream) ^ attempt as u64) % (quarter + 1),
        );
        base + jitter
    }
}

/// Decorrelate one policy seed into per-session jitter streams — the
/// same index-mixing scheme `faultkit::net` uses for per-pipe fault
/// schedules: a golden-ratio multiply of the stream index folded into
/// the seed, then the splitmix64 finalizer. Stream 0 reproduces the
/// historical single-stream schedule's structure but every stream is
/// statistically independent of every other.
fn mix_stream(seed: u64, stream: u64) -> u64 {
    if stream == 0 {
        return seed;
    }
    splitmix64(seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// SplitMix64 finalizer — the jitter source. Pure arithmetic, so the
/// schedule needs no RNG state and replays bit-for-bit.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The single sleeping point of Phoenix's recovery path: tracks the
/// attempt count and the deadline budget of one recovery and performs
/// the policy's backoff waits. `wait` returns `false` when the budget
/// (either bound) is exhausted — the caller's cue to degrade to
/// `RecoveryExhausted`.
pub struct Backoff {
    policy: ReconnectPolicy,
    stream: u64,
    attempt: u32,
    deadline: Option<Instant>,
}

impl Backoff {
    /// Start a recovery budget: the deadline clock begins now. Jitter
    /// stream 0 — single-session callers and tests.
    pub fn new(policy: &ReconnectPolicy) -> Backoff {
        Backoff::for_stream(policy, 0)
    }

    /// Start a recovery budget on a per-session jitter stream (see
    /// [`ReconnectPolicy::backoff_delay_stream`]). Phoenix passes the
    /// virtual session's connection id, so concurrent recoveries draw
    /// decorrelated schedules from one configured seed.
    pub fn for_stream(policy: &ReconnectPolicy, stream: u64) -> Backoff {
        Backoff {
            policy: *policy,
            stream,
            attempt: 0,
            deadline: Instant::now().checked_add(policy.deadline),
        }
    }

    /// Retries waited for so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Sleep before the next retry. Returns `false` — without sleeping —
    /// once `max_attempts` retries have been consumed or the deadline
    /// budget has run out; waits never overshoot the deadline.
    pub fn wait(&mut self) -> bool {
        if self.attempt >= self.policy.max_attempts {
            return false;
        }
        self.attempt += 1;
        let delay = self.policy.backoff_delay_stream(self.stream, self.attempt);
        self.sleep_within_budget(delay)
    }

    /// Sleep before the next retry after the server shed us with a
    /// `retry_after` hint: honor the hint plus this stream's seeded
    /// jitter (in `[0, hint/4]`, so a shed herd does not re-arrive in
    /// lockstep), all inside the one recovery budget — the hint is
    /// clipped to the remaining deadline and never extends it. A zero
    /// hint falls back to the ordinary backoff schedule.
    pub fn wait_shed(&mut self, hint: Duration) -> bool {
        if hint.is_zero() {
            return self.wait();
        }
        if self.attempt >= self.policy.max_attempts {
            return false;
        }
        self.attempt += 1;
        let quarter = (hint / 4).as_nanos() as u64;
        let jitter = if quarter == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(
                splitmix64(mix_stream(self.policy.jitter_seed, self.stream) ^ self.attempt as u64)
                    % (quarter + 1),
            )
        };
        self.sleep_within_budget(hint + jitter)
    }

    /// One bounded sleep: clipped to the remaining deadline, `false` when
    /// the budget is already (or just became) spent.
    fn sleep_within_budget(&mut self, mut delay: Duration) -> bool {
        if let Some(d) = self.deadline {
            let now = Instant::now();
            if now >= d {
                return false;
            }
            delay = delay.min(d - now);
        }
        // lint:allow(sleep): the Backoff helper IS the policy's one sanctioned sleep site
        std::thread::sleep(delay);
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return false;
            }
        }
        true
    }
}

/// Client-side result caching (the Section 4 OLTP optimization).
#[derive(Debug, Clone, Copy)]
pub enum CacheMode {
    /// Always persist result sets as server tables (Section 2 behaviour).
    Disabled,
    /// Cache results up to `capacity_bytes` entirely on the client; only
    /// when a result overflows the cache fall back to server-side
    /// persistence. The capacity is the paper's "runtime parameter, set
    /// when a database connection is first created".
    Enabled {
        /// Maximum bytes of encoded rows the cache may hold per result.
        capacity_bytes: usize,
    },
}

impl CacheMode {
    /// Shorthand for [`CacheMode::Enabled`] with the given capacity.
    pub fn enabled(capacity_bytes: usize) -> CacheMode {
        CacheMode::Enabled { capacity_bytes }
    }

    /// Whether client caching is on.
    pub fn is_enabled(&self) -> bool {
        matches!(self, CacheMode::Enabled { .. })
    }
}

/// Full Phoenix configuration.
#[derive(Debug, Clone)]
pub struct PhoenixConfig {
    /// Settings for the underlying (wrapped) native driver connections.
    pub driver: DriverConfig,
    /// Client-side result caching (Section 4 optimization).
    pub cache: CacheMode,
    /// Post-crash result repositioning strategy (Figures 3 vs 4).
    pub reposition: RepositionMode,
    /// Reconnect cadence and give-up bound.
    pub reconnect: ReconnectPolicy,
}

impl Default for PhoenixConfig {
    fn default() -> Self {
        PhoenixConfig {
            driver: DriverConfig::default(),
            cache: CacheMode::Disabled,
            reposition: RepositionMode::Server,
            reconnect: ReconnectPolicy::default(),
        }
    }
}

impl PhoenixConfig {
    /// Section 4 OLTP configuration: client caching on (64 KiB).
    pub fn with_client_caching() -> Self {
        PhoenixConfig {
            cache: CacheMode::enabled(64 * 1024),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_grows_and_caps() {
        let p = ReconnectPolicy::default();
        for attempt in 1..=24 {
            let d = p.backoff_delay(attempt);
            assert_eq!(d, p.backoff_delay(attempt), "jitter must be deterministic");
            assert!(d <= p.max_backoff + p.max_backoff / 4);
            assert!(d >= p.initial_backoff);
        }
        assert!(p.backoff_delay(1) < p.backoff_delay(6));
    }

    #[test]
    fn per_session_jitter_streams_diverge() {
        // Two sessions sharing one configured seed must not share a
        // retry schedule, or a reconnect storm stays synchronized on
        // every attempt. Pin both divergence and per-stream determinism.
        let p = ReconnectPolicy::default();
        let schedule = |stream: u64| -> Vec<Duration> {
            (1..=10)
                .map(|a| p.backoff_delay_stream(stream, a))
                .collect()
        };
        assert_eq!(schedule(1), schedule(1), "streams must be deterministic");
        assert_ne!(
            schedule(1),
            schedule(2),
            "two sessions' retry schedules must diverge"
        );
        let differing = (1..=10u32)
            .filter(|&a| p.backoff_delay_stream(1, a) != p.backoff_delay_stream(2, a))
            .count();
        assert!(
            differing >= 5,
            "streams barely decorrelated: {differing}/10 attempts differ"
        );
        // Stream 0 is the historical shared-stream schedule.
        assert_eq!(p.backoff_delay_stream(0, 3), p.backoff_delay(3));
    }

    #[test]
    fn wait_shed_clips_hint_to_remaining_budget() {
        // A shed server may hint a retry_after far beyond the client's
        // recovery deadline; honoring it verbatim would burn the whole
        // request budget asleep. The wait must clip to what remains.
        let p = ReconnectPolicy {
            max_attempts: u32::MAX,
            deadline: Duration::from_millis(40),
            ..ReconnectPolicy::default()
        };
        let mut b = Backoff::new(&p);
        let t0 = Instant::now();
        while b.wait_shed(Duration::from_secs(10)) {}
        let spent = t0.elapsed();
        assert!(
            spent < Duration::from_secs(2),
            "hint was honored past the deadline budget: {spent:?}"
        );
        assert!(
            spent >= Duration::from_millis(30),
            "gave up early: {spent:?}"
        );
    }

    #[test]
    fn wait_shed_adds_seeded_jitter_to_the_hint() {
        let p = ReconnectPolicy {
            max_attempts: 4,
            deadline: Duration::from_secs(5),
            ..ReconnectPolicy::default()
        };
        let mut a = Backoff::for_stream(&p, 1);
        let mut b = Backoff::for_stream(&p, 2);
        let hint = Duration::from_millis(5);
        let t0 = Instant::now();
        assert!(a.wait_shed(hint));
        let ta = t0.elapsed();
        let t1 = Instant::now();
        assert!(b.wait_shed(hint));
        let tb = t1.elapsed();
        // Both honored at least the hint; jitter keeps them within 25%.
        assert!(ta >= hint && tb >= hint);
        assert!(ta <= Duration::from_millis(60) && tb <= Duration::from_millis(60));
    }

    #[test]
    fn wait_stops_after_max_attempts() {
        let p = ReconnectPolicy {
            max_attempts: 3,
            initial_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_micros(50),
            ..ReconnectPolicy::default()
        };
        let mut b = Backoff::new(&p);
        assert!(b.wait());
        assert!(b.wait());
        assert!(b.wait());
        assert!(!b.wait());
        assert_eq!(b.attempts(), 3);
    }

    #[test]
    fn wait_stops_at_the_deadline_budget() {
        let p = ReconnectPolicy {
            max_attempts: u32::MAX,
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(5),
            deadline: Duration::from_millis(40),
            ..ReconnectPolicy::default()
        };
        let mut b = Backoff::new(&p);
        let t0 = Instant::now();
        while b.wait() {}
        let spent = t0.elapsed();
        assert!(
            spent >= Duration::from_millis(30),
            "gave up early: {spent:?}"
        );
        assert!(
            spent < Duration::from_secs(5),
            "overshot the budget: {spent:?}"
        );
    }
}
