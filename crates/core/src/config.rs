//! Phoenix/ODBC configuration.

use std::time::Duration;

use odbcsim::DriverConfig;

/// How Phoenix repositions a reopened result set after a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepositionMode {
    /// Re-fetch from the client, discarding rows until the remembered
    /// position (Figure 3: cost grows with position, tuples cross the
    /// network).
    Client,
    /// Advance server-side without transmitting tuples — the paper's
    /// repositioning stored procedure (Figure 4: ~10× faster for large
    /// results).
    Server,
}

/// Reconnection policy used after a suspected server failure.
#[derive(Debug, Clone, Copy)]
pub struct ReconnectPolicy {
    /// Maximum reconnect attempts before Phoenix gives up and reveals the
    /// failure to the application.
    pub max_attempts: u32,
    /// Delay between attempts (the paper "periodically attempts to
    /// reconnect").
    pub retry_interval: Duration,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            max_attempts: 50,
            retry_interval: Duration::from_millis(100),
        }
    }
}

/// Client-side result caching (the Section 4 OLTP optimization).
#[derive(Debug, Clone, Copy)]
pub enum CacheMode {
    /// Always persist result sets as server tables (Section 2 behaviour).
    Disabled,
    /// Cache results up to `capacity_bytes` entirely on the client; only
    /// when a result overflows the cache fall back to server-side
    /// persistence. The capacity is the paper's "runtime parameter, set
    /// when a database connection is first created".
    Enabled {
        /// Maximum bytes of encoded rows the cache may hold per result.
        capacity_bytes: usize,
    },
}

impl CacheMode {
    /// Shorthand for [`CacheMode::Enabled`] with the given capacity.
    pub fn enabled(capacity_bytes: usize) -> CacheMode {
        CacheMode::Enabled { capacity_bytes }
    }

    /// Whether client caching is on.
    pub fn is_enabled(&self) -> bool {
        matches!(self, CacheMode::Enabled { .. })
    }
}

/// Full Phoenix configuration.
#[derive(Debug, Clone)]
pub struct PhoenixConfig {
    /// Settings for the underlying (wrapped) native driver connections.
    pub driver: DriverConfig,
    /// Client-side result caching (Section 4 optimization).
    pub cache: CacheMode,
    /// Post-crash result repositioning strategy (Figures 3 vs 4).
    pub reposition: RepositionMode,
    /// Reconnect cadence and give-up bound.
    pub reconnect: ReconnectPolicy,
}

impl Default for PhoenixConfig {
    fn default() -> Self {
        PhoenixConfig {
            driver: DriverConfig::default(),
            cache: CacheMode::Disabled,
            reposition: RepositionMode::Server,
            reconnect: ReconnectPolicy::default(),
        }
    }
}

impl PhoenixConfig {
    /// Section 4 OLTP configuration: client caching on (64 KiB).
    pub fn with_client_caching() -> Self {
        PhoenixConfig {
            cache: CacheMode::enabled(64 * 1024),
            ..Default::default()
        }
    }
}
