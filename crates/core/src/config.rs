//! Phoenix/ODBC configuration.

use std::time::{Duration, Instant};

use odbcsim::DriverConfig;

/// How Phoenix repositions a reopened result set after a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepositionMode {
    /// Re-fetch from the client, discarding rows until the remembered
    /// position (Figure 3: cost grows with position, tuples cross the
    /// network).
    Client,
    /// Advance server-side without transmitting tuples — the paper's
    /// repositioning stored procedure (Figure 4: ~10× faster for large
    /// results).
    Server,
}

/// Reconnection policy used after a suspected server failure: bounded
/// exponential backoff with deterministic jitter and an overall recovery
/// deadline budget. One policy governs every retry decision Phoenix
/// makes — reconnect pacing in phase-1 recovery *and* the
/// statement-level masking retries around it.
///
/// When either bound (attempts or deadline) is exhausted, `recover()`
/// degrades gracefully: it returns the retryable
/// `Error::RecoveryExhausted` with the virtual-session state intact, so
/// a later application call resumes recovery instead of failing
/// permanently.
#[derive(Debug, Clone, Copy)]
pub struct ReconnectPolicy {
    /// Maximum reconnect attempts per recovery before Phoenix reports
    /// `RecoveryExhausted` to the application.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt (the paper
    /// "periodically attempts to reconnect", made adaptive).
    pub initial_backoff: Duration,
    /// Ceiling on the per-attempt backoff.
    pub max_backoff: Duration,
    /// Overall wall-clock budget for one recovery. Counted from the
    /// moment recovery starts; once spent, `RecoveryExhausted`.
    pub deadline: Duration,
    /// How many times a *statement* is transparently re-executed across
    /// successful recoveries before the underlying error is surfaced
    /// (the masking-retry cap formerly hardcoded as `3`).
    pub masking_retries: u32,
    /// Seed for the deterministic jitter mixed into each backoff delay,
    /// decorrelating concurrent reconnect storms while keeping every
    /// run reproducible.
    pub jitter_seed: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            max_attempts: 50,
            initial_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_millis(800),
            deadline: Duration::from_secs(30),
            masking_retries: 10,
            jitter_seed: 0x5eed,
        }
    }
}

impl ReconnectPolicy {
    /// Fixed-interval policy (no growth, generous deadline): the shape
    /// the pre-backoff tests were written against. `interval` is used
    /// for every attempt.
    pub fn fixed(max_attempts: u32, interval: Duration) -> ReconnectPolicy {
        ReconnectPolicy {
            max_attempts,
            initial_backoff: interval,
            max_backoff: interval,
            deadline: Duration::from_secs(24 * 60 * 60),
            ..ReconnectPolicy::default()
        }
    }

    /// The pure backoff schedule: delay before retry `attempt` (1-based),
    /// exponentially grown from `initial_backoff`, capped at
    /// `max_backoff`, plus deterministic jitter in `[0, delay/4]` drawn
    /// from `jitter_seed` — same policy and attempt, same delay.
    pub fn backoff_delay(&self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(16);
        let base = self
            .initial_backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff);
        let quarter = (base / 4).as_nanos() as u64;
        if quarter == 0 {
            return base;
        }
        let jitter =
            Duration::from_nanos(splitmix64(self.jitter_seed ^ attempt as u64) % (quarter + 1));
        base + jitter
    }
}

/// SplitMix64 finalizer — the jitter source. Pure arithmetic, so the
/// schedule needs no RNG state and replays bit-for-bit.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The single sleeping point of Phoenix's recovery path: tracks the
/// attempt count and the deadline budget of one recovery and performs
/// the policy's backoff waits. `wait` returns `false` when the budget
/// (either bound) is exhausted — the caller's cue to degrade to
/// `RecoveryExhausted`.
pub struct Backoff {
    policy: ReconnectPolicy,
    attempt: u32,
    deadline: Option<Instant>,
}

impl Backoff {
    /// Start a recovery budget: the deadline clock begins now.
    pub fn new(policy: &ReconnectPolicy) -> Backoff {
        Backoff {
            policy: *policy,
            attempt: 0,
            deadline: Instant::now().checked_add(policy.deadline),
        }
    }

    /// Retries waited for so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Sleep before the next retry. Returns `false` — without sleeping —
    /// once `max_attempts` retries have been consumed or the deadline
    /// budget has run out; waits never overshoot the deadline.
    pub fn wait(&mut self) -> bool {
        if self.attempt >= self.policy.max_attempts {
            return false;
        }
        self.attempt += 1;
        let mut delay = self.policy.backoff_delay(self.attempt);
        if let Some(d) = self.deadline {
            let now = Instant::now();
            if now >= d {
                return false;
            }
            delay = delay.min(d - now);
        }
        // lint:allow(sleep): the Backoff helper IS the policy's one sanctioned sleep site
        std::thread::sleep(delay);
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return false;
            }
        }
        true
    }
}

/// Client-side result caching (the Section 4 OLTP optimization).
#[derive(Debug, Clone, Copy)]
pub enum CacheMode {
    /// Always persist result sets as server tables (Section 2 behaviour).
    Disabled,
    /// Cache results up to `capacity_bytes` entirely on the client; only
    /// when a result overflows the cache fall back to server-side
    /// persistence. The capacity is the paper's "runtime parameter, set
    /// when a database connection is first created".
    Enabled {
        /// Maximum bytes of encoded rows the cache may hold per result.
        capacity_bytes: usize,
    },
}

impl CacheMode {
    /// Shorthand for [`CacheMode::Enabled`] with the given capacity.
    pub fn enabled(capacity_bytes: usize) -> CacheMode {
        CacheMode::Enabled { capacity_bytes }
    }

    /// Whether client caching is on.
    pub fn is_enabled(&self) -> bool {
        matches!(self, CacheMode::Enabled { .. })
    }
}

/// Full Phoenix configuration.
#[derive(Debug, Clone)]
pub struct PhoenixConfig {
    /// Settings for the underlying (wrapped) native driver connections.
    pub driver: DriverConfig,
    /// Client-side result caching (Section 4 optimization).
    pub cache: CacheMode,
    /// Post-crash result repositioning strategy (Figures 3 vs 4).
    pub reposition: RepositionMode,
    /// Reconnect cadence and give-up bound.
    pub reconnect: ReconnectPolicy,
}

impl Default for PhoenixConfig {
    fn default() -> Self {
        PhoenixConfig {
            driver: DriverConfig::default(),
            cache: CacheMode::Disabled,
            reposition: RepositionMode::Server,
            reconnect: ReconnectPolicy::default(),
        }
    }
}

impl PhoenixConfig {
    /// Section 4 OLTP configuration: client caching on (64 KiB).
    pub fn with_client_caching() -> Self {
        PhoenixConfig {
            cache: CacheMode::enabled(64 * 1024),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_grows_and_caps() {
        let p = ReconnectPolicy::default();
        for attempt in 1..=24 {
            let d = p.backoff_delay(attempt);
            assert_eq!(d, p.backoff_delay(attempt), "jitter must be deterministic");
            assert!(d <= p.max_backoff + p.max_backoff / 4);
            assert!(d >= p.initial_backoff);
        }
        assert!(p.backoff_delay(1) < p.backoff_delay(6));
    }

    #[test]
    fn wait_stops_after_max_attempts() {
        let p = ReconnectPolicy {
            max_attempts: 3,
            initial_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_micros(50),
            ..ReconnectPolicy::default()
        };
        let mut b = Backoff::new(&p);
        assert!(b.wait());
        assert!(b.wait());
        assert!(b.wait());
        assert!(!b.wait());
        assert_eq!(b.attempts(), 3);
    }

    #[test]
    fn wait_stops_at_the_deadline_budget() {
        let p = ReconnectPolicy {
            max_attempts: u32::MAX,
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(5),
            deadline: Duration::from_millis(40),
            ..ReconnectPolicy::default()
        };
        let mut b = Backoff::new(&p);
        let t0 = Instant::now();
        while b.wait() {}
        let spent = t0.elapsed();
        assert!(
            spent >= Duration::from_millis(30),
            "gave up early: {spent:?}"
        );
        assert!(
            spent < Duration::from_secs(5),
            "overshot the budget: {spent:?}"
        );
    }
}
