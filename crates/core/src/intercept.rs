//! Request interception: the "one-pass parse to determine request type"
//! Phoenix performs on every application request before passing it to the
//! native driver.

use sqlengine::sql::ast::Stmt;
use sqlengine::sql::parser::parse_statements;
use sqlengine::{Error, Result};

/// What Phoenix decided about an application request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestClass {
    /// A SELECT: generates a result set that must be made recoverable.
    ResultGenerating,
    /// INSERT/UPDATE/DELETE: wrapped in a transaction together with a
    /// status-table write so completion is testable after a crash.
    Modification,
    /// BEGIN TRAN.
    TxnBegin,
    /// COMMIT.
    TxnCommit,
    /// ROLLBACK.
    TxnRollback,
    /// Everything else (DDL, EXEC, SHUTDOWN, ...): passed through.
    Passthrough,
}

/// Classify a single-statement request. Multi-statement batches classify
/// as `Passthrough` unless every statement is a modification.
pub fn classify(sql: &str) -> Result<RequestClass> {
    let stmts = parse_statements(sql)?;
    match stmts.as_slice() {
        [] => Err(Error::Syntax("empty request".into())),
        [one] => Ok(classify_stmt(one)),
        many => {
            if many.iter().all(|s| {
                matches!(
                    s,
                    Stmt::Insert { .. } | Stmt::Update { .. } | Stmt::Delete { .. }
                )
            }) {
                Ok(RequestClass::Modification)
            } else {
                Ok(RequestClass::Passthrough)
            }
        }
    }
}

fn classify_stmt(s: &Stmt) -> RequestClass {
    match s {
        Stmt::Select(_) => RequestClass::ResultGenerating,
        Stmt::Insert { .. } | Stmt::Update { .. } | Stmt::Delete { .. } => {
            RequestClass::Modification
        }
        Stmt::Begin => RequestClass::TxnBegin,
        Stmt::Commit => RequestClass::TxnCommit,
        Stmt::Rollback => RequestClass::TxnRollback,
        _ => RequestClass::Passthrough,
    }
}

/// Wrap the original SELECT so only compilation happens at the server:
/// the Phoenix metadata probe. (The paper appends `WHERE 0=1` textually;
/// wrapping as a derived table is the same trick made robust to GROUP BY
/// and existing WHERE clauses.)
pub fn metadata_probe_sql(select_sql: &str) -> String {
    format!(
        "SELECT * FROM ({}) phx_md WHERE 0=1",
        select_sql.trim_end_matches(';')
    )
}

/// The materialization statement: evaluate the original SELECT at the
/// server and move its rows into the persistent result table without
/// sending them to the client (one round trip).
pub fn materialize_sql(table: &str, select_sql: &str) -> String {
    format!("INSERT INTO {} {}", table, select_sql.trim_end_matches(';'))
}

/// Reopen statement for seamless delivery from the persistent table.
pub fn reopen_sql(table: &str) -> String {
    format!("SELECT * FROM {table}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(
            classify("SELECT * FROM t").unwrap(),
            RequestClass::ResultGenerating
        );
        assert_eq!(
            classify("INSERT INTO t VALUES (1)").unwrap(),
            RequestClass::Modification
        );
        assert_eq!(
            classify("UPDATE t SET a = 1").unwrap(),
            RequestClass::Modification
        );
        assert_eq!(
            classify("DELETE FROM t WHERE a = 1").unwrap(),
            RequestClass::Modification
        );
        assert_eq!(classify("BEGIN TRAN").unwrap(), RequestClass::TxnBegin);
        assert_eq!(classify("COMMIT").unwrap(), RequestClass::TxnCommit);
        assert_eq!(classify("ROLLBACK").unwrap(), RequestClass::TxnRollback);
        assert_eq!(
            classify("CREATE TABLE t (a INT)").unwrap(),
            RequestClass::Passthrough
        );
        assert_eq!(
            classify("SHUTDOWN WITH NOWAIT").unwrap(),
            RequestClass::Passthrough
        );
        assert!(classify("NOT SQL AT ALL !!!").is_err());
    }

    #[test]
    fn multi_statement_batches() {
        assert_eq!(
            classify("INSERT INTO a VALUES (1); DELETE FROM b WHERE x=2").unwrap(),
            RequestClass::Modification
        );
        assert_eq!(
            classify("SELECT 1; SELECT 2").unwrap(),
            RequestClass::Passthrough
        );
    }

    #[test]
    fn probe_and_materialize_sql_forms() {
        let q = "SELECT a, SUM(b) AS s FROM t GROUP BY a ORDER BY s DESC;";
        let probe = metadata_probe_sql(q);
        assert!(probe.starts_with("SELECT * FROM (SELECT a,"));
        assert!(probe.ends_with("WHERE 0=1"));
        // The probe must itself parse.
        sqlengine::sql::parser::parse_one(&probe).unwrap();
        let mat = materialize_sql("phx_res_1_1", q);
        sqlengine::sql::parser::parse_one(&mat).unwrap();
        sqlengine::sql::parser::parse_one(&reopen_sql("phx_res_1_1")).unwrap();
    }
}
