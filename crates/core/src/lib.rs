//! # phoenix
//!
//! A from-scratch reproduction of **Phoenix/ODBC** — *Measuring and
//! Optimizing a System for Persistent Database Sessions* (Barga & Lomet,
//! ICDE 2001) — over a simulated SQL server substrate.
//!
//! Phoenix/ODBC provides **persistent database sessions** that survive
//! database server crashes without the application being aware of the
//! outage (beyond a pause). It wraps the native driver (here,
//! [`odbcsim`]) and:
//!
//! * intercepts every request with a one-pass parse ([`intercept`]);
//! * makes SELECT results **crash-durable** by materializing them into
//!   persistent server tables (`WHERE 0=1` metadata probe → `CREATE
//!   TABLE` → server-local `INSERT ... <select>` → reopen; [`persist`]);
//! * wraps modification statements in a transaction with a **status
//!   table** write, giving exactly-once semantics across crashes;
//! * maps the application onto a **virtual session** backed by an
//!   application connection plus a private Phoenix connection
//!   ([`session`]);
//! * detects failures via driver errors and timeouts, then automatically
//!   reconnects, re-binds the virtual session, reopens the persistent
//!   result and **repositions** to the last delivered tuple — either by
//!   re-fetching from the client or with a server-side advance
//!   ([`config::RepositionMode`]);
//! * optionally serves OLTP-style small results from a **client-side
//!   result cache**, eliminating server-side persistence entirely
//!   (Section 4's optimization; [`config::CacheMode`]).
//!
//! ## Quick start
//!
//! ```
//! use phoenix::{PhoenixConfig, PhoenixConnection};
//! use wire::{DbServer, ServerConfig};
//!
//! let server = DbServer::start(ServerConfig::instant_net()).unwrap();
//! let px = PhoenixConnection::connect(&server, PhoenixConfig::default()).unwrap();
//! px.exec("CREATE TABLE accounts (id INT PRIMARY KEY, balance FLOAT)").unwrap();
//! px.exec("INSERT INTO accounts VALUES (1, 100.0), (2, 250.0)").unwrap();
//!
//! px.exec("SELECT id, balance FROM accounts ORDER BY id").unwrap();
//! let first = px.fetch().unwrap();
//! assert!(first.is_some());
//!
//! // The server can crash here and, once it restarts, the next fetch
//! // still returns the remaining rows — the application never notices.
//! server.crash();
//! server.restart().unwrap();
//! let second = px.fetch().unwrap();
//! assert!(second.is_some());
//! ```

// Tests exercise happy paths; the unwrap/expect hygiene baseline is
// aimed at library code (enforced harder by `cargo xtask lint`).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod config;
pub mod intercept;
pub mod persist;
pub mod session;

pub use config::{CacheMode, PhoenixConfig, ReconnectPolicy, RepositionMode};
pub use intercept::{classify, RequestClass};
pub use persist::{PersistTiming, PersistedResult};
pub use session::{
    ExecKind, PhoenixConnection, PhoenixStats, RecoveryPhases, RecoveryTiming, STATUS_TABLE,
};
