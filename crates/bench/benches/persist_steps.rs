//! Criterion microbenchmarks for the §3.5 step costs: request
//! interception (one-pass parse), the `WHERE 0=1` metadata probe, result
//! table creation, and the per-tuple fetch cost under native ODBC vs
//! Phoenix (volatile stream vs persistent table).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use odbcsim::{DriverConfig, OdbcConnection};
use phoenix::{intercept, PhoenixConfig, PhoenixConnection};
use wire::{DbServer, ServerConfig};
use workloads::tpch::{self, queries, TpchScale};
use workloads::EngineClient;

fn loaded_server() -> DbServer {
    let server = DbServer::start(ServerConfig::instant_net()).unwrap();
    {
        let client = EngineClient::new(server.engine().unwrap()).unwrap();
        tpch::load(&client, TpchScale::new(0.002), 42).unwrap();
    }
    server.engine().unwrap().checkpoint().unwrap();
    server
}

fn bench_intercept(c: &mut Criterion) {
    let q11 = queries::q11();
    c.bench_function("intercept/one_pass_parse_q11", |b| {
        b.iter(|| intercept::classify(std::hint::black_box(&q11)).unwrap())
    });
    c.bench_function("intercept/metadata_probe_sql", |b| {
        b.iter(|| intercept::metadata_probe_sql(std::hint::black_box(&q11)))
    });
}

fn bench_server_steps(c: &mut Criterion) {
    let server = loaded_server();
    let conn = OdbcConnection::connect(&server, DriverConfig::default()).unwrap();
    let probe = intercept::metadata_probe_sql(&queries::q11());
    c.bench_function("persist/metadata_probe_roundtrip", |b| {
        b.iter(|| {
            let st = conn.exec_direct(&probe).unwrap();
            assert_eq!(st.columns().len(), 2);
        })
    });
    let mut i = 0u64;
    c.bench_function("persist/create_and_drop_result_table", |b| {
        b.iter(|| {
            i += 1;
            let t = format!("bench_res_{i}");
            conn.exec_direct(&format!("CREATE TABLE {t} ([k] INT, [v] FLOAT)"))
                .unwrap();
            conn.exec_direct(&format!("DROP TABLE {t}")).unwrap();
        })
    });
}

fn bench_fetch_per_tuple(c: &mut Criterion) {
    let server = loaded_server();
    let native = OdbcConnection::connect(&server, DriverConfig::default()).unwrap();
    let px = PhoenixConnection::connect(
        &server,
        PhoenixConfig {
            driver: DriverConfig::default(),
            ..Default::default()
        },
    )
    .unwrap();
    let q = queries::q11_with_fraction(0.0001);

    let mut group = c.benchmark_group("fetch_per_tuple");
    group.throughput(criterion::Throughput::Elements(1));
    group.bench_function("native_odbc", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            let mut done = 0u64;
            while done < iters {
                let mut st = native.exec_direct(&q).unwrap();
                let t = std::time::Instant::now();
                while st.fetch().unwrap().is_some() {
                    done += 1;
                    if done >= iters {
                        break;
                    }
                }
                total += t.elapsed();
            }
            total
        })
    });
    group.bench_function("phoenix_persistent_table", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            let mut done = 0u64;
            while done < iters {
                px.exec(&q).unwrap();
                let t = std::time::Instant::now();
                while px.fetch().unwrap().is_some() {
                    done += 1;
                    if done >= iters {
                        break;
                    }
                }
                total += t.elapsed();
                px.close_result();
            }
            total
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_intercept, bench_server_steps, bench_fetch_per_tuple
}
criterion_main!(benches);
