//! Criterion microbenchmarks for the engine substrate: row codec, page
//! operations, lock manager, point lookups and single-row DML.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use sqlengine::engine::{Durable, Engine};
use sqlengine::schema::{decode_row, encode_row};
use sqlengine::storage::disk::DiskModel;
use sqlengine::types::Value;
use sqlengine::wal::recovery::RecoveryConfig;

fn bench_row_codec(c: &mut Criterion) {
    let row = vec![
        Value::Int(123456),
        Value::Str("some medium length string".into()),
        Value::Float(3.25),
        Value::Date(8035),
        Value::Null,
    ];
    let mut buf = Vec::new();
    encode_row(&row, &mut buf);
    c.bench_function("codec/encode_row", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(64);
            encode_row(std::hint::black_box(&row), &mut out);
            out
        })
    });
    c.bench_function("codec/decode_row", |b| {
        b.iter(|| decode_row(std::hint::black_box(&buf)).unwrap())
    });
}

fn bench_page_ops(c: &mut Criterion) {
    use sqlengine::storage::page::Page;
    c.bench_function("page/insert_until_full", |b| {
        b.iter(|| {
            let mut buf = Box::new([0u8; 8192]);
            let mut p = Page::init(&mut buf, 1);
            let tuple = [7u8; 64];
            let mut n = 0;
            while p.insert(&tuple).is_some() {
                n += 1;
            }
            n
        })
    });
}

fn bench_locks(c: &mut Criterion) {
    use sqlengine::txn::locks::{LockManager, LockMode, LockTarget};
    let m = LockManager::default();
    let mut key = 0u64;
    c.bench_function("locks/row_lock_acquire_release", |b| {
        b.iter(|| {
            key += 1;
            m.lock(1, LockTarget::row(1, key), LockMode::Exclusive)
                .unwrap();
            m.release_all(1, [LockTarget::row(1, key)]);
        })
    });
}

fn engine_with_rows(n: i64) -> (Durable, Engine, sqlengine::session::SessionId) {
    let durable = Durable::new(DiskModel::default());
    let engine = Engine::recover(&durable, RecoveryConfig::default()).unwrap();
    let sid = engine.create_session().unwrap();
    engine
        .execute(sid, "CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(32))")
        .unwrap();
    for chunk in (0..n).collect::<Vec<_>>().chunks(400) {
        let vals: Vec<String> = chunk
            .iter()
            .map(|k| format!("({k}, 'value-{k}')"))
            .collect();
        engine
            .execute(sid, &format!("INSERT INTO t VALUES {}", vals.join(",")))
            .unwrap();
    }
    (durable, engine, sid)
}

fn bench_engine_sql(c: &mut Criterion) {
    let (_d, engine, sid) = engine_with_rows(10_000);
    let mut k = 0i64;
    c.bench_function("engine/pk_point_select", |b| {
        b.iter(|| {
            k = (k + 7919) % 10_000;
            let (_, rows) = engine
                .execute_collect(sid, &format!("SELECT v FROM t WHERE k = {k}"))
                .unwrap();
            assert_eq!(rows.len(), 1);
        })
    });
    c.bench_function("engine/pk_point_update", |b| {
        b.iter(|| {
            k = (k + 104729) % 10_000;
            engine
                .execute(sid, &format!("UPDATE t SET v = 'x' WHERE k = {k}"))
                .unwrap();
        })
    });
    c.bench_function("engine/full_scan_count_10k", |b| {
        b.iter(|| {
            let (_, rows) = engine
                .execute_collect(sid, "SELECT COUNT(*) FROM t")
                .unwrap();
            assert_eq!(rows[0][0], Value::Int(10_000));
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_row_codec, bench_page_ops, bench_locks, bench_engine_sql
}
criterion_main!(benches);
