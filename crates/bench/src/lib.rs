//! Shared infrastructure for the experiment harnesses that regenerate
//! every table and figure of the paper (see DESIGN.md §4 and the
//! `src/bin/*` binaries).

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use sqlengine::storage::disk::DiskModel;
use wire::{DbServer, GroupCommit, NetConfig, ServerConfig};

pub mod measure;

/// Standard network model for experiments: ~100 Mbit LAN with a 64 KiB
/// server output buffer (the paper's observed ~75 KB of buffering is this
/// plus the 16 KiB driver buffer).
pub fn paper_net() -> NetConfig {
    NetConfig {
        latency: Duration::from_micros(100),
        bytes_per_sec: Some(12_500_000),
        buffer_bytes: 64 * 1024,
        per_msg_cost: Duration::from_micros(20),
    }
}

/// Server preset for the TPC-H experiments (CPU-bound complex queries:
/// no artificial disk latency, big buffer pool).
pub fn tpch_server() -> ServerConfig {
    ServerConfig {
        disk_model: DiskModel::default(),
        pool_capacity: 1 << 16,
        net_c2s: paper_net(),
        net_s2c: paper_net(),
        row_batch: 16,
        faults: None,
        scrub_on_restart: false,
        // Single-session sweeps: a commit window would only add latency.
        group_commit: GroupCommit::default(),
        admission: wire::AdmissionConfig::default(),
    }
}

/// Server preset for the TPC-C experiment: per-I/O latency plus a small
/// buffer pool make the server disk-limited, as in the paper (DISK UTIL
/// 100%, CPU ~32%).
pub fn tpcc_server(pool_pages: usize, io_latency: Duration) -> ServerConfig {
    ServerConfig {
        disk_model: DiskModel::uniform(io_latency),
        pool_capacity: pool_pages,
        net_c2s: paper_net(),
        net_s2c: paper_net(),
        row_batch: 16,
        faults: None,
        scrub_on_restart: false,
        // The 4-user mix commits concurrently; one batch-leader fsync
        // covers the window (`wal.flush.batch_size` in the JSON twin).
        group_commit: GroupCommit::on(8, Duration::from_millis(2)),
        admission: wire::AdmissionConfig::default(),
    }
}

/// Start a server, run `load` against an in-process engine client (fast
/// path), checkpoint, and return the server.
pub fn start_loaded(
    config: ServerConfig,
    load: impl FnOnce(&workloads::EngineClient) -> sqlengine::Result<()>,
) -> DbServer {
    let server = DbServer::start(config).expect("server start");
    {
        let engine = server.engine().expect("engine");
        let client = workloads::EngineClient::new(engine).expect("session");
        load(&client).expect("load");
    }
    server
        .engine()
        .expect("engine")
        .checkpoint()
        .expect("checkpoint");
    server
}

/// Environment-variable override helpers (every harness parameter can be
/// tuned without recompiling).
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A simple fixed-width text table that mirrors the paper's layout.
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new(title: impl Into<String>, header: &[&str]) -> TextTable {
        TextTable {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut parts = Vec::with_capacity(ncols);
            for (i, c) in cells.iter().enumerate().take(ncols) {
                parts.push(format!("{c:>width$}", width = widths[i]));
            }
            let _ = writeln!(out, "| {} |", parts.join(" | "));
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 3 * ncols + 1;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for r in &self.rows {
            line(&mut out, r);
        }
        out
    }

    /// Print to stdout and save under `bench_results/<name>.txt`.
    pub fn emit(&self, name: &str) {
        let rendered = self.render();
        println!("{rendered}");
        let dir = results_dir();
        let _ = fs::create_dir_all(&dir);
        let _ = fs::write(dir.join(format!("{name}.txt")), rendered);
    }
}

/// Write `bench_results/<name>.json` — the machine-readable twin of a
/// harness's text table. The payload is an obskit snapshot: run metadata
/// plus every counter/gauge/histogram accumulated in the process-global
/// registry during the run (wire round trips, recovery-phase durations,
/// persist-step costs, WAL timings, ...), rendered deterministically.
///
/// The round-trip and recovery-phase histograms are pre-registered so
/// their keys are always present, even for a mode that never exercised
/// them (e.g. a native-only run records no recovery).
pub fn emit_json(name: &str, meta: &[(&str, String)]) {
    let reg = obskit::metrics::global();
    reg.histogram("odbcsim.roundtrip.exec");
    reg.histogram("wal.flush.batch_size");
    for phase in phoenix::RecoveryPhases::NAMES {
        reg.histogram(phase);
    }
    let mut m = std::collections::BTreeMap::new();
    m.insert("bench".to_string(), name.to_string());
    for (k, v) in meta {
        m.insert((*k).to_string(), v.clone());
    }
    let json = obskit::export::snapshot_json(&m, &reg.snapshot(), &obskit::trace::snapshot());
    let dir = results_dir();
    // A missing twin must never pass silently: `cargo xtask bench-gate`
    // treats the JSON as the bench's output of record, so failing to
    // write it is a failed run, not a skipped nicety.
    fs::create_dir_all(&dir).unwrap_or_else(|e| {
        panic!(
            "emit_json({name}): cannot create results dir {}: {e}",
            dir.display()
        )
    });
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, json)
        .unwrap_or_else(|e| panic!("emit_json({name}): cannot write {}: {e}", path.display()));
}

/// Open the streaming JSON-lines series twin for a harness (see
/// [`obskit::stream`]): `bench_results/<name>.series.jsonl`, tagged with
/// the same metadata as the snapshot twin. Panics on I/O error for the
/// same reason [`emit_json`] does.
pub fn series_recorder(name: &str, meta: &[(&str, String)]) -> obskit::stream::Recorder {
    let mut m = std::collections::BTreeMap::new();
    m.insert("source".to_string(), name.to_string());
    for (k, v) in meta {
        m.insert((*k).to_string(), v.clone());
    }
    let path = results_dir().join(format!("{name}.series.jsonl"));
    obskit::stream::Recorder::create(&path, &m).unwrap_or_else(|e| {
        panic!(
            "series_recorder({name}): cannot create {}: {e}",
            path.display()
        )
    })
}

/// Where harnesses drop their outputs.
pub fn results_dir() -> PathBuf {
    std::env::var("PHX_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("bench_results"))
}

pub fn fmt_secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

pub fn fmt_ratio(a: Duration, b: Duration) -> String {
    if b.as_nanos() == 0 {
        "-".into()
    } else {
        format!("{:.3}", a.as_secs_f64() / b.as_secs_f64())
    }
}

// ---------------------------------------------------------------------------
// Shared recovery experiment (Figures 3 and 4)
// ---------------------------------------------------------------------------

/// One data point of the session-recovery experiment.
pub struct RecoveryPoint {
    pub result_size: u64,
    pub virtual_session: Duration,
    pub sql_state: Duration,
}

/// The §3.4 experiment: run Q11 at each fraction, fetch to within a few
/// tuples of the end, crash and restart the server, and measure the two
/// recovery phases when the outstanding fetch is serviced.
pub fn recovery_experiment(
    reposition: phoenix::RepositionMode,
    sf: f64,
    fractions: &[f64],
    seed: u64,
) -> (Vec<RecoveryPoint>, Duration) {
    use workloads::SqlClient as _;
    let scale = workloads::tpch::TpchScale::new(sf);
    // Row batches of 1 so the tail of the result is still server-side when
    // the crash happens (larger batches can leave the last few tuples in
    // the client driver buffer, where they survive trivially).
    let mut config = tpch_server();
    config.row_batch = 1;
    let server = start_loaded(config, |c| {
        workloads::tpch::load(c, scale, seed).map(|_| ())
    });

    // Reference: time to recompute Q11 (largest sweep size) and deliver
    // its full result over the network — the cost session recovery avoids
    // (the paper's "fraction of the time required to recompute a single
    // query" claim).
    let recompute = {
        let sql = workloads::tpch::queries::q11_with_fraction(
            fractions.iter().copied().fold(f64::MAX, f64::min),
        );
        let conn =
            odbcsim::OdbcConnection::connect(&server, odbcsim::DriverConfig::default()).unwrap();
        let t = std::time::Instant::now();
        let mut st = conn.exec_direct(&sql).unwrap();
        while st.fetch().unwrap().is_some() {}
        t.elapsed()
    };

    let mut points = Vec::new();
    for &fraction in fractions {
        let sql = workloads::tpch::queries::q11_with_fraction(fraction);
        // Learn the result size (also warms caches).
        let probe = workloads::EngineClient::new(server.engine().unwrap()).unwrap();
        let size = probe.query(&sql).unwrap().len() as u64;
        drop(probe);
        // Small results are fully inside the driver's initial prefetch and
        // would survive the crash without any recovery; the paper's sweep
        // starts at a handful of tuples but ours needs the tail to still
        // be server-side.
        if size < 8 {
            continue;
        }

        let mut cfg = phoenix::PhoenixConfig {
            reposition,
            ..Default::default()
        };
        // Tiny driver buffer so the post-crash fetch actually needs the
        // server (rather than being satisfied from client buffering).
        cfg.driver.buffer_bytes = 64;
        cfg.driver.query_timeout = Some(Duration::from_secs(60));
        let px = phoenix::PhoenixConnection::connect(&server, cfg).unwrap();
        px.exec(&sql).unwrap();
        for _ in 0..size - 3 {
            px.fetch().unwrap().unwrap();
        }
        // Crash and immediately restart: the paper measures recovery time
        // after the server is back, not server downtime.
        server.crash();
        server.restart().unwrap();
        // The outstanding fetch triggers detection + recovery.
        let row = px.fetch().unwrap();
        assert!(row.is_some(), "remaining tuples must be delivered");
        let t = px
            .last_recovery_timing()
            .expect("recovery must have happened");
        // Drain and clean up.
        while px.fetch().unwrap().is_some() {}
        px.close_result();
        points.push(RecoveryPoint {
            result_size: size,
            virtual_session: t.virtual_session,
            sql_state: t.sql_state,
        });
        px.close();
    }
    points.sort_by_key(|p| p.result_size);
    (points, recompute)
}

/// Emit a Figure 3/4-style table.
pub fn emit_recovery_table(title: &str, name: &str, points: &[RecoveryPoint], recompute: Duration) {
    let mut table = TextTable::new(
        title,
        &[
            "Result Set Size",
            "Virtual Session (s)",
            "SQL State (s)",
            "Total (s)",
        ],
    );
    for p in points {
        table.row(vec![
            p.result_size.to_string(),
            fmt_secs(p.virtual_session),
            fmt_secs(p.sql_state),
            fmt_secs(p.virtual_session + p.sql_state),
        ]);
    }
    table.row(vec![
        "(recompute Q11 + deliver)".into(),
        String::new(),
        String::new(),
        fmt_secs(recompute),
    ]);
    table.emit(name);
}

/// Default fraction sweep for the recovery and Q11-persist experiments:
/// spans result sizes from a handful of tuples to the full group count.
pub fn q11_fraction_sweep() -> Vec<f64> {
    vec![
        0.05, 0.03, 0.02, 0.015, 0.01, 0.007, 0.005, 0.003, 0.002, 0.001, 0.0005, 0.0001, 0.00001,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_renders_aligned() {
        let mut t = TextTable::new("Demo", &["a", "value"]);
        t.row(vec!["x".into(), "1.5".into()]);
        t.row(vec!["longer".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("| longer |"));
    }

    #[test]
    fn env_overrides_parse() {
        std::env::set_var("PHX_TEST_ENV_F64", "2.5");
        assert_eq!(env_f64("PHX_TEST_ENV_F64", 1.0), 2.5);
        assert_eq!(env_f64("PHX_TEST_ENV_MISSING", 1.0), 1.0);
        std::env::set_var("PHX_TEST_ENV_U64", "7");
        assert_eq!(env_u64("PHX_TEST_ENV_U64", 1), 7);
    }
}
