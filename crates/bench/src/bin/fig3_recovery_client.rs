//! **Figure 3** — elapsed time to recover a database session, repositioning
//! the reopened result set **from the client** (tuples are re-fetched and
//! discarded across the network until the remembered position). The SQL
//! state component grows with result size; the virtual-session component
//! is constant.
//!
//! Env: `PHX_SF` (default 0.02), `PHX_SEED`.

use bench::{emit_recovery_table, env_f64, env_u64, q11_fraction_sweep, recovery_experiment};

fn main() {
    let sf = env_f64("PHX_SF", 0.02);
    let seed = env_u64("PHX_SEED", 42);
    eprintln!("[fig3] recovery with client-side repositioning, sf={sf} ...");
    let (points, recompute) = recovery_experiment(
        phoenix::RepositionMode::Client,
        sf,
        &q11_fraction_sweep(),
        seed,
    );
    emit_recovery_table(
        &format!("Figure 3: session recovery, repositioning at client (sf={sf})"),
        "fig3_recovery_client",
        &points,
        recompute,
    );
    bench::emit_json(
        "fig3_recovery_client",
        &[
            ("sf", sf.to_string()),
            ("seed", seed.to_string()),
            ("reposition", "client".to_string()),
            ("points", points.len().to_string()),
        ],
    );
}
