//! **Figure 6 + §3.5** — overheads of persisting a result set, using Q11
//! with the `Fraction` parameter swept to vary result size:
//!
//! * execute/load time for native ODBC (volatile result) vs Phoenix (the
//!   `INSERT INTO T <select>` materialization round trip);
//! * the constant per-statement step costs (parse, metadata probe, create
//!   table);
//! * the per-tuple fetch cost, native vs Phoenix (reading a persistent
//!   table vs a volatile result).
//!
//! Env: `PHX_SF` (default 0.02), `PHX_SEED`.

use std::time::{Duration, Instant};

use bench::{
    env_f64, env_u64, fmt_ratio, fmt_secs, q11_fraction_sweep, start_loaded, tpch_server, TextTable,
};
use odbcsim::{DriverConfig, OdbcConnection};
use phoenix::{PhoenixConfig, PhoenixConnection};
use workloads::tpch::{self, queries, TpchScale};

fn main() {
    let sf = env_f64("PHX_SF", 0.02);
    let seed = env_u64("PHX_SEED", 42);
    let scale = TpchScale::new(sf);
    eprintln!("[fig6] loading TPC-H sf={sf} ...");
    let server = start_loaded(tpch_server(), |c| tpch::load(c, scale, seed).map(|_| ()));

    let driver = DriverConfig {
        query_timeout: Some(Duration::from_secs(120)),
        ..Default::default()
    };
    let native = OdbcConnection::connect(&server, driver.clone()).unwrap();
    let px = PhoenixConnection::connect(
        &server,
        PhoenixConfig {
            driver: driver.clone(),
            ..Default::default()
        },
    )
    .unwrap();

    let mut table = TextTable::new(
        format!("Figure 6: Q11 execute/load times (sf={sf})"),
        &[
            "Result Set Size",
            "Native ODBC exec (s)",
            "Phoenix load (s)",
            "Phoenix total (s)",
            "Load/Exec Ratio",
        ],
    );

    let mut parse_times = Vec::new();
    let mut metadata_times = Vec::new();
    let mut create_times = Vec::new();
    let mut native_fetch = Vec::new();
    let mut phx_fetch = Vec::new();

    for fraction in q11_fraction_sweep() {
        let sql = queries::q11_with_fraction(fraction);

        // Native: execute (volatile result), then time per-tuple fetches.
        let t = Instant::now();
        let mut st = native.exec_direct(&sql).unwrap();
        let native_exec = t.elapsed();
        let t = Instant::now();
        let mut n_rows = 0u64;
        while st.fetch().unwrap().is_some() {
            n_rows += 1;
        }
        if n_rows > 0 {
            native_fetch.push(t.elapsed() / n_rows as u32);
        }
        if n_rows < 1 {
            continue;
        }

        // Phoenix: persist; the step timings come from instrumentation.
        let t = Instant::now();
        px.exec(&sql).unwrap();
        let phx_total = t.elapsed();
        let timing = px.last_persist_timing().unwrap();
        parse_times.push(timing.parse);
        metadata_times.push(timing.metadata);
        create_times.push(timing.create_table);

        let t = Instant::now();
        let mut p_rows = 0u64;
        while px.fetch().unwrap().is_some() {
            p_rows += 1;
        }
        if p_rows > 0 {
            phx_fetch.push(t.elapsed() / p_rows as u32);
        }
        px.close_result();

        table.row(vec![
            n_rows.to_string(),
            fmt_secs(native_exec),
            fmt_secs(timing.load),
            fmt_secs(phx_total),
            fmt_ratio(timing.load, native_exec),
        ]);
    }
    table.emit("fig6_q11_persist");

    let avg = |xs: &[Duration]| -> Duration {
        if xs.is_empty() {
            Duration::ZERO
        } else {
            xs.iter().sum::<Duration>() / xs.len() as u32
        }
    };
    let us = |d: Duration| format!("{:.1}", d.as_secs_f64() * 1e6);
    let mut steps = TextTable::new(
        "§3.5: constant per-statement step costs and per-tuple fetch cost",
        &["Step", "Microseconds"],
    );
    steps.row(vec!["parse (intercept)".into(), us(avg(&parse_times))]);
    steps.row(vec![
        "metadata (WHERE 0=1)".into(),
        us(avg(&metadata_times)),
    ]);
    steps.row(vec![
        "create persistent table".into(),
        us(avg(&create_times)),
    ]);
    steps.row(vec![
        "fetch per tuple, native ODBC".into(),
        us(avg(&native_fetch)),
    ]);
    steps.row(vec!["fetch per tuple, Phoenix".into(), us(avg(&phx_fetch))]);
    steps.emit("fig6_step_costs");
    bench::emit_json(
        "fig6_q11_persist",
        &[("sf", sf.to_string()), ("seed", seed.to_string())],
    );
}
