//! **Ablation** — client result-cache capacity sweep (the paper's "size of
//! this client cache is a runtime parameter").
//!
//! For a fixed stream of queries whose result sizes span three orders of
//! magnitude, sweep the cache capacity and report how many results were
//! served from the cache vs spilled to server-side persistence, and the
//! mean statement latency. Shows the OLTP optimization's operating range
//! and its graceful degradation into Section-2 behaviour.
//!
//! Env: `PHX_SF` (default 0.01), `PHX_SEED`.

use std::time::Instant;

use bench::{env_f64, env_u64, start_loaded, tpch_server, TextTable};
use phoenix::{CacheMode, PhoenixConfig, PhoenixConnection};
use workloads::tpch::{self, queries, TpchScale};

fn main() {
    let sf = env_f64("PHX_SF", 0.01);
    let seed = env_u64("PHX_SEED", 42);
    let scale = TpchScale::new(sf);
    eprintln!("[ablation_cache] loading TPC-H sf={sf} ...");
    let server = start_loaded(tpch_server(), |c| tpch::load(c, scale, seed).map(|_| ()));

    // Query stream: Q11 at several fractions (small..full result) plus a
    // couple of tiny point-ish queries — OLTP/OLAP mixture.
    let mut stream: Vec<String> = vec![
        "SELECT n_name FROM nation WHERE n_nationkey = 7".into(),
        "SELECT r_name FROM region WHERE r_regionkey = 1".into(),
    ];
    for f in [0.05, 0.01, 0.003, 0.001, 0.0001, 0.00001] {
        stream.push(queries::q11_with_fraction(f));
    }

    let mut table = TextTable::new(
        format!("Ablation: client cache capacity sweep (sf={sf})"),
        &[
            "Cache capacity",
            "cached",
            "spilled to server",
            "mean exec+fetch (ms)",
        ],
    );

    let mut configs: Vec<(String, CacheMode)> = vec![("disabled".into(), CacheMode::Disabled)];
    for kb in [1usize, 4, 16, 64, 256] {
        configs.push((format!("{kb} KiB"), CacheMode::enabled(kb * 1024)));
    }

    for (label, cache) in configs {
        let px = PhoenixConnection::connect(
            &server,
            PhoenixConfig {
                cache,
                ..Default::default()
            },
        )
        .unwrap();
        // Warm.
        for sql in &stream {
            px.query_all(sql).unwrap();
        }
        let t = Instant::now();
        let reps = 3;
        for _ in 0..reps {
            for sql in &stream {
                px.query_all(sql).unwrap();
            }
        }
        let mean_ms = t.elapsed().as_secs_f64() * 1e3 / (reps as f64 * stream.len() as f64);
        let stats = px.stats();
        table.row(vec![
            label,
            stats.results_cached.to_string(),
            stats.results_persisted.to_string(),
            format!("{mean_ms:.2}"),
        ]);
        px.close();
    }
    table.emit("ablation_cache_sweep");
    bench::emit_json(
        "ablation_cache_sweep",
        &[("sf", sf.to_string()), ("seed", seed.to_string())],
    );
}
