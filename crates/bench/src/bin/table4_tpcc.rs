//! **Table 4** — TPC-C under three configurations:
//!
//! 1. native ODBC (volatile result sets),
//! 2. Phoenix/ODBC with server-side result persistence,
//! 3. Phoenix/ODBC with client-side result caching (the Section 4
//!    optimization).
//!
//! Reports TPM-C, server CPU utilization, disk utilization, and the CPU
//! cost per transaction relative to native. The server is configured
//! disk-limited (small buffer pool + per-I/O latency), as in the paper.
//!
//! Env: `PHX_USERS` (default 4), `PHX_WARMUP_S` (default 4),
//! `PHX_MEASURE_S` (default 20), `PHX_POOL_PAGES` (default 128),
//! `PHX_IO_US` (default 300), `PHX_SEED`.

use std::time::Duration;

use bench::measure::CpuClock;
use bench::{env_u64, start_loaded, tpcc_server, TextTable};
use odbcsim::{DriverConfig, OdbcConnection};
use phoenix::{CacheMode, PhoenixConfig, PhoenixConnection};
use wire::DbServer;
use workloads::tpcc::driver::{run_mixed_load, TpccReport};
use workloads::tpcc::TpccScale;
use workloads::SqlClient;

struct ExperimentResult {
    name: &'static str,
    report: TpccReport,
    cpu: Duration,
    disk_busy: Duration,
    elapsed: Duration,
}

fn driver_cfg() -> DriverConfig {
    DriverConfig {
        query_timeout: Some(Duration::from_secs(120)),
        ..Default::default()
    }
}

fn fresh_server(pool_pages: usize, io_us: u64, scale: TpccScale, seed: u64) -> DbServer {
    start_loaded(tpcc_server(pool_pages, Duration::from_micros(io_us)), |c| {
        workloads::tpcc::load(c, scale, seed)
    })
}

#[allow(clippy::too_many_arguments)] // experiment parameter block
fn run_experiment<C: SqlClient + Send + 'static>(
    name: &'static str,
    server: &DbServer,
    users: usize,
    scale: TpccScale,
    warmup: Duration,
    measure: Duration,
    seed: u64,
    mk: impl Fn(&DbServer) -> C,
) -> ExperimentResult {
    eprintln!("[table4] running {name} ({users} users) ...");
    let clients: Vec<C> = (0..users).map(|_| mk(server)).collect();
    let disk0 = server.io_snapshot();
    let clock = CpuClock::start();
    let report = run_mixed_load(clients, scale, warmup, measure, seed).expect("driver");
    let (elapsed, cpu) = clock.lap();
    let disk = server.io_snapshot().delta(disk0);
    ExperimentResult {
        name,
        report,
        cpu,
        disk_busy: disk.busy,
        elapsed,
    }
}

fn median_result(mut reps: Vec<ExperimentResult>) -> ExperimentResult {
    reps.sort_by(|a, b| a.report.tpm_c.total_cmp(&b.report.tpm_c));
    reps.remove(reps.len() / 2)
}

fn main() {
    let users = env_u64("PHX_USERS", 4) as usize;
    let warmup = Duration::from_secs(env_u64("PHX_WARMUP_S", 4));
    let measure = Duration::from_secs(env_u64("PHX_MEASURE_S", 20));
    let pool_pages = env_u64("PHX_POOL_PAGES", 128) as usize;
    let io_us = env_u64("PHX_IO_US", 300);
    let seed = env_u64("PHX_SEED", 42);
    let reps = env_u64("PHX_REPS", 3) as usize;
    let scale = TpccScale::default();

    // Each experiment starts from an identically-seeded fresh database
    // (the paper restored from backup between runs); wait-die dynamics are
    // noisy at this scale, so each configuration runs `reps` times and the
    // median-TPM-C repetition is reported.
    let mut results = Vec::new();

    results.push(median_result(
        (0..reps)
            .map(|r| {
                let server = fresh_server(pool_pages, io_us, scale, seed);
                let out = run_experiment(
                    "1 Native ODBC",
                    &server,
                    users,
                    scale,
                    warmup,
                    measure,
                    seed + r as u64,
                    |s| OdbcConnection::connect(s, driver_cfg()).unwrap(),
                );
                server.crash();
                out
            })
            .collect(),
    ));
    results.push(median_result(
        (0..reps)
            .map(|r| {
                let server = fresh_server(pool_pages, io_us, scale, seed);
                let out = run_experiment(
                    "2 Phoenix/ODBC",
                    &server,
                    users,
                    scale,
                    warmup,
                    measure,
                    seed + r as u64,
                    |s| {
                        PhoenixConnection::connect(
                            s,
                            PhoenixConfig {
                                driver: driver_cfg(),
                                cache: CacheMode::Disabled,
                                ..Default::default()
                            },
                        )
                        .unwrap()
                    },
                );
                server.crash();
                out
            })
            .collect(),
    ));
    results.push(median_result(
        (0..reps)
            .map(|r| {
                let server = fresh_server(pool_pages, io_us, scale, seed);
                let out = run_experiment(
                    "3 Phoenix w/ client caching",
                    &server,
                    users,
                    scale,
                    warmup,
                    measure,
                    seed + r as u64,
                    |s| {
                        PhoenixConnection::connect(
                            s,
                            PhoenixConfig {
                                driver: driver_cfg(),
                                cache: CacheMode::enabled(64 * 1024),
                                ..Default::default()
                            },
                        )
                        .unwrap()
                    },
                );
                server.crash();
                out
            })
            .collect(),
    ));

    let native_cpu_per_txn =
        results[0].cpu.as_secs_f64() / results[0].report.total_txns.max(1) as f64;

    let mut table = TextTable::new(
        format!(
            "Table 4: TPC-C ({} warehouse, {users} users, {}s measured, median of {reps} reps, disk-limited)",
            scale.warehouses,
            measure.as_secs()
        ),
        &[
            "EXPERIMENT",
            "TPM-C",
            "CPU UTIL",
            "DISK UTIL",
            "CPU RATIO",
            "txns",
            "retries",
            "errors",
            "NO share",
        ],
    );
    for r in &results {
        let cpu_util = r.cpu.as_secs_f64() / r.elapsed.as_secs_f64();
        let disk_util = (r.disk_busy.as_secs_f64() / r.elapsed.as_secs_f64()).min(1.0);
        let cpu_per_txn = r.cpu.as_secs_f64() / r.report.total_txns.max(1) as f64;
        table.row(vec![
            r.name.to_string(),
            format!("{:.0}", r.report.tpm_c),
            format!("{:.0}%", cpu_util * 100.0),
            format!("{:.0}%", disk_util * 100.0),
            format!("{:.2}", cpu_per_txn / native_cpu_per_txn),
            r.report.total_txns.to_string(),
            r.report.retries.to_string(),
            r.report.errors.to_string(),
            format!(
                "{:.0}%",
                100.0 * r.report.tpm_c * r.elapsed.as_secs_f64()
                    / 60.0
                    / r.report.total_txns.max(1) as f64
            ),
        ]);
    }
    table.emit("table4_tpcc");
    bench::emit_json(
        "table4_tpcc",
        &[
            ("users", users.to_string()),
            ("measure_s", measure.as_secs().to_string()),
            ("pool_pages", pool_pages.to_string()),
            ("io_us", io_us.to_string()),
            ("reps", reps.to_string()),
            ("seed", seed.to_string()),
        ],
    );
}
