//! **Table 3** — `SELECT TOP N * FROM lineitem`, N doubling from 1 to
//! 256 K: query response time under native ODBC vs Phoenix/ODBC, with the
//! ratio. The application does *not* consume the result (as in the paper),
//! so native response time flattens once client+network buffering
//! saturates (the scan suspends), while Phoenix — which must run the scan
//! to completion to materialize the persistent table — keeps growing.
//!
//! Env: `PHX_MAX_N` (default 262144), `PHX_ROW_PAD` (default 130 chars —
//! rows ≈150 bytes like LINEITEM's), `PHX_BUFFER_KB` (driver buffer,
//! default 75 to match the paper's ~75 KB plateau at 512 tuples).

use std::time::{Duration, Instant};

use bench::{env_u64, fmt_ratio, fmt_secs, start_loaded, tpch_server, TextTable};
use odbcsim::{DriverConfig, OdbcConnection};
use phoenix::{PhoenixConfig, PhoenixConnection};
use workloads::SqlClient;

fn main() {
    let max_n = env_u64("PHX_MAX_N", 262_144);
    let pad = env_u64("PHX_ROW_PAD", 130) as usize;
    let buffer_kb = env_u64("PHX_BUFFER_KB", 75) as usize;

    eprintln!("[table3] loading {max_n} lineitem rows (~150 B each) ...");
    let server = start_loaded(tpch_server(), |c| {
        c.execute("CREATE TABLE lineitem (l_key INT PRIMARY KEY, l_pad VARCHAR(150))")?;
        let padding = "x".repeat(pad);
        let mut batch = Vec::with_capacity(500);
        for k in 0..max_n {
            batch.push(format!("({k}, '{padding}')"));
            if batch.len() == 500 {
                c.execute(&format!("INSERT INTO lineitem VALUES {}", batch.join(",")))?;
                batch.clear();
            }
        }
        if !batch.is_empty() {
            c.execute(&format!("INSERT INTO lineitem VALUES {}", batch.join(",")))?;
        }
        Ok(())
    });

    let driver = DriverConfig {
        buffer_bytes: buffer_kb * 1024,
        query_timeout: Some(Duration::from_secs(300)),
        ..Default::default()
    };
    let native = OdbcConnection::connect(&server, driver.clone()).unwrap();
    let px = PhoenixConnection::connect(
        &server,
        PhoenixConfig {
            driver: driver.clone(),
            ..Default::default()
        },
    )
    .unwrap();

    // Warm both connections (thread spawn, first-touch costs) before
    // measuring.
    for _ in 0..3 {
        native.ping().unwrap();
        let st = native.exec_direct("SELECT TOP 1 * FROM lineitem").unwrap();
        let _ = st.close();
        px.exec("SELECT TOP 1 * FROM lineitem").unwrap();
        px.close_result();
    }

    let mut table = TextTable::new(
        format!("Table 3: SELECT TOP N * FROM lineitem (unconsumed, driver buffer {buffer_kb} KB)"),
        &[
            "Result Set Size",
            "Native ODBC (s)",
            "Phoenix/ODBC (s)",
            "Ratio",
        ],
    );

    let mut n = 1u64;
    while n <= max_n {
        let sql = format!("SELECT TOP {n} * FROM lineitem");

        // Native: response time of ExecDirect; do NOT consume the rows.
        let t = Instant::now();
        let st = native.exec_direct(&sql).unwrap();
        let t_native = t.elapsed();
        let _ = st.close(); // abandon the (possibly suspended) stream

        // Phoenix: response time of exec, which persists the result
        // server-side and reopens it; again nothing is consumed.
        let t = Instant::now();
        px.exec(&sql).unwrap();
        let t_phx = t.elapsed();
        px.close_result();

        table.row(vec![
            n.to_string(),
            fmt_secs(t_native),
            fmt_secs(t_phx),
            fmt_ratio(t_phx, t_native),
        ]);
        // Let cancelled producers drain so they do not perturb the next
        // measurement.
        std::thread::sleep(Duration::from_millis(30));
        eprintln!(
            "[table3] N={n}: native {:.4}s phoenix {:.4}s",
            t_native.as_secs_f64(),
            t_phx.as_secs_f64()
        );
        n *= 2;
    }
    table.emit("table3_topn");
    bench::emit_json(
        "table3_topn",
        &[
            ("max_n", max_n.to_string()),
            ("row_pad", pad.to_string()),
            ("buffer_kb", buffer_kb.to_string()),
        ],
    );
}
