//! **Figure 4** — elapsed time to recover a database session, repositioning
//! the reopened result **at the server** (the repositioning stored
//! procedure: the engine advances through the persistent result table
//! without transmitting tuples). Compared with Figure 3 this removes the
//! per-tuple communication cost — the paper's 10× reduction for large
//! results.
//!
//! Env: `PHX_SF` (default 0.02), `PHX_SEED`.

use bench::{emit_recovery_table, env_f64, env_u64, q11_fraction_sweep, recovery_experiment};

fn main() {
    let sf = env_f64("PHX_SF", 0.02);
    let seed = env_u64("PHX_SEED", 42);
    eprintln!("[fig4] recovery with server-side repositioning, sf={sf} ...");
    let (points, recompute) = recovery_experiment(
        phoenix::RepositionMode::Server,
        sf,
        &q11_fraction_sweep(),
        seed,
    );
    emit_recovery_table(
        &format!("Figure 4: session recovery, repositioning at server (sf={sf})"),
        "fig4_recovery_server",
        &points,
        recompute,
    );
    bench::emit_json(
        "fig4_recovery_server",
        &[
            ("sf", sf.to_string()),
            ("seed", seed.to_string()),
            ("reposition", "server".to_string()),
            ("points", points.len().to_string()),
        ],
    );
}
