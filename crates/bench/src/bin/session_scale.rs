//! **Scale sweep** — session count vs. admission and recovery latency.
//!
//! The paper's experiments run a handful of sessions; this harness asks
//! what the persistent-session machinery costs when a *fleet* hangs off
//! one server: for each point in the sweep it connects N Phoenix
//! sessions through the admission gate, runs a wrapped modification per
//! session, crashes the server mid-fleet, and measures the per-session
//! admission (connect) latency and post-crash recovery latency as the
//! reconnect herd squeezes through the bounded pending gate.
//!
//! Output: a text table of p50/p99 per point plus the machine-readable
//! twin `bench_results/session_scale.json` (obskit snapshot with the
//! `session_scale.admit` / `session_scale.recover` histograms and
//! per-point quantiles in the metadata), plus the streaming series twin
//! `bench_results/session_scale.series.jsonl` — one interval per sweep
//! point, validated by `cargo xtask bench-gate --series` (pending peak
//! bounded by the gate cap, every session drained by the final mark).
//!
//! Env: `PHX_SCALE_SWEEP` (comma list, default `100,250,500,1000,2000`),
//! `PHX_SCALE_PENDING` (pending-accept cap, default 32), `PHX_SCALE_SEED`.

use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use bench::{env_u64, TextTable};
use phoenix::{ExecKind, PhoenixConfig, PhoenixConnection, ReconnectPolicy};
use sqlengine::Error;
use wire::{AdmissionConfig, DbServer, ServerConfig};
use workloads::{EngineClient, SqlClient};

fn px_cfg(seed: u64) -> PhoenixConfig {
    let mut cfg = PhoenixConfig {
        reconnect: ReconnectPolicy {
            max_attempts: 10_000,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(20),
            deadline: Duration::from_secs(120),
            masking_retries: 1_000,
            jitter_seed: seed,
        },
        ..Default::default()
    };
    cfg.driver.buffer_bytes = 512;
    cfg.driver.query_timeout = Some(Duration::from_secs(10));
    cfg.driver.request_deadline = Some(Duration::from_secs(15));
    cfg
}

/// Bring the server back up; with the fleet already hammering the
/// listener the first restart attempt can race a reconnecting client.
fn restart_with_retry(server: &DbServer, attempts: u32) {
    for _ in 0..attempts.max(1) {
        if server.is_up() || server.restart().is_ok() {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("server did not restart after {attempts} attempts");
}

/// One wrapped insert, retrying the two failure modes a real client
/// retries: a wait-die deadlock victim (definitively not applied) and a
/// resumable recovery exhaustion.
fn wrapped_insert(px: &PhoenixConnection, id: i64) {
    loop {
        match px.exec(&format!("INSERT INTO orders VALUES ({id}, 1)")) {
            Ok(ExecKind::RowCount(1)) => return,
            Ok(other) => panic!("insert {id}: unexpected {other:?}"),
            Err(Error::Deadlock) => std::thread::sleep(Duration::from_millis(2)),
            Err(Error::RecoveryExhausted) => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => panic!("insert {id}: {e:?}"),
        }
    }
}

struct Point {
    sessions: usize,
    admit_us: Vec<u64>,
    recover_us: Vec<u64>,
    bytes_per_session: u64,
    shed: u64,
    pending_peak: i64,
}

fn run_point(sessions: usize, pending_cap: usize, seed: u64) -> Point {
    let mut cfg = ServerConfig::instant_net();
    cfg.admission = AdmissionConfig {
        max_sessions: sessions * 4,
        pending_accepts: pending_cap,
        idle_timeout: Duration::from_secs(60),
        session_budget_bytes: u64::MAX,
        handshake_timeout: Duration::from_secs(10),
    };
    let server = DbServer::start(cfg).unwrap();
    {
        let client = EngineClient::new(server.engine().unwrap()).unwrap();
        client
            .execute("CREATE TABLE orders (id INT PRIMARY KEY, qty INT)")
            .unwrap();
        server.engine().unwrap().checkpoint().unwrap();
    }

    let connected = Arc::new(Barrier::new(sessions + 1));
    let pre_crash = Arc::new(Barrier::new(sessions + 1));
    let post_restart = Arc::new(Barrier::new(sessions + 1));
    let admit_us = Arc::new(Mutex::new(Vec::with_capacity(sessions)));
    let recover_us = Arc::new(Mutex::new(Vec::with_capacity(sessions)));

    let mut handles = Vec::with_capacity(sessions);
    for k in 0..sessions {
        let server = server.clone();
        let connected = Arc::clone(&connected);
        let pre_crash = Arc::clone(&pre_crash);
        let post_restart = Arc::clone(&post_restart);
        let admit_us = Arc::clone(&admit_us);
        let recover_us = Arc::clone(&recover_us);
        // Small stacks: the recovery path is shallow and 2000 default
        // 8 MiB stacks would be needlessly heavy.
        let h = std::thread::Builder::new()
            .stack_size(256 * 1024)
            .spawn(move || {
                // Admission latency: first successful connect, shed
                // retries included (that wait is the admission cost the
                // gate imposes on an arriving fleet).
                let t = Instant::now();
                let px = loop {
                    match PhoenixConnection::connect(&server, px_cfg(seed)) {
                        Ok(px) => break px,
                        Err(Error::ServerBusy { retry_after }) => {
                            std::thread::sleep(retry_after + Duration::from_micros(k as u64 % 97));
                        }
                        Err(e) => panic!("connect {k}: {e:?}"),
                    }
                };
                admit_us
                    .lock()
                    .unwrap()
                    .push(t.elapsed().as_micros() as u64);
                connected.wait();
                wrapped_insert(&px, k as i64 * 10 + 1);
                pre_crash.wait();
                post_restart.wait();
                // Recovery latency: the first post-crash call detects the
                // dead link, re-admits both connections through the gate,
                // replays phase 1/2 and then applies the insert.
                let t = Instant::now();
                wrapped_insert(&px, k as i64 * 10 + 2);
                recover_us
                    .lock()
                    .unwrap()
                    .push(t.elapsed().as_micros() as u64);
                px.close();
            })
            .unwrap();
        handles.push(h);
    }

    connected.wait();
    pre_crash.wait();
    server.crash();
    restart_with_retry(&server, 200);
    post_restart.wait();
    for h in handles {
        h.join().unwrap();
    }

    let st = server.admission_stats();
    let mut admit_us = Arc::try_unwrap(admit_us).unwrap().into_inner().unwrap();
    let mut recover_us = Arc::try_unwrap(recover_us).unwrap().into_inner().unwrap();
    admit_us.sort_unstable();
    recover_us.sort_unstable();
    Point {
        sessions,
        admit_us,
        recover_us,
        // Both links (app + private) serve one virtual session.
        bytes_per_session: st.traffic_total / sessions as u64,
        shed: st.shed,
        pending_peak: st.pending_peak,
    }
}

/// Exact order statistic over a sorted sample (nearest-rank).
fn pct(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() {
    let sweep: Vec<usize> = std::env::var("PHX_SCALE_SWEEP")
        .unwrap_or_else(|_| "100,250,500,1000,2000".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let pending_cap = env_u64("PHX_SCALE_PENDING", 32) as usize;
    let seed = env_u64("PHX_SCALE_SEED", 2026);

    let reg = obskit::metrics::global();
    let admit_hist = reg.histogram("session_scale.admit");
    let recover_hist = reg.histogram("session_scale.recover");
    let series = bench::series_recorder(
        "session_scale",
        &[
            ("pending_cap", pending_cap.to_string()),
            ("seed", seed.to_string()),
        ],
    );
    series.mark("setup", &reg.snapshot()).expect("series mark");

    let mut table = TextTable::new(
        format!("Session scale sweep (pending gate {pending_cap}, seed {seed})"),
        &[
            "sessions",
            "admit p50 (us)",
            "admit p99 (us)",
            "recover p50 (ms)",
            "recover p99 (ms)",
            "bytes/session",
            "shed",
            "pending peak",
        ],
    );
    let mut meta: Vec<(String, String)> = vec![
        ("pending_cap".into(), pending_cap.to_string()),
        ("seed".into(), seed.to_string()),
        (
            "sweep".into(),
            sweep
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(","),
        ),
    ];
    for &sessions in &sweep {
        let p = run_point(sessions, pending_cap, seed);
        for &v in &p.admit_us {
            admit_hist.record(v);
        }
        for &v in &p.recover_us {
            recover_hist.record(v);
        }
        table.row(vec![
            p.sessions.to_string(),
            pct(&p.admit_us, 0.50).to_string(),
            pct(&p.admit_us, 0.99).to_string(),
            format!("{:.1}", pct(&p.recover_us, 0.50) as f64 / 1e3),
            format!("{:.1}", pct(&p.recover_us, 0.99) as f64 / 1e3),
            p.bytes_per_session.to_string(),
            p.shed.to_string(),
            p.pending_peak.to_string(),
        ]);
        for (k, v) in [
            ("admit_p50_us", pct(&p.admit_us, 0.50)),
            ("admit_p99_us", pct(&p.admit_us, 0.99)),
            ("recover_p50_us", pct(&p.recover_us, 0.50)),
            ("recover_p99_us", pct(&p.recover_us, 0.99)),
            ("bytes_per_session", p.bytes_per_session),
            ("shed", p.shed),
        ] {
            meta.push((format!("n{sessions}.{k}"), v.to_string()));
        }
        series
            .mark(&format!("n{sessions}"), &reg.snapshot())
            .expect("series mark");
    }
    series.mark("done", &reg.snapshot()).expect("series mark");
    table.emit("session_scale");
    let meta_refs: Vec<(&str, String)> =
        meta.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
    bench::emit_json("session_scale", &meta_refs);
}
