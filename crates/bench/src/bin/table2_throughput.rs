//! **Table 2** — TPC-H throughput test: two concurrent query streams (each
//! running the 22-query suite in its own order) plus one refresh stream
//! executing RF1 and RF2 twice. Elapsed time of the measurement interval,
//! native vs Phoenix.
//!
//! Env: `PHX_SF` (default 0.01), `PHX_STREAMS` (default 2), `PHX_REPS`
//! (median of this many repetitions per mode, default 3), `PHX_SEED`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::{env_f64, env_u64, fmt_ratio, fmt_secs, start_loaded, tpch_server, TextTable};
use odbcsim::{DriverConfig, OdbcConnection};
use parking_lot::Mutex;
use phoenix::{PhoenixConfig, PhoenixConnection};
use sqlengine::Error;
use wire::DbServer;
use workloads::tpch::{self, queries, refresh, TpchScale};
use workloads::SqlClient;

fn driver_cfg() -> DriverConfig {
    DriverConfig {
        query_timeout: Some(Duration::from_secs(600)),
        ..Default::default()
    }
}

/// Run one throughput test: `streams` query streams + 1 refresh stream.
/// `mk_client` builds a fresh connection per stream.
fn throughput<C: SqlClient + Send + 'static>(
    streams: usize,
    rf_state: Arc<Mutex<refresh::RefreshState>>,
    mk_client: impl Fn() -> C,
) -> Duration {
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for s in 0..streams {
        let client = mk_client();
        handles.push(std::thread::spawn(move || {
            for (i, sql) in queries::stream_order(s) {
                // Queries can be wait-die victims against the refresh
                // stream; retry like any transaction-abort-aware client.
                loop {
                    match client.query(&sql) {
                        Ok(_) => break,
                        Err(Error::Deadlock) | Err(Error::TxnAborted(_)) => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(e) => panic!("stream {s} Q{i}: {e}"),
                    }
                }
            }
        }));
    }
    // Refresh stream: RF1+RF2 once per query stream (the paper ran the
    // pair twice for two streams).
    let rf_client = mk_client();
    let rf_runs = streams;
    handles.push(std::thread::spawn(move || {
        for _ in 0..rf_runs {
            // Retry wait-die victims: refresh competes with scans.
            loop {
                let mut st = rf_state.lock();
                match refresh::rf1(&rf_client, &mut st) {
                    Ok(_) => break,
                    Err(Error::Deadlock) | Err(Error::TxnAborted(_)) => {
                        drop(st);
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(e) => panic!("rf1: {e}"),
                }
            }
            loop {
                let mut st = rf_state.lock();
                match refresh::rf2(&rf_client, &mut st) {
                    Ok(_) => break,
                    Err(Error::Deadlock) | Err(Error::TxnAborted(_)) => {
                        drop(st);
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(e) => panic!("rf2: {e}"),
                }
            }
        }
    }));
    for h in handles {
        h.join().expect("stream");
    }
    t0.elapsed()
}

fn mk_native(server: &DbServer) -> OdbcConnection {
    OdbcConnection::connect(server, driver_cfg()).unwrap()
}

fn mk_phoenix(server: &DbServer) -> PhoenixConnection {
    PhoenixConnection::connect(
        server,
        PhoenixConfig {
            driver: driver_cfg(),
            ..Default::default()
        },
    )
    .unwrap()
}

fn main() {
    let sf = env_f64("PHX_SF", 0.01);
    let streams = env_u64("PHX_STREAMS", 2) as usize;
    let seed = env_u64("PHX_SEED", 42);
    let scale = TpchScale::new(sf);

    eprintln!("[table2] loading TPC-H sf={sf} ...");
    let server = start_loaded(tpch_server(), |c| tpch::load(c, scale, seed).map(|_| ()));
    let rf_state = Arc::new(Mutex::new(refresh::RefreshState::new(scale, seed + 1)));

    // Lock-scheduling (wait-die) interleavings make single runs noisy;
    // report the median of several repetitions per mode.
    let reps = bench::env_u64("PHX_REPS", 3) as usize;
    let median = |mut xs: Vec<Duration>| -> Duration {
        xs.sort();
        xs[xs.len() / 2]
    };

    eprintln!("[table2] native throughput ({streams} query streams + refresh, {reps} reps) ...");
    let native = median(
        (0..reps)
            .map(|_| {
                let s2 = server.clone();
                throughput(streams, Arc::clone(&rf_state), move || mk_native(&s2))
            })
            .collect(),
    );

    eprintln!("[table2] Phoenix throughput ...");
    let phx = median(
        (0..reps)
            .map(|_| {
                let s3 = server.clone();
                throughput(streams, Arc::clone(&rf_state), move || mk_phoenix(&s3))
            })
            .collect(),
    );

    let mut table = TextTable::new(
        format!("Table 2: TPC-H throughput test ({streams} streams, sf={sf}, median of {reps})"),
        &["Metric", "Value"],
    );
    table.row(vec![
        "Elapsed Time for Native ODBC (s)".into(),
        fmt_secs(native),
    ]);
    table.row(vec![
        "Elapsed Time for Phoenix/ODBC (s)".into(),
        fmt_secs(phx),
    ]);
    table.row(vec![
        "Difference (s)".into(),
        format!("{:.3}", phx.as_secs_f64() - native.as_secs_f64()),
    ]);
    table.row(vec!["Ratio".into(), fmt_ratio(phx, native)]);
    table.emit("table2_throughput");
    bench::emit_json(
        "table2_throughput",
        &[
            ("sf", sf.to_string()),
            ("streams", streams.to_string()),
            ("reps", reps.to_string()),
            ("seed", seed.to_string()),
            ("native_s", fmt_secs(native)),
            ("phoenix_s", fmt_secs(phx)),
        ],
    );
}
