//! **Ablation** — reconnect-policy sweep: how the retry interval shapes
//! the application-visible pause when the server outage lasts longer than
//! one attempt (the paper "periodically attempts to reconnect" without
//! quantifying the period).
//!
//! For a fixed server downtime, measures the application-visible stall of
//! the fetch that spans the outage, across retry intervals.
//!
//! Env: `PHX_DOWNTIME_MS` (default 250), `PHX_SEED`.

use std::time::{Duration, Instant};

use bench::{env_u64, start_loaded, tpch_server, TextTable};
use phoenix::{PhoenixConfig, PhoenixConnection, ReconnectPolicy};
use workloads::SqlClient;

fn main() {
    let downtime = Duration::from_millis(env_u64("PHX_DOWNTIME_MS", 250));

    let server = start_loaded(tpch_server(), |c| {
        c.execute("CREATE TABLE t (a INT PRIMARY KEY, pad VARCHAR(64))")?;
        let mut vals = Vec::new();
        for i in 0..4000 {
            vals.push(format!("({i}, 'xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx')"));
            if vals.len() == 500 {
                c.execute(&format!("INSERT INTO t VALUES {}", vals.join(",")))?;
                vals.clear();
            }
        }
        Ok(())
    });

    let mut table = TextTable::new(
        format!(
            "Ablation: reconnect retry interval (server downtime {} ms)",
            downtime.as_millis()
        ),
        &[
            "retry interval (ms)",
            "attempts",
            "app-visible stall (ms)",
            "virtual session (ms)",
        ],
    );

    for interval_ms in [5u64, 20, 50, 100, 250, 500] {
        let mut cfg = PhoenixConfig {
            reconnect: ReconnectPolicy::fixed(10_000, Duration::from_millis(interval_ms)),
            ..Default::default()
        };
        cfg.driver.buffer_bytes = 256;
        cfg.driver.query_timeout = Some(Duration::from_secs(30));
        let px = PhoenixConnection::connect(&server, cfg).unwrap();
        px.exec("SELECT a FROM t ORDER BY a").unwrap();
        for _ in 0..500 {
            px.fetch().unwrap().unwrap();
        }
        // Crash; restart after the fixed downtime, from another thread.
        server.crash();
        let s2 = server.clone();
        let dt = downtime;
        let h = std::thread::spawn(move || {
            std::thread::sleep(dt);
            s2.restart().unwrap();
        });
        // A few rows may still be buffered client-side; keep fetching
        // until a fetch actually spans the outage (recovery count moves).
        let before = px.stats().recoveries;
        let t = Instant::now();
        while px.stats().recoveries == before {
            assert!(px.fetch().unwrap().is_some(), "rows must keep coming");
        }
        let stall = t.elapsed();
        h.join().unwrap();
        let rt = px.last_recovery_timing().unwrap();
        table.row(vec![
            interval_ms.to_string(),
            rt.attempts.to_string(),
            format!("{:.1}", stall.as_secs_f64() * 1e3),
            format!("{:.1}", rt.virtual_session.as_secs_f64() * 1e3),
        ]);
        // Drain and clean up for the next round.
        while px.fetch().unwrap().is_some() {}
        px.close_result();
        px.close();
    }
    table.emit("ablation_reconnect");
    bench::emit_json(
        "ablation_reconnect",
        &[("downtime_ms", downtime.as_millis().to_string())],
    );
}
