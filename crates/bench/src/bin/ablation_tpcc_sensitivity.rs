//! **Ablation** — Table 4 sensitivity: how the TPC-C comparison responds
//! to the disk model (per-I/O latency) and buffer-pool size. Confirms the
//! paper's framing that the server is disk-limited and that the Phoenix
//! overhead is CPU+disk work per transaction, not an artifact of one
//! configuration.
//!
//! Env: `PHX_USERS` (default 4), `PHX_MEASURE_S` (default 10), `PHX_SEED`.

use std::time::Duration;

use bench::measure::CpuClock;
use bench::{env_u64, start_loaded, tpcc_server, TextTable};
use odbcsim::{DriverConfig, OdbcConnection};
use phoenix::{PhoenixConfig, PhoenixConnection};
use workloads::tpcc::driver::run_mixed_load;
use workloads::tpcc::TpccScale;

fn main() {
    let users = env_u64("PHX_USERS", 4) as usize;
    let measure = Duration::from_secs(env_u64("PHX_MEASURE_S", 10));
    let warmup = Duration::from_secs(2);
    let seed = env_u64("PHX_SEED", 42);
    let scale = TpccScale::default();

    let mut table = TextTable::new(
        "Ablation: TPC-C sensitivity to disk latency and pool size",
        &[
            "io latency",
            "pool pages",
            "mode",
            "TPM-C",
            "DISK UTIL",
            "CPU UTIL",
        ],
    );

    for (io_us, pool) in [(100u64, 512usize), (300, 128), (600, 64)] {
        for phoenix_mode in [false, true] {
            let server = start_loaded(tpcc_server(pool, Duration::from_micros(io_us)), |c| {
                workloads::tpcc::load(c, scale, seed)
            });
            let disk0 = server.io_snapshot();
            let clock = CpuClock::start();
            let report = if phoenix_mode {
                let clients: Vec<PhoenixConnection> = (0..users)
                    .map(|_| {
                        PhoenixConnection::connect(
                            &server,
                            PhoenixConfig {
                                driver: DriverConfig {
                                    query_timeout: Some(Duration::from_secs(60)),
                                    ..Default::default()
                                },
                                ..Default::default()
                            },
                        )
                        .unwrap()
                    })
                    .collect();
                run_mixed_load(clients, scale, warmup, measure, seed).unwrap()
            } else {
                let clients: Vec<OdbcConnection> = (0..users)
                    .map(|_| {
                        OdbcConnection::connect(
                            &server,
                            DriverConfig {
                                query_timeout: Some(Duration::from_secs(60)),
                                ..Default::default()
                            },
                        )
                        .unwrap()
                    })
                    .collect();
                run_mixed_load(clients, scale, warmup, measure, seed).unwrap()
            };
            let (elapsed, cpu) = clock.lap();
            let disk = server.io_snapshot().delta(disk0);
            table.row(vec![
                format!("{io_us} µs"),
                pool.to_string(),
                if phoenix_mode { "phoenix" } else { "native" }.into(),
                format!("{:.0}", report.tpm_c),
                format!(
                    "{:.0}%",
                    (disk.busy.as_secs_f64() / elapsed.as_secs_f64()).min(1.0) * 100.0
                ),
                format!("{:.0}%", cpu.as_secs_f64() / elapsed.as_secs_f64() * 100.0),
            ]);
            server.crash();
            eprintln!(
                "[ablation_tpcc] io={io_us}us pool={pool} {} done",
                if phoenix_mode { "phoenix" } else { "native" }
            );
        }
    }
    table.emit("ablation_tpcc_sensitivity");
    bench::emit_json(
        "ablation_tpcc_sensitivity",
        &[
            ("users", users.to_string()),
            ("measure_s", measure.as_secs().to_string()),
            ("seed", seed.to_string()),
        ],
    );
}
