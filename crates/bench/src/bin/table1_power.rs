//! **Table 1** — TPC-H power test: per-query (Q1–Q22) and refresh-function
//! (RF1/RF2) running times under native ODBC and under Phoenix/ODBC
//! (server-side result persistence), with difference and ratio columns.
//!
//! Environment overrides: `PHX_SF` (scale factor, default 0.01),
//! `PHX_RUNS` (repetitions averaged, default 2), `PHX_SEED`.

use std::time::Duration;

use bench::measure::median;
use bench::{env_f64, env_u64, fmt_ratio, fmt_secs, start_loaded, tpch_server, TextTable};
use odbcsim::{DriverConfig, OdbcConnection};
use phoenix::{PhoenixConfig, PhoenixConnection};
use workloads::tpch::{self, queries, refresh, TpchScale};
use workloads::SqlClient;

fn driver_cfg() -> DriverConfig {
    DriverConfig {
        query_timeout: Some(Duration::from_secs(300)),
        ..Default::default()
    }
}

/// One full power run over a client: returns per-item (label, duration,
/// result-size) in suite order.
fn power_run(
    client: &impl SqlClient,
    rf_state: &mut refresh::RefreshState,
) -> Vec<(String, Duration, u64)> {
    let mut out = Vec::new();
    for (i, sql) in queries::all_queries() {
        let t = std::time::Instant::now();
        let rows = client.query(&sql).expect("query");
        out.push((format!("Q{i:02}"), t.elapsed(), rows.len() as u64));
    }
    let t = std::time::Instant::now();
    let n1 = refresh::rf1(client, rf_state).expect("rf1");
    out.push(("RF1".into(), t.elapsed(), n1));
    let t = std::time::Instant::now();
    let n2 = refresh::rf2(client, rf_state).expect("rf2");
    out.push(("RF2".into(), t.elapsed(), n2));
    out
}

fn averaged(runs: Vec<Vec<(String, Duration, u64)>>) -> Vec<(String, Duration, u64)> {
    let n = runs[0].len();
    (0..n)
        .map(|i| {
            let label = runs[0][i].0.clone();
            let times: Vec<Duration> = runs.iter().map(|r| r[i].1).collect();
            let size = runs[0][i].2;
            (label, median(times), size)
        })
        .collect()
}

fn main() {
    let sf = env_f64("PHX_SF", 0.01);
    let runs = env_u64("PHX_RUNS", 3) as usize;
    let seed = env_u64("PHX_SEED", 42);
    let scale = TpchScale::new(sf);

    eprintln!("[table1] loading TPC-H sf={sf} ...");
    let server = start_loaded(tpch_server(), |c| tpch::load(c, scale, seed).map(|_| ()));

    // A single refresh state across all runs keeps inserted order keys
    // unique (RF1 always inserts above the high-water mark, RF2 deletes
    // from the bottom, so the database size stays constant).
    let mut rf_state = refresh::RefreshState::new(scale, seed + 1);

    let warmup = env_u64("PHX_WARMUP", 1) as usize;

    // Native ODBC runs.
    eprintln!("[table1] native ODBC power runs ...");
    let native_conn = OdbcConnection::connect(&server, driver_cfg()).unwrap();
    for _ in 0..warmup {
        power_run(&native_conn, &mut rf_state);
    }
    let native = averaged(
        (0..runs)
            .map(|_| power_run(&native_conn, &mut rf_state))
            .collect(),
    );

    // Phoenix runs (server-side persistence, Section 2).
    eprintln!("[table1] Phoenix/ODBC power runs ...");
    let px = PhoenixConnection::connect(
        &server,
        PhoenixConfig {
            driver: driver_cfg(),
            ..Default::default()
        },
    )
    .unwrap();
    for _ in 0..warmup {
        power_run(&px, &mut rf_state);
    }
    let phoenix = averaged((0..runs).map(|_| power_run(&px, &mut rf_state)).collect());

    let mut table = TextTable::new(
        format!("Table 1: TPC-H power test (sf={sf}, median of {runs} runs)"),
        &[
            "Query/Update",
            "Result/Updates",
            "Native ODBC (s)",
            "Phoenix/ODBC (s)",
            "Difference (s)",
            "Ratio",
        ],
    );
    let mut tot_q_native = Duration::ZERO;
    let mut tot_q_px = Duration::ZERO;
    let mut tot_u_native = Duration::ZERO;
    let mut tot_u_px = Duration::ZERO;
    for ((label, tn, size), (_, tp, _)) in native.iter().zip(&phoenix) {
        let diff = tp.as_secs_f64() - tn.as_secs_f64();
        table.row(vec![
            label.clone(),
            size.to_string(),
            fmt_secs(*tn),
            fmt_secs(*tp),
            format!("{diff:.3}"),
            fmt_ratio(*tp, *tn),
        ]);
        if label.starts_with('Q') {
            tot_q_native += *tn;
            tot_q_px += *tp;
        } else {
            tot_u_native += *tn;
            tot_u_px += *tp;
        }
    }
    table.row(vec![
        "Total (Query)".into(),
        String::new(),
        fmt_secs(tot_q_native),
        fmt_secs(tot_q_px),
        format!("{:.3}", tot_q_px.as_secs_f64() - tot_q_native.as_secs_f64()),
        fmt_ratio(tot_q_px, tot_q_native),
    ]);
    table.row(vec![
        "Total (Updates)".into(),
        String::new(),
        fmt_secs(tot_u_native),
        fmt_secs(tot_u_px),
        format!("{:.3}", tot_u_px.as_secs_f64() - tot_u_native.as_secs_f64()),
        fmt_ratio(tot_u_px, tot_u_native),
    ]);
    table.emit("table1_power");
    bench::emit_json(
        "table1_power",
        &[
            ("sf", sf.to_string()),
            ("runs", runs.to_string()),
            ("seed", seed.to_string()),
        ],
    );
}
