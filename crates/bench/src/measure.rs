//! Measurement helpers: wall/CPU time and utilization accounting.
//!
//! The paper measured elapsed time with the Pentium cycle counter and
//! reported server CPU and disk utilization. Here CPU time comes from
//! `/proc/self/stat` (client threads contribute a small, proportional
//! overhead — documented in EXPERIMENTS.md) and disk busy time from the
//! simulated disk's service-time accounting.

use std::time::{Duration, Instant};

/// Process CPU time (user + system) from /proc/self/stat.
pub fn process_cpu_time() -> Duration {
    let Ok(stat) = std::fs::read_to_string("/proc/self/stat") else {
        return Duration::ZERO;
    };
    // Skip past the parenthesised command name; the next field is the
    // process state, and utime/stime are the 12th/13th fields after it.
    let Some(i) = stat.rfind(')') else {
        return Duration::ZERO;
    };
    let fields: Vec<&str> = stat[i + 1..].split_whitespace().collect();
    let utime: u64 = fields.get(11).and_then(|s| s.parse().ok()).unwrap_or(0);
    let stime: u64 = fields.get(12).and_then(|s| s.parse().ok()).unwrap_or(0);
    let hz = 100u64; // CLK_TCK on Linux
    Duration::from_millis((utime + stime) * 1000 / hz)
}

/// Snapshot of wall + CPU time.
#[derive(Debug, Clone, Copy)]
pub struct CpuClock {
    wall: Instant,
    cpu: Duration,
}

impl CpuClock {
    pub fn start() -> CpuClock {
        CpuClock {
            wall: Instant::now(),
            cpu: process_cpu_time(),
        }
    }

    /// (elapsed wall, consumed CPU) since `start`.
    pub fn lap(&self) -> (Duration, Duration) {
        (
            self.wall.elapsed(),
            process_cpu_time().saturating_sub(self.cpu),
        )
    }
}

/// Median of repeated timings.
pub fn median(mut xs: Vec<Duration>) -> Duration {
    if xs.is_empty() {
        return Duration::ZERO;
    }
    xs.sort();
    xs[xs.len() / 2]
}

/// Arithmetic mean of timings.
pub fn mean(xs: &[Duration]) -> Duration {
    if xs.is_empty() {
        return Duration::ZERO;
    }
    let total: Duration = xs.iter().sum();
    total / xs.len() as u32
}

/// Time a closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let t = Instant::now();
    let r = f();
    (t.elapsed(), r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_time_is_monotonic() {
        let a = process_cpu_time();
        // Burn a little CPU.
        let mut x = 0u64;
        for i in 0..2_000_000u64 {
            x = x.wrapping_add(i * i);
        }
        std::hint::black_box(x);
        let b = process_cpu_time();
        assert!(b >= a);
    }

    #[test]
    fn median_and_mean() {
        let xs = vec![
            Duration::from_millis(3),
            Duration::from_millis(1),
            Duration::from_millis(2),
        ];
        assert_eq!(median(xs.clone()), Duration::from_millis(2));
        assert_eq!(mean(&xs), Duration::from_millis(2));
    }
}
