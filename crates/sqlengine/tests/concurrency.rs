//! Engine concurrency tests: multi-threaded sessions against one engine,
//! isolation under multi-granularity locking, and crash-safety of
//! concurrent workloads.

// Integration tests unwrap freely; hygiene lints target library code.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::sync::Arc;
use std::time::Duration;

use sqlengine::engine::{Durable, Engine};
use sqlengine::types::Value;
use sqlengine::wal::recovery::RecoveryConfig;
use sqlengine::Error;

fn engine() -> (Durable, Arc<Engine>) {
    let durable = Durable::new(Default::default());
    let e = Arc::new(Engine::recover(&durable, RecoveryConfig::default()).unwrap());
    (durable, e)
}

#[test]
fn concurrent_pk_writers_do_not_interfere() {
    let (_d, e) = engine();
    let sid = e.create_session().unwrap();
    e.execute(sid, "CREATE TABLE c (k INT PRIMARY KEY, n INT)")
        .unwrap();
    let vals: Vec<String> = (0..32).map(|k| format!("({k}, 0)")).collect();
    e.execute(sid, &format!("INSERT INTO c VALUES {}", vals.join(",")))
        .unwrap();

    let threads = 8;
    let bumps_per_thread = 50;
    let mut handles = Vec::new();
    for t in 0..threads {
        let e2 = Arc::clone(&e);
        handles.push(std::thread::spawn(move || {
            let sid = e2.create_session().unwrap();
            for i in 0..bumps_per_thread {
                let k = (t * 4 + i) % 32;
                loop {
                    match e2.execute(sid, &format!("UPDATE c SET n = n + 1 WHERE k = {k}")) {
                        Ok(_) => break,
                        Err(Error::Deadlock) => continue,
                        Err(e) => panic!("{e}"),
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let (_, rows) = e.execute_collect(sid, "SELECT SUM(n) FROM c").unwrap();
    assert_eq!(rows[0][0], Value::Int((threads * bumps_per_thread) as i64));
}

#[test]
fn readers_see_only_committed_state() {
    let (_d, e) = engine();
    let writer = e.create_session().unwrap();
    let reader = e.create_session().unwrap();
    e.execute(writer, "CREATE TABLE iso (k INT PRIMARY KEY, v INT)")
        .unwrap();
    e.execute(writer, "INSERT INTO iso VALUES (1, 10)").unwrap();

    // Writer holds an uncommitted update (row X lock under IX).
    e.execute(writer, "BEGIN TRAN").unwrap();
    e.execute(writer, "UPDATE iso SET v = 99 WHERE k = 1")
        .unwrap();

    // A younger reader's full scan needs table S, which conflicts with the
    // writer's IX → wait-die kills it rather than show dirty data.
    let r = e.execute_collect(reader, "SELECT v FROM iso");
    assert!(matches!(r, Err(Error::Deadlock)), "got {r:?}");

    e.execute(writer, "ROLLBACK").unwrap();
    let (_, rows) = e.execute_collect(reader, "SELECT v FROM iso").unwrap();
    assert_eq!(rows[0][0], Value::Int(10), "rollback restored the value");
}

#[test]
fn point_read_blocks_only_on_the_locked_row() {
    let (_d, e) = engine();
    let writer = e.create_session().unwrap();
    let reader = e.create_session().unwrap();
    e.execute(writer, "CREATE TABLE p (k INT PRIMARY KEY, v INT)")
        .unwrap();
    e.execute(writer, "INSERT INTO p VALUES (1, 10), (2, 20)")
        .unwrap();

    e.execute(writer, "BEGIN TRAN").unwrap();
    e.execute(writer, "UPDATE p SET v = 11 WHERE k = 1")
        .unwrap();

    // A point read of a DIFFERENT row proceeds (IS + row S on k=2).
    let (_, rows) = e
        .execute_collect(reader, "SELECT v FROM p WHERE k = 2")
        .unwrap();
    assert_eq!(rows[0][0], Value::Int(20));
    // The locked row's point read conflicts.
    assert!(matches!(
        e.execute_collect(reader, "SELECT v FROM p WHERE k = 1"),
        Err(Error::Deadlock)
    ));
    e.execute(writer, "COMMIT").unwrap();
    let (_, rows) = e
        .execute_collect(reader, "SELECT v FROM p WHERE k = 1")
        .unwrap();
    assert_eq!(rows[0][0], Value::Int(11));
}

#[test]
fn concurrent_inserts_then_crash_recovers_all_committed() {
    let durable = Durable::new(Default::default());
    {
        let e = Arc::new(Engine::recover(&durable, RecoveryConfig::default()).unwrap());
        let sid = e.create_session().unwrap();
        e.execute(sid, "CREATE TABLE bulk (k INT PRIMARY KEY)")
            .unwrap();
        let mut handles = Vec::new();
        for t in 0..6 {
            let e2 = Arc::clone(&e);
            handles.push(std::thread::spawn(move || {
                let sid = e2.create_session().unwrap();
                for i in 0..100 {
                    let k = t * 1000 + i;
                    e2.execute(sid, &format!("INSERT INTO bulk VALUES ({k})"))
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        durable.fence(); // crash without checkpoint
    }
    let e = Engine::recover(&durable, RecoveryConfig::default()).unwrap();
    let sid = e.create_session().unwrap();
    let (_, rows) = e.execute_collect(sid, "SELECT COUNT(*) FROM bulk").unwrap();
    assert_eq!(rows[0][0], Value::Int(600));
    // PK index rebuilt correctly for all interleaved pages.
    for t in 0..6 {
        let (_, rows) = e
            .execute_collect(
                sid,
                &format!("SELECT k FROM bulk WHERE k = {}", t * 1000 + 57),
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
    }
}

#[test]
fn wait_die_stress_many_threads_no_hangs_or_lost_updates() {
    // 10 threads hammer 16 overlapping rows with transfer transactions
    // (two row X locks each, acquired in random order — the classic
    // deadlock shape). Wait-die must keep the system live: every victim
    // retries and eventually commits, nothing hangs, and the money
    // supply is conserved (no lost or duplicated grants).
    let (_d, e) = engine();
    let sid = e.create_session().unwrap();
    e.execute(sid, "CREATE TABLE acct (k INT PRIMARY KEY, bal INT)")
        .unwrap();
    let rows: Vec<String> = (0..16).map(|k| format!("({k}, 100)")).collect();
    e.execute(sid, &format!("INSERT INTO acct VALUES {}", rows.join(",")))
        .unwrap();

    let threads: u64 = 10;
    let transfers = 30;
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let mut handles = Vec::new();
    for t in 0..threads {
        let e2 = Arc::clone(&e);
        let done = done_tx.clone();
        handles.push(std::thread::spawn(move || {
            let sid = e2.create_session().unwrap();
            let mut seed = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t + 1);
            let mut rng = move || {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (seed >> 33) as usize
            };
            for _ in 0..transfers {
                let from = rng() % 16;
                let to = (from + 1 + rng() % 15) % 16;
                // One transfer per transaction; wait-die victims retry
                // the whole transaction, as a client would.
                loop {
                    let r = (|| {
                        e2.execute(sid, "BEGIN TRAN")?;
                        e2.execute(
                            sid,
                            &format!("UPDATE acct SET bal = bal - 1 WHERE k = {from}"),
                        )?;
                        e2.execute(
                            sid,
                            &format!("UPDATE acct SET bal = bal + 1 WHERE k = {to}"),
                        )?;
                        e2.execute(sid, "COMMIT")?;
                        Ok::<(), Error>(())
                    })();
                    match r {
                        Ok(()) => break,
                        Err(Error::Deadlock) => continue, // aborted; retry
                        Err(e) => panic!("{e}"),
                    }
                }
            }
            done.send(t).unwrap();
        }));
    }
    drop(done_tx);
    // Liveness watchdog: every worker must finish well inside the lock
    // manager's worst-case wait bound times the retry budget. A recv
    // timeout here means a waiter hung (lost notification / stuck grant).
    for _ in 0..threads {
        done_rx
            .recv_timeout(Duration::from_secs(120))
            .expect("wait-die stress worker hung");
    }
    for h in handles {
        h.join().unwrap();
    }
    let (_, rows) = e.execute_collect(sid, "SELECT SUM(bal) FROM acct").unwrap();
    assert_eq!(rows[0][0], Value::Int(1600), "transfers lost or duplicated");
    let (_, rows) = e.execute_collect(sid, "SELECT COUNT(*) FROM acct").unwrap();
    assert_eq!(rows[0][0], Value::Int(16));
}

#[test]
fn lock_waits_resolve_when_older_waits_for_younger_commit() {
    let (_d, e) = engine();
    let s1 = e.create_session().unwrap();
    e.execute(s1, "CREATE TABLE w (k INT PRIMARY KEY, v INT)")
        .unwrap();
    e.execute(s1, "INSERT INTO w VALUES (1, 0)").unwrap();

    // Younger txn takes the row lock...
    let s2 = e.create_session().unwrap();
    // (make s1's txn *older*: begin it first)
    e.execute(s1, "BEGIN TRAN").unwrap();
    e.execute(s1, "SELECT COUNT(*) FROM w").unwrap(); // S lock, establishes age
    e.execute(s2, "BEGIN TRAN").unwrap();
    let r2 = e.execute(s2, "UPDATE w SET v = 2 WHERE k = 1");
    // s2 is younger and conflicts with s1's S table lock → dies.
    assert!(matches!(r2, Err(Error::Deadlock)));
    e.execute(s1, "COMMIT").unwrap();

    // Fresh round: now the writer commits and a blocked older reader
    // completes after release.
    let e2 = Arc::clone(&e);
    let s3 = e.create_session().unwrap();
    e.execute(s3, "BEGIN TRAN").unwrap();
    e.execute(s3, "UPDATE w SET v = 3 WHERE k = 1").unwrap();
    let h = std::thread::spawn(move || {
        let s4 = e2.create_session().unwrap();
        // Point-read the row: waits grace, then dies or (after commit)
        // succeeds. Retry loop models the client.
        loop {
            match e2.execute_collect(s4, "SELECT v FROM w WHERE k = 1") {
                Ok((_, rows)) => return rows[0][0].clone(),
                Err(Error::Deadlock) => continue,
                Err(e) => panic!("{e}"),
            }
        }
    });
    std::thread::sleep(Duration::from_millis(50));
    e.execute(s3, "COMMIT").unwrap();
    assert_eq!(h.join().unwrap(), Value::Int(3));
}
