//! SQL conformance tests: many small, targeted checks of dialect
//! semantics — three-valued logic, coercions, aggregates over edge cases,
//! join varieties, subquery strategies, ORDER BY forms, DDL behaviour.

// Integration tests unwrap freely; hygiene lints target library code.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use sqlengine::engine::{Durable, Engine};
use sqlengine::session::SessionId;
use sqlengine::types::Value;
use sqlengine::wal::recovery::RecoveryConfig;
use sqlengine::{Error, Row};

fn engine() -> (Engine, SessionId) {
    let durable = Durable::new(Default::default());
    let e = Engine::recover(&durable, RecoveryConfig::default()).unwrap();
    std::mem::forget(durable);
    let sid = e.create_session().unwrap();
    (e, sid)
}

fn q(e: &Engine, sid: SessionId, sql: &str) -> Vec<Row> {
    e.execute_collect(sid, sql)
        .unwrap_or_else(|err| panic!("{sql}: {err}"))
        .1
}

fn one(e: &Engine, sid: SessionId, sql: &str) -> Value {
    q(e, sid, sql)[0][0].clone()
}

fn setup_people(e: &Engine, sid: SessionId) {
    e.execute(
        sid,
        "CREATE TABLE people (id INT PRIMARY KEY, name VARCHAR(20), age INT, city VARCHAR(20))",
    )
    .unwrap();
    e.execute(
        sid,
        "INSERT INTO people VALUES \
         (1, 'ann', 30, 'oslo'), (2, 'bob', NULL, 'rome'), (3, 'cal', 25, 'oslo'), \
         (4, 'dee', 35, NULL), (5, 'eli', 25, 'rome')",
    )
    .unwrap();
}

#[test]
fn null_three_valued_logic() {
    let (e, sid) = engine();
    setup_people(&e, sid);
    // NULL comparisons never match.
    assert_eq!(
        q(&e, sid, "SELECT id FROM people WHERE age = NULL").len(),
        0
    );
    assert_eq!(
        q(&e, sid, "SELECT id FROM people WHERE age <> NULL").len(),
        0
    );
    // IS NULL / IS NOT NULL.
    assert_eq!(
        q(&e, sid, "SELECT id FROM people WHERE age IS NULL").len(),
        1
    );
    assert_eq!(
        q(&e, sid, "SELECT id FROM people WHERE age IS NOT NULL").len(),
        4
    );
    // NULL in OR/AND.
    assert_eq!(
        q(
            &e,
            sid,
            "SELECT id FROM people WHERE age > 100 OR city = 'oslo'"
        )
        .len(),
        2
    );
    // NOT(NULL) is NULL → filtered.
    assert_eq!(
        q(&e, sid, "SELECT id FROM people WHERE NOT (age > 0)").len(),
        0
    );
}

#[test]
fn in_list_null_semantics() {
    let (e, sid) = engine();
    setup_people(&e, sid);
    // x IN (..., NULL): unknown unless matched.
    assert_eq!(
        q(&e, sid, "SELECT id FROM people WHERE age IN (30, NULL)").len(),
        1
    );
    // x NOT IN (..., NULL): never true.
    assert_eq!(
        q(&e, sid, "SELECT id FROM people WHERE age NOT IN (30, NULL)").len(),
        0
    );
}

#[test]
fn between_and_negations() {
    let (e, sid) = engine();
    setup_people(&e, sid);
    assert_eq!(
        q(&e, sid, "SELECT id FROM people WHERE age BETWEEN 25 AND 30").len(),
        3
    );
    assert_eq!(
        q(
            &e,
            sid,
            "SELECT id FROM people WHERE age NOT BETWEEN 25 AND 30"
        )
        .len(),
        1 // dee(35); bob's NULL is unknown
    );
}

#[test]
fn arithmetic_and_division_by_zero() {
    let (e, sid) = engine();
    assert_eq!(one(&e, sid, "SELECT 2 + 3 * 4"), Value::Int(14));
    assert_eq!(one(&e, sid, "SELECT (2 + 3) * 4"), Value::Int(20));
    assert_eq!(one(&e, sid, "SELECT 7 % 3"), Value::Int(1));
    assert_eq!(one(&e, sid, "SELECT 1 / 0"), Value::Null);
    assert_eq!(one(&e, sid, "SELECT 10 / 4"), Value::Float(2.5));
    assert_eq!(one(&e, sid, "SELECT -5"), Value::Int(-5));
    assert_eq!(one(&e, sid, "SELECT 1 + NULL"), Value::Null);
}

#[test]
fn string_functions() {
    let (e, sid) = engine();
    assert_eq!(
        one(&e, sid, "SELECT SUBSTRING('hello world', 1, 5)"),
        Value::Str("hello".into())
    );
    assert_eq!(
        one(&e, sid, "SELECT SUBSTRING('hello', 4, 10)"),
        Value::Str("lo".into())
    );
    assert_eq!(
        one(&e, sid, "SELECT UPPER('abC')"),
        Value::Str("ABC".into())
    );
    assert_eq!(
        one(&e, sid, "SELECT LOWER('AbC')"),
        Value::Str("abc".into())
    );
    assert_eq!(one(&e, sid, "SELECT ABS(-7)"), Value::Int(7));
    assert_eq!(one(&e, sid, "SELECT ROUND(3.456, 1)"), Value::Float(3.5));
    assert_eq!(
        one(&e, sid, "SELECT YEAR(DATE '1998-12-01')"),
        Value::Int(1998)
    );
}

#[test]
fn case_expressions() {
    let (e, sid) = engine();
    setup_people(&e, sid);
    let rows = q(
        &e,
        sid,
        "SELECT name, CASE WHEN age >= 30 THEN 'old' WHEN age IS NULL THEN 'unknown' \
         ELSE 'young' END FROM people ORDER BY id",
    );
    let labels: Vec<&str> = rows.iter().map(|r| r[1].as_str().unwrap()).collect();
    assert_eq!(labels, vec!["old", "unknown", "young", "old", "young"]);
    // CASE without ELSE yields NULL.
    assert_eq!(
        one(&e, sid, "SELECT CASE WHEN 0 = 1 THEN 5 END"),
        Value::Null
    );
}

#[test]
fn order_by_forms() {
    let (e, sid) = engine();
    setup_people(&e, sid);
    // By alias.
    let rows = q(
        &e,
        sid,
        "SELECT id, age * 2 AS dbl FROM people WHERE age IS NOT NULL ORDER BY dbl DESC, id",
    );
    assert_eq!(rows[0][0], Value::Int(4));
    // By ordinal.
    let rows = q(&e, sid, "SELECT name, age FROM people ORDER BY 1 DESC");
    assert_eq!(rows[0][0], Value::Str("eli".into()));
    // NULLs sort first ascending.
    let rows = q(&e, sid, "SELECT age FROM people ORDER BY age");
    assert_eq!(rows[0][0], Value::Null);
}

#[test]
fn distinct_and_top_interaction() {
    let (e, sid) = engine();
    setup_people(&e, sid);
    assert_eq!(q(&e, sid, "SELECT DISTINCT city FROM people").len(), 3); // oslo, rome, NULL
    let rows = q(
        &e,
        sid,
        "SELECT DISTINCT TOP 2 age FROM people ORDER BY age DESC",
    );
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][0], Value::Int(35));
}

#[test]
fn aggregates_edge_cases() {
    let (e, sid) = engine();
    setup_people(&e, sid);
    // Aggregates skip NULLs; AVG over non-null ages.
    assert_eq!(one(&e, sid, "SELECT COUNT(age) FROM people"), Value::Int(4));
    assert_eq!(one(&e, sid, "SELECT COUNT(*) FROM people"), Value::Int(5));
    assert_eq!(
        one(&e, sid, "SELECT AVG(age) FROM people"),
        Value::Float((30 + 25 + 35 + 25) as f64 / 4.0)
    );
    assert_eq!(
        one(&e, sid, "SELECT COUNT(DISTINCT age) FROM people"),
        Value::Int(3)
    );
    assert_eq!(
        one(&e, sid, "SELECT MIN(name) FROM people"),
        Value::Str("ann".into())
    );
    // Expression over multiple aggregates.
    assert_eq!(
        one(&e, sid, "SELECT MAX(age) - MIN(age) FROM people"),
        Value::Int(10)
    );
    // Group on nullable column: NULL forms its own group.
    let rows = q(
        &e,
        sid,
        "SELECT city, COUNT(*) FROM people GROUP BY city ORDER BY city",
    );
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0][0], Value::Null);
}

#[test]
fn group_by_expression_and_having_without_aggregate() {
    let (e, sid) = engine();
    setup_people(&e, sid);
    let rows = q(
        &e,
        sid,
        "SELECT age % 2, COUNT(*) FROM people WHERE age IS NOT NULL \
         GROUP BY age % 2 ORDER BY 1",
    );
    assert_eq!(rows.len(), 2);
    // HAVING referencing a group key.
    let rows = q(
        &e,
        sid,
        "SELECT city, COUNT(*) AS n FROM people GROUP BY city HAVING city = 'oslo'",
    );
    assert_eq!(rows.len(), 1);
}

#[test]
fn joins_inner_outer_self() {
    let (e, sid) = engine();
    e.execute(sid, "CREATE TABLE a (x INT PRIMARY KEY)")
        .unwrap();
    e.execute(sid, "CREATE TABLE b (y INT PRIMARY KEY)")
        .unwrap();
    e.execute(sid, "INSERT INTO a VALUES (1), (2), (3)")
        .unwrap();
    e.execute(sid, "INSERT INTO b VALUES (2), (3), (4)")
        .unwrap();
    // Inner join via JOIN..ON.
    assert_eq!(
        q(&e, sid, "SELECT x FROM a JOIN b ON x = y ORDER BY x").len(),
        2
    );
    // Left outer.
    let rows = q(
        &e,
        sid,
        "SELECT x, y FROM a LEFT JOIN b ON x = y ORDER BY x",
    );
    assert_eq!(rows[0], vec![Value::Int(1), Value::Null]);
    // Cartesian via comma join without predicate.
    assert_eq!(q(&e, sid, "SELECT x, y FROM a, b").len(), 9);
    // Self join with aliases.
    let rows = q(
        &e,
        sid,
        "SELECT a1.x, a2.x FROM a a1, a a2 WHERE a1.x < a2.x ORDER BY a1.x, a2.x",
    );
    assert_eq!(rows.len(), 3);
}

#[test]
fn non_equi_join_condition() {
    let (e, sid) = engine();
    e.execute(sid, "CREATE TABLE lo (v INT)").unwrap();
    e.execute(sid, "CREATE TABLE hi (w INT)").unwrap();
    e.execute(sid, "INSERT INTO lo VALUES (1), (5)").unwrap();
    e.execute(sid, "INSERT INTO hi VALUES (3), (7)").unwrap();
    let rows = q(
        &e,
        sid,
        "SELECT v, w FROM lo JOIN hi ON v < w ORDER BY v, w",
    );
    assert_eq!(rows.len(), 3);
}

#[test]
fn subquery_strategies() {
    let (e, sid) = engine();
    e.execute(sid, "CREATE TABLE dept (d INT PRIMARY KEY, budget INT)")
        .unwrap();
    e.execute(sid, "CREATE TABLE emp (id INT PRIMARY KEY, d INT, sal INT)")
        .unwrap();
    e.execute(sid, "INSERT INTO dept VALUES (1, 100), (2, 200), (3, 50)")
        .unwrap();
    e.execute(
        sid,
        "INSERT INTO emp VALUES (1, 1, 30), (2, 1, 40), (3, 2, 90), (4, 2, 10)",
    )
    .unwrap();
    // Uncorrelated scalar.
    assert_eq!(
        q(
            &e,
            sid,
            "SELECT d FROM dept WHERE budget > (SELECT AVG(budget) FROM dept)"
        )
        .len(),
        1
    );
    // Correlated scalar aggregate (decorrelated path).
    let rows = q(
        &e,
        sid,
        "SELECT d FROM dept WHERE budget > (SELECT SUM(sal) FROM emp WHERE emp.d = dept.d) \
         ORDER BY d",
    );
    assert_eq!(rows.len(), 2); // dept1: 100>70 ✓, dept2: 200>100 ✓, dept3: NULL → unknown
                               // Correlated EXISTS with a residual predicate referencing the outer row.
    let rows = q(
        &e,
        sid,
        "SELECT d FROM dept WHERE EXISTS (SELECT 1 FROM emp WHERE emp.d = dept.d AND sal > budget / 3)",
    );
    assert_eq!(rows.len(), 2); // dept1 (40 > 33.3), dept2 (90 > 66.7)
                               // NOT EXISTS.
    assert_eq!(
        q(
            &e,
            sid,
            "SELECT d FROM dept WHERE NOT EXISTS (SELECT 1 FROM emp WHERE emp.d = dept.d)"
        )
        .len(),
        1 // dept3
    );
    // IN subquery.
    assert_eq!(
        q(
            &e,
            sid,
            "SELECT id FROM emp WHERE d IN (SELECT d FROM dept WHERE budget >= 100)"
        )
        .len(),
        4
    );
    // Derived table + join.
    let rows = q(
        &e,
        sid,
        "SELECT dept.d, t.total FROM dept, \
         (SELECT d AS dd, SUM(sal) AS total FROM emp GROUP BY d) t \
         WHERE dept.d = t.dd ORDER BY dept.d",
    );
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][1], Value::Int(70));
}

#[test]
fn qualified_wildcard_and_ambiguity() {
    let (e, sid) = engine();
    e.execute(sid, "CREATE TABLE t1 (a INT, shared INT)")
        .unwrap();
    e.execute(sid, "CREATE TABLE t2 (b INT, shared INT)")
        .unwrap();
    e.execute(sid, "INSERT INTO t1 VALUES (1, 10)").unwrap();
    e.execute(sid, "INSERT INTO t2 VALUES (2, 20)").unwrap();
    let (schema, rows) = e.execute_collect(sid, "SELECT t2.* FROM t1, t2").unwrap();
    assert_eq!(schema.len(), 2);
    assert_eq!(rows[0], vec![Value::Int(2), Value::Int(20)]);
    // Ambiguous unqualified reference errors.
    let err = e.execute(sid, "SELECT shared FROM t1, t2");
    assert!(matches!(err, Err(Error::Semantic(_))));
    // Qualified disambiguation works.
    assert_eq!(one(&e, sid, "SELECT t1.shared FROM t1, t2"), Value::Int(10));
}

#[test]
fn coercion_on_insert_and_compare() {
    let (e, sid) = engine();
    e.execute(sid, "CREATE TABLE c (f FLOAT, d DATE, s VARCHAR(10))")
        .unwrap();
    e.execute(sid, "INSERT INTO c VALUES (5, '1996-03-04', 'x')")
        .unwrap();
    assert_eq!(one(&e, sid, "SELECT f FROM c"), Value::Float(5.0));
    assert_eq!(
        q(&e, sid, "SELECT s FROM c WHERE d = '1996-03-04'").len(),
        1
    );
    assert_eq!(
        q(
            &e,
            sid,
            "SELECT s FROM c WHERE d >= DATE '1996-01-01' AND d < DATE '1997-01-01'"
        )
        .len(),
        1
    );
    // Date arithmetic.
    assert_eq!(
        one(&e, sid, "SELECT YEAR(d + 365) FROM c"),
        Value::Int(1997)
    );
}

#[test]
fn ddl_semantics() {
    let (e, sid) = engine();
    e.execute(sid, "CREATE TABLE d (a INT)").unwrap();
    assert!(matches!(
        e.execute(sid, "CREATE TABLE d (a INT)"),
        Err(Error::AlreadyExists(_))
    ));
    e.execute(sid, "DROP TABLE d").unwrap();
    assert!(matches!(
        e.execute(sid, "DROP TABLE d"),
        Err(Error::NotFound(_))
    ));
    e.execute(sid, "DROP TABLE IF EXISTS d").unwrap();
    // Recreate after drop works and is empty.
    e.execute(sid, "CREATE TABLE d (a INT)").unwrap();
    assert_eq!(q(&e, sid, "SELECT * FROM d").len(), 0);
}

#[test]
fn update_changing_pk_and_not_null() {
    let (e, sid) = engine();
    e.execute(
        sid,
        "CREATE TABLE u (k INT PRIMARY KEY, v VARCHAR(5) NOT NULL)",
    )
    .unwrap();
    e.execute(sid, "INSERT INTO u VALUES (1, 'a'), (2, 'b')")
        .unwrap();
    // PK update via full-scan path.
    e.execute(sid, "UPDATE u SET k = 10 WHERE k = 1").unwrap();
    assert_eq!(q(&e, sid, "SELECT v FROM u WHERE k = 10").len(), 1);
    // NOT NULL enforced.
    assert!(e.execute(sid, "INSERT INTO u VALUES (3, NULL)").is_err());
    // PK collision on update rejected and rolled back.
    assert!(matches!(
        e.execute(sid, "UPDATE u SET k = 2 WHERE k = 10"),
        Err(Error::DuplicateKey(_))
    ));
    assert_eq!(q(&e, sid, "SELECT * FROM u WHERE k = 10").len(), 1);
}

#[test]
fn insert_column_subset_fills_nulls() {
    let (e, sid) = engine();
    e.execute(sid, "CREATE TABLE s (a INT, b INT, c VARCHAR(5))")
        .unwrap();
    e.execute(sid, "INSERT INTO s (c, a) VALUES ('x', 1)")
        .unwrap();
    let rows = q(&e, sid, "SELECT a, b, c FROM s");
    assert_eq!(
        rows[0],
        vec![Value::Int(1), Value::Null, Value::Str("x".into())]
    );
}

#[test]
fn like_escaping_and_patterns() {
    let (e, sid) = engine();
    setup_people(&e, sid);
    assert_eq!(
        q(&e, sid, "SELECT id FROM people WHERE name LIKE '%o%'").len(),
        1
    );
    assert_eq!(
        q(&e, sid, "SELECT id FROM people WHERE name LIKE '_al'").len(),
        1
    );
    assert_eq!(
        q(&e, sid, "SELECT id FROM people WHERE city NOT LIKE 'o%'").len(),
        2 // rome×2; NULL city is unknown
    );
}

#[test]
fn or_factorization_preserves_semantics() {
    let (e, sid) = engine();
    e.execute(sid, "CREATE TABLE l (k INT, grp VARCHAR(2), n INT)")
        .unwrap();
    e.execute(sid, "CREATE TABLE r (k INT, m INT)").unwrap();
    e.execute(
        sid,
        "INSERT INTO l VALUES (1, 'a', 5), (1, 'b', 50), (2, 'a', 7), (3, 'b', 70)",
    )
    .unwrap();
    e.execute(sid, "INSERT INTO r VALUES (1, 1), (2, 2), (3, 3)")
        .unwrap();
    // Common equi-conjunct buried in each OR branch (Q19 shape).
    let rows = q(
        &e,
        sid,
        "SELECT l.k, grp FROM l, r WHERE \
         (l.k = r.k AND grp = 'a' AND n < 10) OR (l.k = r.k AND grp = 'b' AND n > 60) \
         ORDER BY l.k, grp",
    );
    assert_eq!(rows.len(), 3);
}

#[test]
fn stored_procedures_with_params_and_nesting() {
    let (e, sid) = engine();
    e.execute(sid, "CREATE TABLE log (msg VARCHAR(20), n INT)")
        .unwrap();
    e.execute(
        sid,
        "CREATE PROCEDURE note (@m VARCHAR(20), @n INT) AS INSERT INTO log VALUES (@m, @n)",
    )
    .unwrap();
    e.execute(sid, "EXEC note 'hello', 41").unwrap();
    e.execute(sid, "EXEC note @m = 'bye', @n = 42").unwrap();
    assert_eq!(q(&e, sid, "SELECT * FROM log").len(), 2);
    // Nested procedure call.
    e.execute(
        sid,
        "CREATE PROCEDURE outer_p (@x INT) AS EXEC note 'nested', @x",
    )
    .unwrap();
    e.execute(sid, "EXEC outer_p 7").unwrap();
    assert_eq!(
        q(&e, sid, "SELECT n FROM log WHERE msg = 'nested'")[0][0],
        Value::Int(7)
    );
    // OR REPLACE.
    e.execute(
        sid,
        "CREATE OR REPLACE PROCEDURE note (@m VARCHAR(20), @n INT) AS \
         INSERT INTO log VALUES ('replaced', @n)",
    )
    .unwrap();
    e.execute(sid, "EXEC note 'ignored', 1").unwrap();
    assert_eq!(
        q(&e, sid, "SELECT * FROM log WHERE msg = 'replaced'").len(),
        1
    );
    // Wrong arity errors.
    assert!(e.execute(sid, "EXEC note 'x'").is_err());
}

#[test]
fn select_without_from_and_empty_tables() {
    let (e, sid) = engine();
    assert_eq!(one(&e, sid, "SELECT 1 + 1"), Value::Int(2));
    e.execute(sid, "CREATE TABLE empty_t (a INT)").unwrap();
    assert_eq!(q(&e, sid, "SELECT * FROM empty_t").len(), 0);
    assert_eq!(one(&e, sid, "SELECT MAX(a) FROM empty_t"), Value::Null);
    assert_eq!(
        q(&e, sid, "SELECT a, COUNT(*) FROM empty_t GROUP BY a").len(),
        0
    );
}

#[test]
fn top_zero_and_large() {
    let (e, sid) = engine();
    setup_people(&e, sid);
    assert_eq!(q(&e, sid, "SELECT TOP 0 * FROM people").len(), 0);
    assert_eq!(q(&e, sid, "SELECT TOP 99 * FROM people").len(), 5);
    assert_eq!(q(&e, sid, "SELECT * FROM people LIMIT 2").len(), 2);
}
