//! Write-ahead log: record format, durable store, and the log manager.
//!
//! LSNs are byte offsets of record starts in the global log stream. The
//! durable [`LogStore`] survives simulated crashes (it lives in the server's
//! durable half); the [`LogManager`] adds a volatile tail that is lost on
//! crash, which is exactly what makes the WAL flush rule observable in
//! recovery tests.

use bytes::{Buf, BufMut};
use faultkit::disk::{DiskDevice, DiskFault, DiskOp, DiskPlan, DiskSchedule};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{Error, Result};
use crate::schema::{decode_schema, encode_schema, get_str, put_str, TableSchema};
use crate::storage::checksum;

/// Bytes of framing before each record payload: `[u32 len][u32 crc]`,
/// with `crc = crc32(payload ++ lsn)` so a record that slid within the
/// stream (a lying fsync dropped its predecessor) fails verification.
const FRAME_HEADER: usize = 8;

/// Log sequence number: byte offset of the record in the log stream.
pub type Lsn = u64;

/// Transaction identifier (monotonically increasing; doubles as age for
/// wait-die deadlock handling).
pub type TxnId = u64;

/// Undo/CLR physical action kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClrAction {
    /// Undo of an insert: tombstone the slot.
    Tombstone,
    /// Undo of a delete: clear the tombstone.
    Untombstone,
}

/// A WAL record.
#[allow(missing_docs)] // fields are the standard (txn, table, page, slot) tuple
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    Begin {
        txn: TxnId,
    },
    Commit {
        txn: TxnId,
    },
    Abort {
        txn: TxnId,
    },
    /// Row inserted at (page, slot) with the given encoded bytes.
    Insert {
        txn: TxnId,
        table: u32,
        page: u32,
        slot: u16,
        data: Vec<u8>,
    },
    /// Row at (page, slot) tombstoned. The bytes stay in the page, so no
    /// before-image is needed for undo.
    Delete {
        txn: TxnId,
        table: u32,
        page: u32,
        slot: u16,
    },
    /// Top action: page appended to a table's page list. Survives even if
    /// the allocating transaction aborts (it is just an empty page).
    AllocPage {
        table: u32,
        page: u32,
    },
    /// Top action: DDL, applied unconditionally (idempotently) at redo.
    CreateTable {
        table_id: u32,
        schema: TableSchema,
    },
    DropTable {
        table_id: u32,
    },
    CreateProc {
        name: String,
        body: String,
    },
    DropProc {
        name: String,
    },
    /// Compensation record written while undoing `undoes`.
    Clr {
        txn: TxnId,
        undoes: Lsn,
        action: ClrAction,
        table: u32,
        page: u32,
        slot: u16,
    },
    /// Quiesced checkpoint: catalog snapshot bytes (see `catalog::snapshot`).
    Checkpoint {
        snapshot: Vec<u8>,
    },
}

impl LogRecord {
    /// Append the record's binary encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            LogRecord::Begin { txn } => {
                out.put_u8(0);
                out.put_u64(*txn);
            }
            LogRecord::Commit { txn } => {
                out.put_u8(1);
                out.put_u64(*txn);
            }
            LogRecord::Abort { txn } => {
                out.put_u8(2);
                out.put_u64(*txn);
            }
            LogRecord::Insert {
                txn,
                table,
                page,
                slot,
                data,
            } => {
                out.put_u8(3);
                out.put_u64(*txn);
                out.put_u32(*table);
                out.put_u32(*page);
                out.put_u16(*slot);
                out.put_u32(data.len() as u32);
                out.put_slice(data);
            }
            LogRecord::Delete {
                txn,
                table,
                page,
                slot,
            } => {
                out.put_u8(4);
                out.put_u64(*txn);
                out.put_u32(*table);
                out.put_u32(*page);
                out.put_u16(*slot);
            }
            LogRecord::AllocPage { table, page } => {
                out.put_u8(5);
                out.put_u32(*table);
                out.put_u32(*page);
            }
            LogRecord::CreateTable { table_id, schema } => {
                out.put_u8(6);
                out.put_u32(*table_id);
                encode_schema(schema, out);
            }
            LogRecord::DropTable { table_id } => {
                out.put_u8(7);
                out.put_u32(*table_id);
            }
            LogRecord::CreateProc { name, body } => {
                out.put_u8(8);
                put_str(out, name);
                put_str(out, body);
            }
            LogRecord::DropProc { name } => {
                out.put_u8(9);
                put_str(out, name);
            }
            LogRecord::Clr {
                txn,
                undoes,
                action,
                table,
                page,
                slot,
            } => {
                out.put_u8(10);
                out.put_u64(*txn);
                out.put_u64(*undoes);
                out.put_u8(match action {
                    ClrAction::Tombstone => 0,
                    ClrAction::Untombstone => 1,
                });
                out.put_u32(*table);
                out.put_u32(*page);
                out.put_u16(*slot);
            }
            LogRecord::Checkpoint { snapshot } => {
                out.put_u8(11);
                out.put_u32(snapshot.len() as u32);
                out.put_slice(snapshot);
            }
        }
    }

    /// Decode one record, advancing `buf`.
    pub fn decode(buf: &mut &[u8]) -> Result<LogRecord> {
        let corrupt = || Error::Corruption {
            device: "wal".into(),
            detail: "corrupt log record".into(),
        };
        if buf.remaining() < 1 {
            return Err(corrupt());
        }
        let tag = buf.get_u8();
        macro_rules! need {
            ($n:expr) => {
                if buf.remaining() < $n {
                    return Err(corrupt());
                }
            };
        }
        Ok(match tag {
            0 => {
                need!(8);
                LogRecord::Begin { txn: buf.get_u64() }
            }
            1 => {
                need!(8);
                LogRecord::Commit { txn: buf.get_u64() }
            }
            2 => {
                need!(8);
                LogRecord::Abort { txn: buf.get_u64() }
            }
            3 => {
                need!(8 + 4 + 4 + 2 + 4);
                let txn = buf.get_u64();
                let table = buf.get_u32();
                let page = buf.get_u32();
                let slot = buf.get_u16();
                let len = buf.get_u32() as usize;
                need!(len);
                let data = buf.get(..len).ok_or_else(corrupt)?.to_vec();
                buf.advance(len);
                LogRecord::Insert {
                    txn,
                    table,
                    page,
                    slot,
                    data,
                }
            }
            4 => {
                need!(8 + 4 + 4 + 2);
                LogRecord::Delete {
                    txn: buf.get_u64(),
                    table: buf.get_u32(),
                    page: buf.get_u32(),
                    slot: buf.get_u16(),
                }
            }
            5 => {
                need!(8);
                LogRecord::AllocPage {
                    table: buf.get_u32(),
                    page: buf.get_u32(),
                }
            }
            6 => {
                need!(4);
                let table_id = buf.get_u32();
                let schema = decode_schema(buf)?;
                LogRecord::CreateTable { table_id, schema }
            }
            7 => {
                need!(4);
                LogRecord::DropTable {
                    table_id: buf.get_u32(),
                }
            }
            8 => LogRecord::CreateProc {
                name: get_str(buf)?,
                body: get_str(buf)?,
            },
            9 => LogRecord::DropProc {
                name: get_str(buf)?,
            },
            10 => {
                need!(8 + 8 + 1 + 4 + 4 + 2);
                let txn = buf.get_u64();
                let undoes = buf.get_u64();
                let action = match buf.get_u8() {
                    0 => ClrAction::Tombstone,
                    1 => ClrAction::Untombstone,
                    _ => return Err(corrupt()),
                };
                LogRecord::Clr {
                    txn,
                    undoes,
                    action,
                    table: buf.get_u32(),
                    page: buf.get_u32(),
                    slot: buf.get_u16(),
                }
            }
            11 => {
                need!(4);
                let len = buf.get_u32() as usize;
                need!(len);
                let snapshot = buf.get(..len).ok_or_else(corrupt)?.to_vec();
                buf.advance(len);
                LogRecord::Checkpoint { snapshot }
            }
            _ => return Err(corrupt()),
        })
    }

    /// The transaction this record belongs to, if any.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            LogRecord::Begin { txn }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn }
            | LogRecord::Insert { txn, .. }
            | LogRecord::Delete { txn, .. }
            | LogRecord::Clr { txn, .. } => Some(*txn),
            _ => None,
        }
    }
}

/// Durable log bytes plus the checkpoint master record. Survives crashes.
pub struct LogStore {
    durable: Mutex<Vec<u8>>,
    /// LSN of the most recent checkpoint record ("master record").
    checkpoint_lsn: AtomicU64,
    /// Whether any checkpoint has been taken.
    has_checkpoint: AtomicU64,
    /// Writer-fencing epoch (see `MemDisk`): bumped on simulated crash so
    /// a dead incarnation's log flushes cannot interleave with the
    /// recovered server's appends.
    epoch: AtomicU64,
    /// Injected fault schedule for the log device. Lives with the store
    /// (the disk is faulty, not the process) so it survives simulated
    /// crashes. Never held across another lock.
    faults: Mutex<Option<DiskSchedule>>,
}

/// One step of a frame scan over the durable byte stream.
enum Frame<'a> {
    /// Clean end of stream at this position.
    End,
    /// An incomplete frame runs past the end of the durable bytes — the
    /// signature of a torn (never-acknowledged) append.
    Torn,
    /// A complete, CRC-verified record payload; `next` is the following
    /// frame's offset.
    Rec { payload: &'a [u8], next: usize },
}

/// Parse and verify the frame starting at `pos`. CRC or framing damage
/// *within* the durable stream is [`Error::Corruption`]; only an
/// incomplete frame at the very end classifies as torn.
fn scan_frame(data: &[u8], pos: usize) -> Result<Frame<'_>> {
    if pos >= data.len() {
        return Ok(Frame::End);
    }
    let header = data
        .get(pos..pos + FRAME_HEADER)
        .and_then(|b| <[u8; FRAME_HEADER]>::try_from(b).ok());
    let Some(header) = header else {
        return Ok(Frame::Torn);
    };
    // lint:allow(index): header is a fixed [u8; 8]; indices 0..8 are always in range
    let len = u32::from_be_bytes([header[0], header[1], header[2], header[3]]) as usize;
    // lint:allow(index): header is a fixed [u8; 8]; indices 0..8 are always in range
    let crc = u32::from_be_bytes([header[4], header[5], header[6], header[7]]);
    let Some(payload) = data.get(pos + FRAME_HEADER..pos + FRAME_HEADER + len) else {
        return Ok(Frame::Torn);
    };
    if checksum::wal_record_crc(payload, pos as u64) != crc {
        return Err(Error::Corruption {
            device: "wal".into(),
            detail: format!("record crc mismatch at lsn {pos}"),
        });
    }
    Ok(Frame::Rec {
        payload,
        next: pos + FRAME_HEADER + len,
    })
}

impl Default for LogStore {
    fn default() -> Self {
        Self::new()
    }
}

impl LogStore {
    /// Empty durable log.
    pub fn new() -> Self {
        LogStore {
            durable: Mutex::new(Vec::new()),
            checkpoint_lsn: AtomicU64::new(0),
            has_checkpoint: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            faults: Mutex::new(None),
        }
    }

    /// Install (or clear) a storage fault schedule for the log device.
    pub fn set_fault_plan(&self, plan: Option<DiskPlan>) {
        *self.faults.lock() = plan.map(|p| p.schedule(DiskDevice::Wal));
    }

    /// Draw the next injected fault for a log flush. The guard is
    /// scoped: the draw never overlaps the `durable` lock.
    fn draw_fault(&self) -> Option<DiskFault> {
        faultkit::crashpoint!("disk.wal.flush");
        let fault = self
            .faults
            .lock()
            .as_mut()
            .and_then(|s| s.next_fault(DiskOp::Flush));
        if let Some(f) = fault {
            obskit::metrics::global()
                .counter("storage.fault.injected")
                .incr();
            obskit::event!("disk.fault.inject", "wal {}", f.kind().name());
        }
        fault
    }

    /// Bytes durably written (= next LSN a fresh manager will use).
    pub fn durable_len(&self) -> u64 {
        self.durable.lock().len() as u64
    }

    /// Current writer epoch (see `MemDisk` fencing).
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Fence off all writers of earlier epochs (simulated crash).
    pub fn bump_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Record the master checkpoint pointer.
    pub fn set_checkpoint(&self, lsn: Lsn) {
        self.checkpoint_lsn.store(lsn, Ordering::SeqCst);
        self.has_checkpoint.store(1, Ordering::SeqCst);
    }

    /// The last checkpoint's LSN, if any checkpoint was taken.
    pub fn checkpoint(&self) -> Option<Lsn> {
        if self.has_checkpoint.load(Ordering::SeqCst) == 1 {
            Some(self.checkpoint_lsn.load(Ordering::SeqCst))
        } else {
            None
        }
    }

    /// Append flushed tail bytes at stream offset `at`. The offset check
    /// is the fsyncgate detector: if an earlier flush *lied* (claimed
    /// success, persisted nothing), the caller's stream position runs
    /// ahead of the durable bytes and the very next append surfaces the
    /// hole as [`Error::Corruption`] instead of writing a record whose
    /// framing no scan could trust.
    fn append(&self, bytes: &[u8], epoch: u64, at: u64) -> crate::error::Result<()> {
        let fault = self.draw_fault();
        if matches!(
            fault,
            Some(DiskFault::WriteErr) | Some(DiskFault::FsyncFail)
        ) {
            return Err(Error::Storage("injected log flush failure".into()));
        }
        let mut durable = self.durable.lock();
        let _lw = obskit::lockcheck::held("LogStore::durable");
        if epoch != self.current_epoch() {
            return Err(Error::ServerShutdown);
        }
        if at != durable.len() as u64 {
            return Err(Error::Corruption {
                device: "wal".into(),
                detail: format!(
                    "lost flush detected: appending at lsn {at} but durable end is {}",
                    durable.len()
                ),
            });
        }
        match fault {
            Some(DiskFault::TornWrite { frac_pm }) => {
                // Persist a strict prefix, then fail the flush: a torn
                // append is never acknowledged. Recovery truncates it.
                let split =
                    (frac_pm as usize * bytes.len() / 1000).min(bytes.len().saturating_sub(1));
                // lint:allow(index): split is clamped to < bytes.len() above
                durable.extend_from_slice(&bytes[..split]);
                Err(Error::Storage("injected torn log append".into()))
            }
            Some(DiskFault::BitFlip { offset_seed, bit }) => {
                // The flush "succeeds" with one durable bit flipped —
                // mid-log damage the next scan reports as Corruption.
                let base = durable.len();
                durable.extend_from_slice(bytes);
                if !bytes.is_empty() {
                    let off = base + (offset_seed % bytes.len() as u64) as usize;
                    if let Some(b) = durable.get_mut(off) {
                        *b ^= 1 << (bit & 7);
                    }
                }
                Ok(())
            }
            Some(DiskFault::FsyncLie) => {
                // Claim success, persist nothing. Detected by the offset
                // check on the next append (same incarnation) or lost
                // with the unflushed tail on crash.
                Ok(())
            }
            _ => {
                durable.extend_from_slice(bytes);
                Ok(())
            }
        }
    }

    /// Decode all records with LSN >= `from`, in order, verifying each
    /// record's CRC. Any framing or CRC damage — including an
    /// un-recovered torn tail — is [`Error::Corruption`]; run
    /// [`LogStore::recover_tail`] first to truncate a torn tail.
    pub fn records_from(&self, from: Lsn) -> Result<Vec<(Lsn, LogRecord)>> {
        let data = self.durable.lock();
        let _lw = obskit::lockcheck::held("LogStore::durable");
        let mut out = Vec::new();
        let mut pos = from as usize;
        loop {
            match scan_frame(&data, pos)? {
                Frame::End => break,
                Frame::Torn => {
                    return Err(Error::Corruption {
                        device: "wal".into(),
                        detail: format!("torn frame at lsn {pos}; tail not recovered"),
                    })
                }
                Frame::Rec { mut payload, next } => {
                    let rec = LogRecord::decode(&mut payload)?;
                    out.push((pos as Lsn, rec));
                    pos = next;
                }
            }
        }
        Ok(out)
    }

    /// Scan the whole durable stream and physically truncate a torn
    /// tail (the residue of a failed batched append). Returns the bytes
    /// removed. Mid-log CRC damage is *not* a tail and fails loudly
    /// with [`Error::Corruption`]: truncating there would silently
    /// discard acknowledged records.
    pub fn recover_tail(&self) -> Result<u64> {
        faultkit::crashpoint!("wal.scan");
        let mut data = self.durable.lock();
        let _lw = obskit::lockcheck::held("LogStore::durable");
        let mut pos = 0usize;
        loop {
            match scan_frame(&data, pos)? {
                Frame::End => return Ok(0),
                Frame::Torn => {
                    let torn = (data.len() - pos) as u64;
                    data.truncate(pos);
                    obskit::metrics::global().counter("wal.torn_tail").incr();
                    obskit::event!("wal.torn_tail", "truncated {torn} bytes at lsn {pos}");
                    return Ok(torn);
                }
                Frame::Rec { next, .. } => pos = next,
            }
        }
    }
}

struct Tail {
    /// Unflushed bytes; the stream offset of `buf[0]` is `base`.
    buf: Vec<u8>,
    base: u64,
}

/// Group-commit tuning (the `ServerConfig::group_commit` knob).
///
/// When enabled, committing sessions enqueue their commit LSN and park;
/// a batch leader performs one fsync covering every waiter whose record
/// is in the flushed tail. `max_wait` bounds how long the first
/// committer holds the batch open collecting company; `max_batch`
/// releases the batch early once that many commits are parked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommit {
    /// Route commits through the batching path.
    pub enabled: bool,
    /// Flush as soon as this many commits are parked.
    pub max_batch: usize,
    /// Upper bound on how long a commit waits for company before its
    /// batch flushes anyway.
    pub max_wait: Duration,
}

impl Default for GroupCommit {
    fn default() -> Self {
        GroupCommit {
            enabled: false,
            max_batch: 8,
            max_wait: Duration::from_micros(500),
        }
    }
}

impl GroupCommit {
    /// Batching on, with the given window.
    pub fn on(max_batch: usize, max_wait: Duration) -> Self {
        GroupCommit {
            enabled: true,
            max_batch: max_batch.max(1),
            max_wait,
        }
    }
}

/// Shared state of the commit batch currently forming.
struct Group {
    /// Commit LSNs parked waiting for a covering flush.
    pending: Vec<Lsn>,
    /// Whether a batch leader is currently collecting or flushing.
    leader: bool,
    /// Terminal error of a failed batch flush, broadcast to every
    /// waiter: fail-stop applies to the whole batch, never just the
    /// leader.
    dead: Option<Error>,
}

/// Outcome of one wait round on the group: either this commit's record
/// became durable, or it is this session's turn to lead a flush.
enum GroupTurn {
    Covered,
    Lead,
}

/// Volatile front end to the log: buffered appends + flush control.
///
/// **Fail-stop flushes (fsyncgate discipline).** The first flush that
/// fails for an I/O reason *poisons* the manager: every later flush
/// fails immediately instead of retrying the fsync. Retrying would
/// trust the device about which bytes of the failed flush actually
/// landed — the unsound assumption behind real-world fsyncgate bugs.
/// The poisoned server keeps failing statements until it is restarted;
/// recovery then truncates the (never-acknowledged) torn tail and
/// resumes from durable truth.
pub struct LogManager {
    store: Arc<LogStore>,
    tail: Mutex<Tail>,
    flushed: AtomicU64,
    epoch: u64,
    poisoned: AtomicBool,
    group_cfg: GroupCommit,
    group: Mutex<Group>,
    group_cv: Condvar,
}

impl LogManager {
    /// Attach a volatile tail to the durable store (group commit off).
    pub fn new(store: Arc<LogStore>) -> Self {
        Self::with_group(store, GroupCommit::default())
    }

    /// Attach a volatile tail with the given group-commit tuning.
    pub fn with_group(store: Arc<LogStore>, group_cfg: GroupCommit) -> Self {
        let base = store.durable_len();
        let epoch = store.current_epoch();
        LogManager {
            store,
            tail: Mutex::new(Tail {
                buf: Vec::new(),
                base,
            }),
            flushed: AtomicU64::new(base),
            epoch,
            poisoned: AtomicBool::new(false),
            group_cfg,
            group: Mutex::new(Group {
                pending: Vec::new(),
                leader: false,
                dead: None,
            }),
            group_cv: Condvar::new(),
        }
    }

    /// The active group-commit tuning.
    pub fn group_config(&self) -> GroupCommit {
        self.group_cfg
    }

    /// Whether a failed flush has poisoned this manager (fail-stop).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    fn poisoned_err() -> Error {
        Error::Storage("wal fail-stop: a log flush failed; restart the server to recover".into())
    }

    /// The underlying durable store.
    pub fn store(&self) -> &Arc<LogStore> {
        &self.store
    }

    /// Append a record to the volatile tail; returns its LSN.
    pub fn append(&self, rec: &LogRecord) -> Lsn {
        faultkit::crashpoint!("wal.append");
        let t_append = Instant::now();
        let mut payload = Vec::new();
        rec.encode(&mut payload);
        let mut tail = self.tail.lock();
        let _lw = obskit::lockcheck::held("LogManager::tail");
        let lsn = tail.base + tail.buf.len() as u64;
        tail.buf.put_u32(payload.len() as u32);
        tail.buf.put_u32(checksum::wal_record_crc(&payload, lsn));
        tail.buf.extend_from_slice(&payload);
        drop(tail);
        obskit::metrics::global().record("sqlengine.wal.append", t_append.elapsed());
        lsn
    }

    /// Durably flush at least through `lsn` (record start offset).
    pub fn flush_to(&self, lsn: Lsn) -> Result<()> {
        if self.covered(lsn) {
            return Ok(());
        }
        self.flush_all()
    }

    /// Whether the record starting at `lsn` is durably flushed. The tail
    /// flushes whole records, so the watermark passing a record's start
    /// offset means its entire frame landed.
    fn covered(&self, lsn: Lsn) -> bool {
        self.flushed.load(Ordering::Acquire) > lsn
    }

    /// Durably flush a commit record at `lsn`, coalescing concurrent
    /// committers into one fsync when group commit is enabled.
    ///
    /// The committing session enqueues its LSN and parks; the first
    /// session whose window expires (or that fills the batch) leads one
    /// `flush_all` covering every parked LSN. A failed batch flush is
    /// broadcast to **all** waiters via [`Group::dead`] — fail-stop
    /// semantics apply to the batch, never just the leader.
    pub fn commit_flush(&self, lsn: Lsn) -> Result<()> {
        if !self.group_cfg.enabled {
            return self.flush_to(lsn);
        }
        // Crashpoints sit outside the group lock (same discipline as
        // the tail lock): a crash action fences the durable store and
        // restarts the server on this thread, and must never deadlock
        // against the log.
        faultkit::crashpoint!("wal.group.enqueue");
        {
            let mut g = self.group.lock();
            let _lw = obskit::lockcheck::held("LogManager::group");
            if self.covered(lsn) {
                // An earlier flush (another batch, an eviction, an
                // abort) already made this commit durable: zero fsyncs.
                obskit::metrics::global()
                    .counter("wal.flush.coalesced")
                    .incr();
                return Ok(());
            }
            g.pending.push(lsn);
        }
        let deadline = Instant::now() + self.group_cfg.max_wait;
        let mut led = false;
        loop {
            match self.group_wait(lsn, deadline)? {
                GroupTurn::Covered => {
                    if !led {
                        // This commit rode a flush it did not perform.
                        obskit::metrics::global()
                            .counter("wal.flush.coalesced")
                            .incr();
                    }
                    faultkit::crashpoint!("wal.group.wake");
                    return Ok(());
                }
                GroupTurn::Lead => {
                    led = true;
                    faultkit::crashpoint!("wal.group.lead");
                    let r = self.flush_all();
                    self.leader_done(&r);
                    // Loop back: success exits via `Covered` (this
                    // commit's record was in the flushed tail), failure
                    // via the `dead` broadcast in `group_wait`.
                }
            }
        }
    }

    /// Park on the group until this commit is durable, its batch dies,
    /// or it is this session's turn to lead a flush.
    fn group_wait(&self, lsn: Lsn, deadline: Instant) -> Result<GroupTurn> {
        let mut g = self.group.lock();
        let _lw = obskit::lockcheck::held("LogManager::group");
        loop {
            // Durability wins over a concurrent batch death: if some
            // flush already covered this record, the commit is durable
            // and must ack. An error therefore means the record never
            // reached the device (fail-stop admits no later flush).
            if self.covered(lsn) {
                return Ok(GroupTurn::Covered);
            }
            if let Some(e) = &g.dead {
                let e = e.clone();
                Self::forget(&mut g, lsn);
                return Err(e);
            }
            if self.is_poisoned() {
                Self::forget(&mut g, lsn);
                return Err(Self::poisoned_err());
            }
            if !g.leader
                && (g.pending.len() >= self.group_cfg.max_batch || Instant::now() >= deadline)
            {
                g.leader = true;
                return Ok(GroupTurn::Lead);
            }
            // Ticked wait: a lost notification only delays, never
            // strands, a committer — the predicate re-check above is
            // what grants.
            self.group_cv.wait_for(&mut g, Duration::from_micros(200));
        }
    }

    /// Release batch leadership and broadcast a failed flush to every
    /// parked waiter.
    fn leader_done(&self, r: &Result<()>) {
        let mut g = self.group.lock();
        let _lw = obskit::lockcheck::held("LogManager::group");
        g.leader = false;
        if let Err(e) = r {
            if g.dead.is_none() {
                g.dead = Some(e.clone());
            }
        }
        self.group_cv.notify_all();
    }

    /// Drop a dead waiter's LSN from the pending batch.
    fn forget(g: &mut Group, lsn: Lsn) {
        if let Some(i) = g.pending.iter().position(|&l| l == lsn) {
            g.pending.swap_remove(i);
        }
    }

    /// Group-commit completion hook, run after every flush attempt:
    /// drains the parked LSNs a successful flush covered (returning the
    /// batch size) or broadcasts a failed flush to the whole batch.
    fn group_note_flush(&self, outcome: &Result<()>) -> usize {
        let mut g = self.group.lock();
        let _lw = obskit::lockcheck::held("LogManager::group");
        let batch = match outcome {
            Ok(()) => {
                let flushed = self.flushed.load(Ordering::Acquire);
                let before = g.pending.len();
                g.pending.retain(|&l| l >= flushed);
                before - g.pending.len()
            }
            Err(e) => {
                // Any flush failure is terminal for this incarnation
                // (poison or epoch fence): waiters must not sit out
                // their full window discovering that.
                if g.dead.is_none() {
                    g.dead = Some(e.clone());
                }
                0
            }
        };
        self.group_cv.notify_all();
        batch
    }

    /// Flush the whole tail. Fail-stop: the first I/O failure poisons
    /// the manager and every subsequent flush fails immediately.
    pub fn flush_all(&self) -> Result<()> {
        // Crashpoints sit outside the tail lock: a crash action fences
        // the durable store and must never deadlock against the log.
        faultkit::crashpoint!("wal.flush.pre");
        let outcome = {
            let mut tail = self.tail.lock();
            let _lw = obskit::lockcheck::held("LogManager::tail");
            if self.is_poisoned() {
                Err(Self::poisoned_err())
            } else if tail.buf.is_empty() {
                Ok(())
            } else {
                let t_flush = Instant::now();
                match self.store.append(&tail.buf, self.epoch, tail.base) {
                    Err(e) => {
                        // Epoch fencing means the server is gone, not that
                        // the device failed: don't poison for it.
                        if e != Error::ServerShutdown {
                            self.poisoned.store(true, Ordering::SeqCst);
                            obskit::metrics::global().counter("wal.poisoned").incr();
                            obskit::event!("wal.poisoned", "flush failed: {e}");
                        }
                        Err(e)
                    }
                    Ok(()) => {
                        tail.base += tail.buf.len() as u64;
                        tail.buf.clear();
                        self.flushed.store(tail.base, Ordering::Release);
                        drop(tail);
                        obskit::metrics::global().record("sqlengine.wal.flush", t_flush.elapsed());
                        Ok(())
                    }
                }
            }
        };
        // The group hook runs after every attempt, success or failure
        // (the tail guard is gone either way): a success acks every
        // parked commit the watermark now covers, a failure broadcasts
        // fail-stop to the whole batch.
        if self.group_cfg.enabled {
            let batch = self.group_note_flush(&outcome);
            if batch > 0 {
                obskit::metrics::global()
                    .histogram("wal.flush.batch_size")
                    .record(batch as u64);
                obskit::event!("wal.group.batch", "fsync covered {batch} commits");
            }
        }
        outcome?;
        faultkit::crashpoint!("wal.flush.post");
        Ok(())
    }

    /// LSN through which the log is durably flushed.
    pub fn flushed_lsn(&self) -> Lsn {
        self.flushed.load(Ordering::Acquire)
    }

    /// Next LSN that would be assigned (end of stream).
    pub fn end_lsn(&self) -> Lsn {
        let tail = self.tail.lock();
        let _lw = obskit::lockcheck::held("LogManager::tail");
        tail.base + tail.buf.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::types::DataType;

    fn all_record_kinds() -> Vec<LogRecord> {
        vec![
            LogRecord::Begin { txn: 1 },
            LogRecord::Commit { txn: 2 },
            LogRecord::Abort { txn: 3 },
            LogRecord::Insert {
                txn: 4,
                table: 5,
                page: 6,
                slot: 7,
                data: vec![1, 2, 3],
            },
            LogRecord::Delete {
                txn: 4,
                table: 5,
                page: 6,
                slot: 7,
            },
            LogRecord::AllocPage { table: 5, page: 9 },
            LogRecord::CreateTable {
                table_id: 10,
                schema: TableSchema::new("t", vec![Column::new("a", DataType::Int)])
                    .with_primary_key(vec![0]),
            },
            LogRecord::DropTable { table_id: 10 },
            LogRecord::CreateProc {
                name: "p".into(),
                body: "SELECT 1".into(),
            },
            LogRecord::DropProc { name: "p".into() },
            LogRecord::Clr {
                txn: 4,
                undoes: 123,
                action: ClrAction::Tombstone,
                table: 5,
                page: 6,
                slot: 7,
            },
            LogRecord::Checkpoint {
                snapshot: vec![9, 9, 9],
            },
        ]
    }

    #[test]
    fn record_round_trip() {
        for rec in all_record_kinds() {
            let mut buf = Vec::new();
            rec.encode(&mut buf);
            let mut slice = buf.as_slice();
            let back = LogRecord::decode(&mut slice).unwrap();
            assert_eq!(back, rec);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn append_flush_read_back() {
        let store = Arc::new(LogStore::new());
        let log = LogManager::new(Arc::clone(&store));
        let mut lsns = Vec::new();
        for rec in all_record_kinds() {
            lsns.push(log.append(&rec));
        }
        // Nothing durable before flush.
        assert_eq!(store.records_from(0).unwrap().len(), 0);
        log.flush_all().unwrap();
        let recs = store.records_from(0).unwrap();
        assert_eq!(recs.len(), all_record_kinds().len());
        for ((lsn, rec), (exp_lsn, exp)) in recs.iter().zip(lsns.iter().zip(all_record_kinds())) {
            assert_eq!(lsn, exp_lsn);
            assert_eq!(rec, &exp);
        }
    }

    #[test]
    fn unflushed_tail_lost_on_simulated_crash() {
        let store = Arc::new(LogStore::new());
        {
            let log = LogManager::new(Arc::clone(&store));
            log.append(&LogRecord::Begin { txn: 1 });
            log.flush_all().unwrap();
            log.append(&LogRecord::Commit { txn: 1 });
            // no flush — crash
        }
        let survived = store.records_from(0).unwrap();
        assert_eq!(survived.len(), 1);
        assert_eq!(survived[0].1, LogRecord::Begin { txn: 1 });
        // A new manager resumes at the durable end.
        let log2 = LogManager::new(Arc::clone(&store));
        let lsn = log2.append(&LogRecord::Commit { txn: 1 });
        assert_eq!(lsn, store.durable_len());
    }

    #[test]
    fn flush_to_is_inclusive() {
        let store = Arc::new(LogStore::new());
        let log = LogManager::new(Arc::clone(&store));
        let l1 = log.append(&LogRecord::Begin { txn: 1 });
        log.flush_to(l1).unwrap();
        assert_eq!(store.records_from(0).unwrap().len(), 1);
    }

    #[test]
    fn records_from_midpoint() {
        let store = Arc::new(LogStore::new());
        let log = LogManager::new(Arc::clone(&store));
        log.append(&LogRecord::Begin { txn: 1 });
        let l2 = log.append(&LogRecord::Begin { txn: 2 });
        log.flush_all().unwrap();
        let recs = store.records_from(l2).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].1, LogRecord::Begin { txn: 2 });
    }

    #[test]
    fn torn_append_truncates_at_recover_tail() {
        use faultkit::disk::DiskFaultKind;
        let store = Arc::new(LogStore::new());
        let log = LogManager::new(Arc::clone(&store));
        log.append(&LogRecord::Begin { txn: 1 });
        log.flush_all().unwrap();
        let clean_len = store.durable_len();

        store.set_fault_plan(Some(DiskPlan::at(DiskFaultKind::TornWrite, 1)));
        log.append(&LogRecord::Commit { txn: 1 });
        assert!(log.flush_all().is_err());
        assert!(log.is_poisoned());
        // The torn residue makes an untreated scan fail loudly...
        assert!(matches!(
            store.records_from(0),
            Err(Error::Corruption { .. })
        ));
        // ...and recover_tail removes exactly the torn bytes.
        let torn = store.recover_tail().unwrap();
        assert!(torn > 0);
        assert_eq!(store.durable_len(), clean_len);
        assert_eq!(store.records_from(0).unwrap().len(), 1);
        // Idempotent on a clean log.
        assert_eq!(store.recover_tail().unwrap(), 0);
    }

    #[test]
    fn bit_flip_is_midlog_corruption_not_tail() {
        use faultkit::disk::DiskFaultKind;
        let store = Arc::new(LogStore::new());
        let log = LogManager::new(Arc::clone(&store));
        store.set_fault_plan(Some(DiskPlan::at(DiskFaultKind::BitFlip, 1)));
        log.append(&LogRecord::Begin { txn: 1 });
        log.flush_all().unwrap(); // the flush lies about integrity
        assert!(matches!(
            store.records_from(0),
            Err(Error::Corruption { .. })
        ));
        // recover_tail must refuse to truncate acknowledged records.
        assert!(matches!(
            store.recover_tail(),
            Err(Error::Corruption { .. })
        ));
    }

    #[test]
    fn lying_fsync_detected_on_next_append() {
        use faultkit::disk::DiskFaultKind;
        let store = Arc::new(LogStore::new());
        let log = LogManager::new(Arc::clone(&store));
        store.set_fault_plan(Some(DiskPlan::at(DiskFaultKind::FsyncLie, 1)));
        log.append(&LogRecord::Begin { txn: 1 });
        log.flush_all().unwrap(); // lie: nothing landed
        assert_eq!(store.durable_len(), 0);
        log.append(&LogRecord::Commit { txn: 1 });
        let err = log.flush_all().unwrap_err();
        assert!(matches!(err, Error::Corruption { .. }), "got {err:?}");
        assert!(log.is_poisoned());
    }

    #[test]
    fn failed_flush_poisons_fail_stop() {
        use faultkit::disk::DiskFaultKind;
        let store = Arc::new(LogStore::new());
        let log = LogManager::new(Arc::clone(&store));
        store.set_fault_plan(Some(DiskPlan::at(DiskFaultKind::FsyncFail, 1)));
        log.append(&LogRecord::Begin { txn: 1 });
        assert!(log.flush_all().is_err());
        assert!(log.is_poisoned());
        // No retry: the next flush fails without touching the device,
        // and nothing ever became durable.
        assert!(log.flush_all().is_err());
        assert_eq!(store.durable_len(), 0);
        // A fresh manager (post-restart) starts clean.
        store.set_fault_plan(None);
        let log2 = LogManager::new(Arc::clone(&store));
        log2.append(&LogRecord::Begin { txn: 2 });
        log2.flush_all().unwrap();
        assert_eq!(store.records_from(0).unwrap().len(), 1);
    }

    #[test]
    fn epoch_fence_does_not_poison() {
        let store = Arc::new(LogStore::new());
        let log = LogManager::new(Arc::clone(&store));
        log.append(&LogRecord::Begin { txn: 1 });
        store.bump_epoch();
        assert_eq!(log.flush_all(), Err(Error::ServerShutdown));
        assert!(!log.is_poisoned());
    }

    #[test]
    fn checkpoint_master_record() {
        let store = LogStore::new();
        assert_eq!(store.checkpoint(), None);
        store.set_checkpoint(0);
        assert_eq!(store.checkpoint(), Some(0));
        store.set_checkpoint(42);
        assert_eq!(store.checkpoint(), Some(42));
    }

    fn grouped(max_batch: usize, max_wait_us: u64) -> (Arc<LogStore>, Arc<LogManager>) {
        let store = Arc::new(LogStore::new());
        let log = Arc::new(LogManager::with_group(
            Arc::clone(&store),
            GroupCommit::on(max_batch, Duration::from_micros(max_wait_us)),
        ));
        (store, log)
    }

    #[test]
    fn group_disabled_commit_flush_is_flush_to() {
        let store = Arc::new(LogStore::new());
        let log = LogManager::new(Arc::clone(&store));
        assert!(!log.group_config().enabled);
        let lsn = log.append(&LogRecord::Commit { txn: 1 });
        log.commit_flush(lsn).unwrap();
        assert_eq!(store.records_from(0).unwrap().len(), 1);
    }

    #[test]
    fn group_solo_commit_leads_its_own_flush() {
        let (store, log) = grouped(8, 200);
        let lsn = log.append(&LogRecord::Commit { txn: 1 });
        log.commit_flush(lsn).unwrap();
        assert!(log.flushed_lsn() > lsn);
        assert_eq!(
            store.records_from(0).unwrap(),
            vec![(lsn, LogRecord::Commit { txn: 1 })]
        );
    }

    #[test]
    fn group_concurrent_commits_all_durable() {
        let (store, log) = grouped(4, 500);
        let n = 8;
        std::thread::scope(|s| {
            for t in 0..n {
                let log = Arc::clone(&log);
                s.spawn(move || {
                    let lsn = log.append(&LogRecord::Commit { txn: t });
                    log.commit_flush(lsn).unwrap();
                    // Durability at ack: the watermark covers our record.
                    assert!(log.flushed_lsn() > lsn);
                });
            }
        });
        let recs = store.records_from(0).unwrap();
        assert_eq!(recs.len(), n as usize);
        let mut txns: Vec<TxnId> = recs
            .iter()
            .map(|(_, r)| match r {
                LogRecord::Commit { txn } => *txn,
                other => panic!("unexpected record {other:?}"),
            })
            .collect();
        txns.sort_unstable();
        assert_eq!(txns, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn group_piggybacks_on_unrelated_flush() {
        // A parked commit must be acked by ANY successful flush that
        // covers it (e.g. a buffer-pool eviction enforcing the WAL
        // rule), not only by a batch leader's.
        let (_store, log) = grouped(64, 200_000);
        let lsn = log.append(&LogRecord::Commit { txn: 1 });
        let waiter = {
            let log = Arc::clone(&log);
            std::thread::spawn(move || log.commit_flush(lsn))
        };
        // Give the waiter time to park, then flush from outside.
        std::thread::sleep(Duration::from_millis(10));
        log.flush_all().unwrap();
        waiter.join().unwrap().unwrap();
    }

    #[test]
    fn poisoned_batch_errors_all_waiters() {
        use faultkit::disk::DiskFaultKind;
        let (store, log) = grouped(4, 300);
        store.set_fault_plan(Some(DiskPlan::at(DiskFaultKind::FsyncFail, 1)));
        let n = 6;
        let mut errs = Vec::new();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..n {
                let log = Arc::clone(&log);
                handles.push(s.spawn(move || {
                    let lsn = log.append(&LogRecord::Commit { txn: t });
                    log.commit_flush(lsn)
                }));
            }
            for h in handles {
                errs.push(h.join().unwrap());
            }
        });
        // Fail-stop covers the whole batch: every waiter sees the
        // error, not just the leader that hit the device.
        assert!(errs.iter().all(|r| r.is_err()), "got {errs:?}");
        assert!(log.is_poisoned());
        assert_eq!(store.durable_len(), 0);
    }

    #[test]
    fn epoch_fenced_batch_errors_without_poison() {
        let (store, log) = grouped(4, 300);
        store.bump_epoch();
        let n = 3;
        let mut errs = Vec::new();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..n {
                let log = Arc::clone(&log);
                handles.push(s.spawn(move || {
                    let lsn = log.append(&LogRecord::Commit { txn: t });
                    log.commit_flush(lsn)
                }));
            }
            for h in handles {
                errs.push(h.join().unwrap());
            }
        });
        for r in errs {
            assert_eq!(r, Err(Error::ServerShutdown));
        }
        // Fencing means a newer incarnation owns the store, not that
        // the device failed.
        assert!(!log.is_poisoned());
    }
}
