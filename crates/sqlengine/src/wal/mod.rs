//! Write-ahead logging and restart recovery.

pub mod log;
pub mod recovery;
