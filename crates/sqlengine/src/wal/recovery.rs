//! Restart recovery: analysis, redo, undo (ARIES-style, simplified by
//! quiesced checkpoints and append-only page tuple space).
//!
//! * **Analysis** — locate the last checkpoint via the master record,
//!   restore the catalog snapshot, and scan forward classifying
//!   transactions into winners (Commit seen), explicit aborts, and losers.
//! * **Redo** — replay every page action whose LSN is newer than the page's
//!   on-disk LSN; DDL and page allocations are top actions replayed
//!   idempotently against the catalog.
//! * **Undo** — roll back losers in reverse LSN order, skipping actions
//!   already compensated by a CLR (so recovery itself is idempotent and a
//!   crash *during* recovery is handled by simply running recovery again —
//!   the property Phoenix relies on, and which `tests/` fault-injects).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::catalog::Catalog;
use crate::error::Result;
use crate::storage::buffer::{with_page_mut, BufferPool};
use crate::storage::disk::MemDisk;
use crate::storage::heap::Storage;
use crate::storage::page::Page;
use crate::txn::TxnManager;
use crate::wal::log::{ClrAction, GroupCommit, LogManager, LogRecord, LogStore, Lsn, TxnId};

/// Tuning for the recovered engine.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryConfig {
    /// Buffer-pool capacity (pages) for the recovered engine.
    pub pool_capacity: usize,
    /// Run a full checksum scrub (detect + repair every allocated page)
    /// after redo/undo complete. Off by default: scrubbing reads every
    /// page, which would skew the recovery-time experiments; servers
    /// that expect storage faults opt in.
    pub scrub: bool,
    /// Group-commit window for the recovered engine's WAL manager.
    /// Disabled by default: single-session workloads gain nothing from
    /// batching, and the window adds commit latency.
    pub group_commit: GroupCommit,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            pool_capacity: 4096,
            scrub: false,
            group_commit: GroupCommit::default(),
        }
    }
}

/// Statistics describing what recovery did (reported by the server and
/// interesting for the recovery-time experiments).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Log records examined after the checkpoint.
    pub records_scanned: usize,
    /// Page actions re-applied during redo.
    pub redo_applied: usize,
    /// Loser transactions rolled back.
    pub losers_rolled_back: usize,
    /// Undo actions applied (CLRs written).
    pub undo_actions: usize,
    /// Bytes of torn log tail truncated before analysis.
    pub torn_tail_bytes: u64,
    /// Pages found corrupt (and repaired) by the post-recovery scrub,
    /// when [`RecoveryConfig::scrub`] is on.
    pub scrub_repaired: u32,
}

/// Rebuild a [`Storage`] kernel from durable state.
pub fn recover(
    disk: Arc<MemDisk>,
    store: Arc<LogStore>,
    config: RecoveryConfig,
) -> Result<(Storage, RecoveryStats)> {
    // A torn tail — the residue of a flush that failed mid-append — is
    // truncated *before* anything reads the log, so the manager's base
    // offset and every scan below see only whole, verified records.
    // Mid-log corruption surfaces here as `Error::Corruption`.
    let mut stats = RecoveryStats {
        torn_tail_bytes: store.recover_tail()?,
        ..RecoveryStats::default()
    };
    let log = Arc::new(LogManager::with_group(
        Arc::clone(&store),
        config.group_commit,
    ));

    // --- Analysis: restore catalog from checkpoint ---
    faultkit::crashpoint!("recovery.analysis");
    let (catalog, redo_start) = match store.checkpoint() {
        Some(cp_lsn) => {
            let recs = store.records_from(cp_lsn)?;
            match recs.first() {
                Some((first_lsn, LogRecord::Checkpoint { snapshot })) => {
                    debug_assert_eq!(*first_lsn, cp_lsn);
                    (Catalog::restore(snapshot)?, cp_lsn)
                }
                // A master record pointing at a torn record or past the
                // log end means the checkpoint never fully made it out;
                // distrust it and replay from the start rather than
                // aborting recovery.
                _ => (Catalog::new(), 0),
            }
        }
        None => (Catalog::new(), 0),
    };
    let catalog = Arc::new(catalog);
    let pool = Arc::new(BufferPool::new(
        Arc::clone(&disk),
        Arc::clone(&log),
        config.pool_capacity,
    ));

    let records = store.records_from(redo_start)?;
    stats.records_scanned = records.len();

    // Classify transactions and collect undo info in one pass.
    let mut ended: HashSet<TxnId> = HashSet::new();
    let mut seen: HashSet<TxnId> = HashSet::new();
    type UndoItem = (Lsn, ClrAction, u32, u32, u16);
    let mut undo_log: HashMap<TxnId, Vec<UndoItem>> = HashMap::new();
    let mut compensated: HashMap<TxnId, HashSet<Lsn>> = HashMap::new();
    let mut max_txn: TxnId = 0;

    for (lsn, rec) in &records {
        if let Some(t) = rec.txn() {
            seen.insert(t);
            max_txn = max_txn.max(t);
        }
        match rec {
            LogRecord::Commit { txn } | LogRecord::Abort { txn } => {
                ended.insert(*txn);
            }
            LogRecord::Insert {
                txn,
                table,
                page,
                slot,
                ..
            } => {
                undo_log.entry(*txn).or_default().push((
                    *lsn,
                    ClrAction::Tombstone,
                    *table,
                    *page,
                    *slot,
                ));
            }
            LogRecord::Delete {
                txn,
                table,
                page,
                slot,
            } => {
                undo_log.entry(*txn).or_default().push((
                    *lsn,
                    ClrAction::Untombstone,
                    *table,
                    *page,
                    *slot,
                ));
            }
            LogRecord::Clr { txn, undoes, .. } => {
                compensated.entry(*txn).or_default().insert(*undoes);
            }
            _ => {}
        }
    }

    // --- Redo ---
    faultkit::crashpoint!("recovery.redo");
    for (lsn, rec) in &records {
        match rec {
            LogRecord::CreateTable { table_id, schema } => {
                catalog.create_table_with_id(*table_id, schema.clone());
            }
            LogRecord::DropTable { table_id } => {
                catalog.drop_table_if_exists(*table_id);
            }
            LogRecord::CreateProc { name, body } => {
                catalog.create_proc(name, body, true)?;
            }
            LogRecord::DropProc { name } => {
                // lint:allow(discard): redo of a drop is idempotent; the proc may already be gone
                let _ = catalog.drop_proc(name);
            }
            LogRecord::AllocPage { table, page } => {
                if catalog.get(*table).is_none() {
                    continue;
                }
                disk.ensure_capacity(*page + 1, disk.current_epoch())?;
                let guard = pool.fetch(*page)?;
                let mut data = guard.write();
                let needs_init = {
                    let p = Page::new(&mut data);
                    p.lsn() < *lsn
                };
                if needs_init {
                    let mut p = Page::init(&mut data, *table);
                    p.set_lsn(*lsn);
                    stats.redo_applied += 1;
                }
                drop(data);
                catalog.add_page(*table, *page)?;
            }
            LogRecord::Insert {
                table,
                page,
                slot,
                data,
                ..
            } => {
                if catalog.get(*table).is_none() {
                    continue;
                }
                let guard = pool.fetch(*page)?;
                let applied = with_page_mut(&guard, *lsn, |p| {
                    if p.lsn() < *lsn {
                        p.insert_expect(*slot, data)?;
                        Ok(true)
                    } else {
                        Ok(false)
                    }
                })?;
                if applied {
                    stats.redo_applied += 1;
                }
            }
            LogRecord::Delete {
                table, page, slot, ..
            } => {
                if catalog.get(*table).is_none() {
                    continue;
                }
                let guard = pool.fetch(*page)?;
                let applied = with_page_mut(&guard, *lsn, |p| {
                    if p.lsn() < *lsn {
                        p.tombstone(*slot)?;
                        Ok(true)
                    } else {
                        Ok(false)
                    }
                })?;
                if applied {
                    stats.redo_applied += 1;
                }
            }
            LogRecord::Clr {
                table,
                page,
                slot,
                action,
                ..
            } => {
                if catalog.get(*table).is_none() {
                    continue;
                }
                let guard = pool.fetch(*page)?;
                let applied = with_page_mut(&guard, *lsn, |p| {
                    if p.lsn() < *lsn {
                        match action {
                            ClrAction::Tombstone => p.tombstone(*slot)?,
                            ClrAction::Untombstone => p.untombstone(*slot)?,
                        }
                        Ok(true)
                    } else {
                        Ok(false)
                    }
                })?;
                if applied {
                    stats.redo_applied += 1;
                }
            }
            _ => {}
        }
    }

    // --- Undo losers ---
    faultkit::crashpoint!("recovery.redo.done");
    let losers: Vec<TxnId> = seen
        .iter()
        .copied()
        .filter(|t| !ended.contains(t))
        .collect();
    for txn in &losers {
        faultkit::crashpoint!("recovery.undo");
        let done = compensated.remove(txn).unwrap_or_default();
        let mut entries = undo_log.remove(txn).unwrap_or_default();
        entries.sort_by_key(|e| e.0);
        for (lsn, action, table, page, slot) in entries.into_iter().rev() {
            if done.contains(&lsn) {
                continue;
            }
            if catalog.get(table).is_none() {
                continue;
            }
            let clr_lsn = log.append(&LogRecord::Clr {
                txn: *txn,
                undoes: lsn,
                action,
                table,
                page,
                slot,
            });
            let guard = pool.fetch(page)?;
            with_page_mut(&guard, clr_lsn, |p| match action {
                ClrAction::Tombstone => p.tombstone(slot),
                ClrAction::Untombstone => p.untombstone(slot),
            })?;
            stats.undo_actions += 1;
        }
        log.append(&LogRecord::Abort { txn: *txn });
        stats.losers_rolled_back += 1;
    }
    faultkit::crashpoint!("recovery.flush");
    log.flush_all()?;

    // Post-recovery scrub hook: verify (and repair) every allocated
    // page before the engine serves traffic, so latent disk damage
    // cannot outlive a restart on servers that opt in.
    if config.scrub {
        let report = pool.scrub()?;
        stats.scrub_repaired = report.repaired;
    }

    let storage = Storage::new(catalog, pool, log, TxnManager::starting_at(max_txn + 1));
    storage.rebuild_indexes()?;
    Ok((storage, stats))
}

/// Build a brand-new empty database (fresh durable state).
pub fn bootstrap(
    disk: Arc<MemDisk>,
    store: Arc<LogStore>,
    config: RecoveryConfig,
) -> Result<Storage> {
    let (storage, _) = recover(disk, store, config)?;
    Ok(storage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, TableSchema};
    use crate::storage::disk::DiskModel;
    use crate::types::{DataType, Value};

    fn fresh_durable() -> (Arc<MemDisk>, Arc<LogStore>) {
        (
            Arc::new(MemDisk::new(DiskModel::default())),
            Arc::new(LogStore::new()),
        )
    }

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                Column::new("id", DataType::Int),
                Column::new("v", DataType::Str),
            ],
        )
        .with_primary_key(vec![0])
    }

    fn row(i: i64) -> Vec<Value> {
        vec![Value::Int(i), Value::Str(format!("row-{i}"))]
    }

    #[test]
    fn committed_work_survives_crash() {
        let (disk, store) = fresh_durable();
        let tid;
        {
            let st = bootstrap(Arc::clone(&disk), Arc::clone(&store), Default::default()).unwrap();
            tid = st.create_table(schema()).unwrap();
            let txn = st.begin();
            for i in 0..100 {
                st.insert_row(&txn, tid, &row(i)).unwrap();
            }
            st.commit(&txn).unwrap();
            // Crash: drop volatile state without flushing pages.
        }
        let (st2, stats) =
            recover(Arc::clone(&disk), Arc::clone(&store), Default::default()).unwrap();
        assert!(stats.redo_applied > 0);
        let rows = st2.scan_all(tid).unwrap();
        assert_eq!(rows.len(), 100);
        // Index rebuilt too.
        let rid = st2.pk_lookup(tid, &[Value::Int(42)]).unwrap().unwrap();
        assert_eq!(
            st2.fetch_row(rid).unwrap().unwrap()[1],
            Value::Str("row-42".into())
        );
    }

    #[test]
    fn uncommitted_work_rolled_back() {
        let (disk, store) = fresh_durable();
        let tid;
        {
            let st = bootstrap(Arc::clone(&disk), Arc::clone(&store), Default::default()).unwrap();
            tid = st.create_table(schema()).unwrap();
            let t1 = st.begin();
            st.insert_row(&t1, tid, &row(1)).unwrap();
            st.commit(&t1).unwrap();

            let t2 = st.begin();
            st.insert_row(&t2, tid, &row(2)).unwrap();
            st.delete_row(
                &t2,
                tid,
                st.pk_lookup(tid, &[Value::Int(1)]).unwrap().unwrap(),
            )
            .unwrap();
            // Force the loser's records durable so recovery actually has
            // work to undo.
            st.log.flush_all().unwrap();
            // Crash without commit.
        }
        let (st2, stats) = recover(disk, store, Default::default()).unwrap();
        assert_eq!(stats.losers_rolled_back, 1);
        assert!(stats.undo_actions >= 2);
        let rows: Vec<_> = st2
            .scan_all(tid)
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        assert_eq!(rows, vec![row(1)]);
    }

    #[test]
    fn unflushed_commit_is_lost_but_flushed_commit_is_not() {
        let (disk, store) = fresh_durable();
        let tid;
        {
            let st = bootstrap(Arc::clone(&disk), Arc::clone(&store), Default::default()).unwrap();
            tid = st.create_table(schema()).unwrap();
            let txn = st.begin();
            st.insert_row(&txn, tid, &row(7)).unwrap();
            st.commit(&txn).unwrap(); // commit flushes
        }
        let (st2, _) = recover(disk, store, Default::default()).unwrap();
        assert_eq!(st2.scan_all(tid).unwrap().len(), 1);
    }

    #[test]
    fn recovery_is_idempotent() {
        let (disk, store) = fresh_durable();
        let tid;
        {
            let st = bootstrap(Arc::clone(&disk), Arc::clone(&store), Default::default()).unwrap();
            tid = st.create_table(schema()).unwrap();
            let t = st.begin();
            for i in 0..10 {
                st.insert_row(&t, tid, &row(i)).unwrap();
            }
            st.log.flush_all().unwrap(); // loser, durable
        }
        // Recover twice in a row (crash immediately after first recovery).
        let (st1, s1) = recover(Arc::clone(&disk), Arc::clone(&store), Default::default()).unwrap();
        assert_eq!(s1.losers_rolled_back, 1);
        drop(st1); // crash again, without any checkpoint
        let (st2, s2) = recover(Arc::clone(&disk), Arc::clone(&store), Default::default()).unwrap();
        // Second recovery sees the CLRs and skips re-undoing.
        assert_eq!(s2.undo_actions, 0);
        assert_eq!(st2.scan_all(tid).unwrap().len(), 0);
    }

    #[test]
    fn checkpoint_bounds_redo() {
        let (disk, store) = fresh_durable();
        let tid;
        {
            let st = bootstrap(Arc::clone(&disk), Arc::clone(&store), Default::default()).unwrap();
            tid = st.create_table(schema()).unwrap();
            let t = st.begin();
            for i in 0..50 {
                st.insert_row(&t, tid, &row(i)).unwrap();
            }
            st.commit(&t).unwrap();
            st.checkpoint().unwrap();
            let t2 = st.begin();
            st.insert_row(&t2, tid, &row(100)).unwrap();
            st.commit(&t2).unwrap();
        }
        let (st2, stats) = recover(disk, store, Default::default()).unwrap();
        // Only the post-checkpoint insert should need redo.
        assert_eq!(stats.redo_applied, 1);
        assert_eq!(st2.scan_all(tid).unwrap().len(), 51);
    }

    #[test]
    fn dropped_table_records_skipped() {
        let (disk, store) = fresh_durable();
        {
            let st = bootstrap(Arc::clone(&disk), Arc::clone(&store), Default::default()).unwrap();
            let tid = st.create_table(schema()).unwrap();
            let t = st.begin();
            st.insert_row(&t, tid, &row(1)).unwrap();
            st.commit(&t).unwrap();
            st.drop_table("t").unwrap();
        }
        let (st2, _) = recover(disk, store, Default::default()).unwrap();
        assert!(st2.catalog.resolve("t").is_none());
    }

    #[test]
    fn procedures_survive_crash() {
        let (disk, store) = fresh_durable();
        {
            let st = bootstrap(Arc::clone(&disk), Arc::clone(&store), Default::default()).unwrap();
            st.create_proc("p1", "SELECT 1", false).unwrap();
        }
        let (st2, _) = recover(disk, store, Default::default()).unwrap();
        assert_eq!(st2.catalog.get_proc("p1").unwrap(), "SELECT 1");
    }

    #[test]
    fn runtime_abort_then_crash_recovers_clean() {
        let (disk, store) = fresh_durable();
        let tid;
        {
            let st = bootstrap(Arc::clone(&disk), Arc::clone(&store), Default::default()).unwrap();
            tid = st.create_table(schema()).unwrap();
            let t = st.begin();
            st.insert_row(&t, tid, &row(1)).unwrap();
            st.abort(&t).unwrap();
            let t2 = st.begin();
            st.insert_row(&t2, tid, &row(2)).unwrap();
            st.commit(&t2).unwrap();
        }
        let (st2, stats) = recover(disk, store, Default::default()).unwrap();
        assert_eq!(stats.losers_rolled_back, 0);
        let rows: Vec<_> = st2
            .scan_all(tid)
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        assert_eq!(rows, vec![row(2)]);
    }
}
