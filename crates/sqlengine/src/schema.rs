//! Table schemas and the on-page row encoding.

use bytes::{Buf, BufMut};

use crate::error::{Error, Result};
use crate::types::{DataType, Row, Value};

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (case-insensitive for lookups).
    pub name: String,
    /// Storage type.
    pub dtype: DataType,
    /// Whether NULLs are admitted.
    pub nullable: bool,
}

impl Column {
    /// A nullable column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into(),
            dtype,
            nullable: true,
        }
    }
}

/// Identifies a table in the catalog.
pub type TableId = u32;

/// A table schema: ordered columns plus an optional primary key
/// (column indexes) used to maintain a unique hash index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<Column>,
    /// Indexes (into `columns`) of the primary-key columns, if any.
    pub primary_key: Vec<usize>,
}

impl TableSchema {
    /// Schema without a primary key.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        TableSchema {
            name: name.into(),
            columns,
            primary_key: Vec::new(),
        }
    }

    /// Builder: set the primary-key column indexes.
    pub fn with_primary_key(mut self, cols: Vec<usize>) -> Self {
        self.primary_key = cols;
        self
    }

    /// Case-insensitive column lookup.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Validate and coerce a row against this schema.
    pub fn conform(&self, row: Row) -> Result<Row> {
        if row.len() != self.columns.len() {
            return Err(Error::Semantic(format!(
                "table {} expects {} values, got {}",
                self.name,
                self.columns.len(),
                row.len()
            )));
        }
        row.into_iter()
            .zip(&self.columns)
            .map(|(v, c)| {
                if v.is_null() && !c.nullable {
                    return Err(Error::Semantic(format!(
                        "column {}.{} is NOT NULL",
                        self.name, c.name
                    )));
                }
                v.coerce(c.dtype)
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Row wire/page encoding
// ---------------------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_DATE: u8 = 4;

/// Append the binary encoding of `row` to `out`.
pub fn encode_row(row: &[Value], out: &mut Vec<u8>) {
    out.put_u16(row.len() as u16);
    for v in row {
        match v {
            Value::Null => out.put_u8(TAG_NULL),
            Value::Int(i) => {
                out.put_u8(TAG_INT);
                out.put_i64(*i);
            }
            Value::Float(f) => {
                out.put_u8(TAG_FLOAT);
                out.put_f64(*f);
            }
            Value::Str(s) => {
                out.put_u8(TAG_STR);
                out.put_u32(s.len() as u32);
                out.put_slice(s.as_bytes());
            }
            Value::Date(d) => {
                out.put_u8(TAG_DATE);
                out.put_i32(*d);
            }
        }
    }
}

/// Decode a row previously produced by [`encode_row`].
pub fn decode_row(mut buf: &[u8]) -> Result<Row> {
    let corrupt = || Error::Corruption {
        device: "data".into(),
        detail: "corrupt row encoding".into(),
    };
    if buf.remaining() < 2 {
        return Err(corrupt());
    }
    let n = buf.get_u16() as usize;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        if buf.remaining() < 1 {
            return Err(corrupt());
        }
        let tag = buf.get_u8();
        let v = match tag {
            TAG_NULL => Value::Null,
            TAG_INT => {
                if buf.remaining() < 8 {
                    return Err(corrupt());
                }
                Value::Int(buf.get_i64())
            }
            TAG_FLOAT => {
                if buf.remaining() < 8 {
                    return Err(corrupt());
                }
                Value::Float(buf.get_f64())
            }
            TAG_STR => {
                if buf.remaining() < 4 {
                    return Err(corrupt());
                }
                let len = buf.get_u32() as usize;
                if buf.remaining() < len {
                    return Err(corrupt());
                }
                let s = String::from_utf8(buf[..len].to_vec()).map_err(|_| corrupt())?;
                buf.advance(len);
                Value::Str(s)
            }
            TAG_DATE => {
                if buf.remaining() < 4 {
                    return Err(corrupt());
                }
                Value::Date(buf.get_i32())
            }
            _ => return Err(corrupt()),
        };
        row.push(v);
    }
    Ok(row)
}

/// Encode a schema (used in the catalog checkpoint and WAL records).
pub fn encode_schema(s: &TableSchema, out: &mut Vec<u8>) {
    put_str(out, &s.name);
    out.put_u16(s.columns.len() as u16);
    for c in &s.columns {
        put_str(out, &c.name);
        out.put_u8(match c.dtype {
            DataType::Int => 0,
            DataType::Float => 1,
            DataType::Str => 2,
            DataType::Date => 3,
        });
        out.put_u8(c.nullable as u8);
    }
    out.put_u16(s.primary_key.len() as u16);
    for &i in &s.primary_key {
        out.put_u16(i as u16);
    }
}

/// Decode a schema, advancing `buf`.
pub fn decode_schema(buf: &mut &[u8]) -> Result<TableSchema> {
    let name = get_str(buf)?;
    let ncols = checked_u16(buf)? as usize;
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let cname = get_str(buf)?;
        let dt = match checked_u8(buf)? {
            0 => DataType::Int,
            1 => DataType::Float,
            2 => DataType::Str,
            3 => DataType::Date,
            _ => return Err(Error::Storage("bad dtype tag".into())),
        };
        let nullable = checked_u8(buf)? != 0;
        columns.push(Column {
            name: cname,
            dtype: dt,
            nullable,
        });
    }
    let npk = checked_u16(buf)? as usize;
    let mut primary_key = Vec::with_capacity(npk);
    for _ in 0..npk {
        primary_key.push(checked_u16(buf)? as usize);
    }
    Ok(TableSchema {
        name,
        columns,
        primary_key,
    })
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    out.put_u32(s.len() as u32);
    out.put_slice(s.as_bytes());
}

pub(crate) fn get_str(buf: &mut &[u8]) -> Result<String> {
    let corrupt = || Error::Corruption {
        device: "data".into(),
        detail: "corrupt string encoding".into(),
    };
    if buf.remaining() < 4 {
        return Err(corrupt());
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(corrupt());
    }
    let s = String::from_utf8(buf[..len].to_vec()).map_err(|_| corrupt())?;
    buf.advance(len);
    Ok(s)
}

fn checked_u16(buf: &mut &[u8]) -> Result<u16> {
    if buf.remaining() < 2 {
        return Err(Error::Storage("truncated".into()));
    }
    Ok(buf.get_u16())
}

fn checked_u8(buf: &mut &[u8]) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(Error::Storage("truncated".into()));
    }
    Ok(buf.get_u8())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Str),
                Column::new("c", DataType::Float),
                Column::new("d", DataType::Date),
            ],
        )
        .with_primary_key(vec![0])
    }

    #[test]
    fn row_round_trip() {
        let row = vec![
            Value::Int(-7),
            Value::Str("hello world".into()),
            Value::Float(3.25),
            Value::Date(8035),
        ];
        let mut buf = Vec::new();
        encode_row(&row, &mut buf);
        assert_eq!(decode_row(&buf).unwrap(), row);
    }

    #[test]
    fn row_round_trip_nulls_and_empty_strings() {
        let row = vec![Value::Null, Value::Str(String::new()), Value::Null];
        let mut buf = Vec::new();
        encode_row(&row, &mut buf);
        assert_eq!(decode_row(&buf).unwrap(), row);
    }

    #[test]
    fn decode_rejects_truncation() {
        let row = vec![Value::Int(1), Value::Str("abcdef".into())];
        let mut buf = Vec::new();
        encode_row(&row, &mut buf);
        for cut in [0, 1, 3, buf.len() - 1] {
            assert!(decode_row(&buf[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn schema_round_trip() {
        let s = sample_schema();
        let mut buf = Vec::new();
        encode_schema(&s, &mut buf);
        let mut slice = buf.as_slice();
        assert_eq!(decode_schema(&mut slice).unwrap(), s);
        assert!(slice.is_empty());
    }

    #[test]
    fn conform_coerces_and_validates() {
        let s = sample_schema();
        let row = vec![
            Value::Int(1),
            Value::Str("x".into()),
            Value::Int(2),
            Value::Str("1992-01-01".into()),
        ];
        let out = s.conform(row).unwrap();
        assert_eq!(out[2], Value::Float(2.0));
        assert_eq!(out[3], Value::Date(8035));
        assert!(s.conform(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn col_index_is_case_insensitive() {
        let s = sample_schema();
        assert_eq!(s.col_index("A"), Some(0));
        assert_eq!(s.col_index("nope"), None);
    }
}
