//! # sqlengine
//!
//! An embedded SQL database engine built as the *substrate* for the
//! Phoenix/ODBC reproduction (Barga & Lomet, ICDE 2001). It stands in for
//! the paper's SQL Server 7.0: slotted-page heap storage, a buffer pool
//! with the WAL rule, ARIES-style restart recovery, strict two-phase
//! table locking with wait-die, temp tables with session lifetime, stored
//! procedures, and a SQL dialect rich enough to run TPC-H and TPC-C
//! shaped workloads plus every statement Phoenix issues
//! (`WHERE 0=1` metadata probes, `CREATE TABLE`, `INSERT ... SELECT`
//! materialization, `SELECT * FROM t` reopen, status-table writes).
//!
//! The engine's headline capability for the paper is *crashability*: the
//! [`server`] half exposes `SHUTDOWN WITH NOWAIT`, which drops all volatile
//! state (sessions, temp tables, buffer pool, active transactions) while
//! keeping durable state (disk pages + flushed WAL), and restart runs
//! analysis/redo/undo recovery.

// Tests exercise happy paths; the unwrap/expect hygiene baseline is
// aimed at library code (enforced harder by `cargo xtask lint`).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod catalog;
pub mod engine;
pub mod error;
pub mod exec;
pub mod schema;
pub mod session;
pub mod sql;
pub mod storage;
pub mod txn;
pub mod types;
pub mod wal;

pub use engine::{Cursor, Durable, Engine, ExecOutcome, StatementResult};
pub use error::{Error, Result};
pub use schema::{Column, TableSchema};
pub use types::{DataType, Row, Value};
