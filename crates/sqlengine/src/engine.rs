//! The engine facade: sessions, autocommit vs explicit transactions,
//! statement execution, checkpointing, and crash/restart.
//!
//! The [`Engine`] is the *volatile* half of a database server. Durable
//! state lives in [`Durable`]; "crashing" means dropping the `Engine`
//! while keeping the `Durable`, and restarting means [`Engine::recover`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{Error, Result};
use crate::exec::{execute_stmt, ExecCtx, RowsSource, StmtOutcome, TempTables};
use crate::schema::Column;
use crate::session::{SessionId, SessionState};
use crate::sql::ast::Stmt;
use crate::sql::parser::parse_statements;
use crate::storage::disk::{DiskModel, IoSnapshot, MemDisk};
use crate::storage::Storage;
use crate::txn::TxnHandle;
use crate::types::Row;
use crate::wal::log::LogStore;
use crate::wal::recovery::{recover, RecoveryConfig, RecoveryStats};

/// Durable server state: survives crashes.
#[derive(Clone)]
pub struct Durable {
    /// Simulated page store.
    pub disk: Arc<MemDisk>,
    /// Durable write-ahead log bytes + master checkpoint record.
    pub log: Arc<LogStore>,
}

impl Durable {
    /// Fresh, empty durable state.
    pub fn new(model: DiskModel) -> Self {
        Durable {
            disk: Arc::new(MemDisk::new(model)),
            log: Arc::new(LogStore::new()),
        }
    }

    /// Cumulative disk I/O statistics.
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.disk.stats().snapshot()
    }

    /// Simulated crash: fence off every writer of the current incarnation
    /// so late flushes cannot touch durable state the next incarnation
    /// will own.
    pub fn fence(&self) {
        self.disk.bump_epoch();
        self.log.bump_epoch();
    }

    /// Install (or clear) storage fault schedules: `data` drives page
    /// reads/writes on the simulated disk, `wal` drives log flushes.
    pub fn set_disk_faults(
        &self,
        data: Option<faultkit::disk::DiskPlan>,
        wal: Option<faultkit::disk::DiskPlan>,
    ) {
        self.disk.set_fault_plan(data);
        self.log.set_fault_plan(wal);
    }
}

/// Guard that commits a lazy cursor's autocommit transaction when the
/// cursor is dropped or closed.
struct AutoCommit {
    storage: Arc<Storage>,
    txn: Arc<TxnHandle>,
    done: bool,
}

impl AutoCommit {
    fn finish(&mut self) -> Result<()> {
        if self.done {
            return Ok(());
        }
        self.done = true;
        self.storage.commit(&self.txn)
    }
}

impl Drop for AutoCommit {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

/// A result-set cursor. For lazily-produced results the cursor keeps the
/// statement's (read-only) autocommit transaction open — and its shared
/// locks held — until it is exhausted, closed, or dropped.
pub struct Cursor {
    /// Output column names and types.
    pub schema: Vec<Column>,
    source: RowsSource,
    guard: Option<AutoCommit>,
}

impl Cursor {
    /// Close early, releasing locks. Also happens on drop.
    pub fn close(mut self) -> Result<()> {
        match self.guard.take() {
            Some(mut g) => g.finish(),
            None => Ok(()),
        }
    }

    /// Whether rows are streamed lazily from the executor.
    pub fn is_lazy(&self) -> bool {
        matches!(self.source, RowsSource::Lazy(_))
    }
}

impl Iterator for Cursor {
    type Item = Result<Row>;
    fn next(&mut self) -> Option<Self::Item> {
        let item = match &mut self.source {
            RowsSource::Materialized(it) => it.next().map(Ok),
            RowsSource::Lazy(it) => it.next(),
        };
        if item.is_none() {
            if let Some(mut g) = self.guard.take() {
                let _ = g.finish();
            }
        }
        item
    }
}

/// Engine-level statement outcome.
#[allow(missing_docs)]
pub enum ExecOutcome {
    /// A result-set cursor.
    Rows(Cursor),
    /// DML row count.
    Affected(u64),
    /// DDL / control success.
    Ok,
    /// `SHUTDOWN [WITH NOWAIT]` was executed; the server layer should
    /// crash (nowait) or stop the engine.
    ShutdownRequested { nowait: bool },
}

/// Result of executing a batch (the last statement's outcome).
pub struct StatementResult {
    /// The last statement's outcome.
    pub outcome: ExecOutcome,
}

/// The volatile database engine.
pub struct Engine {
    storage: Arc<Storage>,
    sessions: Mutex<HashMap<SessionId, SessionState>>,
    next_session: AtomicU64,
    shutdown: AtomicBool,
    recovery_stats: RecoveryStats,
}

impl Engine {
    /// Recover (or bootstrap) an engine from durable state.
    pub fn recover(durable: &Durable, config: RecoveryConfig) -> Result<Engine> {
        let (storage, stats) =
            recover(Arc::clone(&durable.disk), Arc::clone(&durable.log), config)?;
        Ok(Engine {
            storage: Arc::new(storage),
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            recovery_stats: stats,
        })
    }

    /// What restart recovery did when this engine booted.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery_stats
    }

    /// Direct access to the storage kernel (tests, benches, bulk loads).
    pub fn storage(&self) -> &Arc<Storage> {
        &self.storage
    }

    /// True once `SHUTDOWN` has been executed; all calls then fail.
    pub fn is_shut_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Mark the engine dead (server crash path). Subsequent calls on any
    /// session return [`Error::ServerShutdown`].
    pub fn mark_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Open a new session.
    pub fn create_session(&self) -> Result<SessionId> {
        self.check_alive()?;
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        self.sessions.lock().insert(id, SessionState::new());
        Ok(id)
    }

    /// Close a session: abort any open transaction, drop temp tables.
    pub fn close_session(&self, id: SessionId) {
        let state = self.sessions.lock().remove(&id);
        if let Some(s) = state {
            if let Some(txn) = s.txn {
                let _ = self.storage.abort(&txn);
            }
        }
    }

    /// Approximate resident bytes of one session's engine-side state
    /// (its temp tables) — feeds the server's per-session memory budget.
    /// `0` for an unknown session. The temps handle is cloned out before
    /// measuring so the session map lock is never held across it.
    pub fn session_state_bytes(&self, id: SessionId) -> u64 {
        let temps = {
            let sessions = self.sessions.lock();
            match sessions.get(&id) {
                Some(s) => Arc::clone(&s.temps),
                None => return 0,
            }
        };
        let bytes = temps.lock().approx_bytes();
        bytes
    }

    fn check_alive(&self) -> Result<()> {
        if self.is_shut_down() {
            Err(Error::ServerShutdown)
        } else {
            Ok(())
        }
    }

    #[allow(clippy::type_complexity)] // (temp tables, current txn) pair
    fn session_handles(
        &self,
        id: SessionId,
    ) -> Result<(Arc<Mutex<TempTables>>, Option<Arc<TxnHandle>>)> {
        let sessions = self.sessions.lock();
        let s = sessions.get(&id).ok_or(Error::NoSuchSession)?;
        Ok((Arc::clone(&s.temps), s.txn.clone()))
    }

    fn set_session_txn(&self, id: SessionId, txn: Option<Arc<TxnHandle>>) -> Result<()> {
        let mut sessions = self.sessions.lock();
        let s = sessions.get_mut(&id).ok_or(Error::NoSuchSession)?;
        s.txn = txn;
        Ok(())
    }

    /// Execute a batch of SQL on a session, returning the last statement's
    /// outcome. On any error the current transaction (explicit or
    /// autocommit) is rolled back, matching the retry model TPC-style
    /// applications use for deadlock victims.
    pub fn execute(&self, sid: SessionId, sql: &str) -> Result<StatementResult> {
        self.check_alive()?;
        let stmts = parse_statements(sql)?;
        let mut last = ExecOutcome::Ok;
        for stmt in &stmts {
            last = self.execute_one(sid, stmt)?;
            if matches!(last, ExecOutcome::ShutdownRequested { .. }) {
                break;
            }
        }
        Ok(StatementResult { outcome: last })
    }

    fn execute_one(&self, sid: SessionId, stmt: &Stmt) -> Result<ExecOutcome> {
        self.check_alive()?;
        let (temps, cur_txn) = self.session_handles(sid)?;
        match stmt {
            Stmt::Begin => {
                if cur_txn.is_some() {
                    return Err(Error::Semantic("transaction already in progress".into()));
                }
                let txn = Arc::new(self.storage.begin());
                self.set_session_txn(sid, Some(txn))?;
                Ok(ExecOutcome::Ok)
            }
            Stmt::Commit => {
                let txn =
                    cur_txn.ok_or_else(|| Error::Semantic("COMMIT without BEGIN TRAN".into()))?;
                self.set_session_txn(sid, None)?;
                self.storage.commit(&txn)?;
                Ok(ExecOutcome::Ok)
            }
            Stmt::Rollback => {
                let txn =
                    cur_txn.ok_or_else(|| Error::Semantic("ROLLBACK without BEGIN TRAN".into()))?;
                self.set_session_txn(sid, None)?;
                self.storage.abort(&txn)?;
                Ok(ExecOutcome::Ok)
            }
            _ => {
                let (txn, auto) = match &cur_txn {
                    Some(t) => (Arc::clone(t), false),
                    None => (Arc::new(self.storage.begin()), true),
                };
                let ctx = ExecCtx {
                    storage: Arc::clone(&self.storage),
                    txn: Arc::clone(&txn),
                    temps,
                    params: Arc::new(HashMap::new()),
                    depth: 0,
                };
                match execute_stmt(&ctx, stmt) {
                    Ok(StmtOutcome::Rows(rows)) => {
                        let schema = rows.schema;
                        let source = rows.source;
                        let guard = if auto {
                            match &source {
                                RowsSource::Materialized(_) => {
                                    self.storage.commit(&txn)?;
                                    None
                                }
                                RowsSource::Lazy(_) => Some(AutoCommit {
                                    storage: Arc::clone(&self.storage),
                                    txn,
                                    done: false,
                                }),
                            }
                        } else {
                            None
                        };
                        Ok(ExecOutcome::Rows(Cursor {
                            schema,
                            source,
                            guard,
                        }))
                    }
                    Ok(StmtOutcome::Affected(n)) => {
                        if auto {
                            self.storage.commit(&txn)?;
                        }
                        Ok(ExecOutcome::Affected(n))
                    }
                    Ok(StmtOutcome::Ok) => {
                        if auto {
                            self.storage.commit(&txn)?;
                        }
                        Ok(ExecOutcome::Ok)
                    }
                    Ok(StmtOutcome::Shutdown { nowait }) => {
                        if auto {
                            let _ = self.storage.abort(&txn);
                        }
                        Ok(ExecOutcome::ShutdownRequested { nowait })
                    }
                    Err(e) => {
                        let _ = self.storage.abort(&txn);
                        if !auto {
                            let _ = self.set_session_txn(sid, None);
                        }
                        Err(e)
                    }
                }
            }
        }
    }

    /// Convenience for tests and tools: execute and fully collect rows.
    pub fn execute_collect(&self, sid: SessionId, sql: &str) -> Result<(Vec<Column>, Vec<Row>)> {
        match self.execute(sid, sql)?.outcome {
            ExecOutcome::Rows(cursor) => {
                let schema = cursor.schema.clone();
                let rows: Result<Vec<Row>> = cursor.collect();
                Ok((schema, rows?))
            }
            _ => Ok((Vec::new(), Vec::new())),
        }
    }

    /// Quiesced checkpoint (bench setup path).
    pub fn checkpoint(&self) -> Result<()> {
        self.storage.checkpoint()
    }

    /// Verify every allocated page's checksum, repairing corrupt pages
    /// from WAL redo. Returns what the sweep found.
    pub fn scrub(&self) -> Result<crate::storage::buffer::ScrubReport> {
        self.check_alive()?;
        self.storage.scrub()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> (Durable, Engine) {
        let d = Durable::new(DiskModel::default());
        let e = Engine::recover(&d, RecoveryConfig::default()).unwrap();
        (d, e)
    }

    fn setup_t(e: &Engine, sid: SessionId) {
        e.execute(
            sid,
            "CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR(20), x FLOAT)",
        )
        .unwrap();
        e.execute(
            sid,
            "INSERT INTO t VALUES (1, 'one', 1.5), (2, 'two', 2.5), (3, 'three', 3.5)",
        )
        .unwrap();
    }

    #[test]
    fn basic_crud_round_trip() {
        let (_d, e) = fresh();
        let sid = e.create_session().unwrap();
        setup_t(&e, sid);
        let (schema, rows) = e
            .execute_collect(sid, "SELECT id, v FROM t WHERE x > 1.6 ORDER BY id DESC")
            .unwrap();
        assert_eq!(schema.len(), 2);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], crate::types::Value::Int(3));

        let r = e
            .execute(sid, "UPDATE t SET v = 'TWO' WHERE id = 2")
            .unwrap();
        assert!(matches!(r.outcome, ExecOutcome::Affected(1)));
        let r = e.execute(sid, "DELETE FROM t WHERE id = 1").unwrap();
        assert!(matches!(r.outcome, ExecOutcome::Affected(1)));
        let (_, rows) = e
            .execute_collect(sid, "SELECT v FROM t ORDER BY id")
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], crate::types::Value::Str("TWO".into()));
    }

    #[test]
    fn where_0_eq_1_returns_schema_only_without_scanning() {
        let (d, e) = fresh();
        let sid = e.create_session().unwrap();
        setup_t(&e, sid);
        let before = d.io_snapshot();
        let (schema, rows) = e
            .execute_collect(sid, "SELECT id, v, x FROM t WHERE 0=1")
            .unwrap();
        let after = d.io_snapshot();
        assert_eq!(rows.len(), 0);
        assert_eq!(schema.len(), 3);
        assert_eq!(schema[0].name, "id");
        assert_eq!(schema[0].dtype, crate::types::DataType::Int);
        assert_eq!(schema[1].dtype, crate::types::DataType::Str);
        assert_eq!(schema[2].dtype, crate::types::DataType::Float);
        // Metadata-only: the heap was never read.
        assert_eq!(after.reads, before.reads);
    }

    #[test]
    fn explicit_txn_commit_and_rollback() {
        let (_d, e) = fresh();
        let sid = e.create_session().unwrap();
        setup_t(&e, sid);
        e.execute(sid, "BEGIN TRAN").unwrap();
        e.execute(sid, "INSERT INTO t VALUES (10, 'ten', 10.0)")
            .unwrap();
        e.execute(sid, "ROLLBACK").unwrap();
        let (_, rows) = e.execute_collect(sid, "SELECT * FROM t").unwrap();
        assert_eq!(rows.len(), 3);

        e.execute(sid, "BEGIN TRAN").unwrap();
        e.execute(sid, "INSERT INTO t VALUES (10, 'ten', 10.0)")
            .unwrap();
        e.execute(sid, "COMMIT").unwrap();
        let (_, rows) = e.execute_collect(sid, "SELECT * FROM t").unwrap();
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn duplicate_pk_rejected_and_txn_rolled_back() {
        let (_d, e) = fresh();
        let sid = e.create_session().unwrap();
        setup_t(&e, sid);
        let err = match e.execute(sid, "INSERT INTO t VALUES (1, 'dup', 0.0)") {
            Err(err) => err,
            Ok(_) => panic!("duplicate insert succeeded"),
        };
        assert!(matches!(err, Error::DuplicateKey(_)));
        let (_, rows) = e.execute_collect(sid, "SELECT * FROM t").unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn temp_tables_are_session_local_and_die_with_session() {
        let (_d, e) = fresh();
        let s1 = e.create_session().unwrap();
        let s2 = e.create_session().unwrap();
        e.execute(s1, "CREATE TABLE #probe (x INT)").unwrap();
        e.execute(s1, "INSERT INTO #probe VALUES (1)").unwrap();
        let (_, rows) = e.execute_collect(s1, "SELECT * FROM #probe").unwrap();
        assert_eq!(rows.len(), 1);
        // Other session cannot see it.
        assert!(e.execute(s2, "SELECT * FROM #probe").is_err());
        // Dies with the session.
        e.close_session(s1);
        let s3 = e.create_session().unwrap();
        assert!(e.execute(s3, "SELECT * FROM #probe").is_err());
    }

    #[test]
    fn crash_loses_sessions_and_uncommitted_state() {
        let d = Durable::new(DiskModel::default());
        let sid;
        {
            let e = Engine::recover(&d, RecoveryConfig::default()).unwrap();
            sid = e.create_session().unwrap();
            setup_t(&e, sid);
            e.execute(sid, "BEGIN TRAN").unwrap();
            e.execute(sid, "INSERT INTO t VALUES (99, 'loser', 9.9)")
                .unwrap();
            // Make the loser durable in the log so recovery must undo it.
            e.storage().log.flush_all().unwrap();
            // Crash: engine dropped.
        }
        let e2 = Engine::recover(&d, RecoveryConfig::default()).unwrap();
        // Old session id no longer valid.
        assert!(matches!(
            e2.execute(sid, "SELECT 1"),
            Err(Error::NoSuchSession)
        ));
        let s = e2.create_session().unwrap();
        let (_, rows) = e2.execute_collect(s, "SELECT * FROM t").unwrap();
        assert_eq!(rows.len(), 3, "uncommitted insert must be gone");
    }

    #[test]
    fn shutdown_statement_bubbles_up() {
        let (_d, e) = fresh();
        let sid = e.create_session().unwrap();
        let r = e.execute(sid, "SHUTDOWN WITH NOWAIT").unwrap();
        assert!(matches!(
            r.outcome,
            ExecOutcome::ShutdownRequested { nowait: true }
        ));
        e.mark_shutdown();
        assert!(matches!(
            e.execute(sid, "SELECT 1"),
            Err(Error::ServerShutdown)
        ));
    }

    #[test]
    fn lazy_top_n_cursor_streams() {
        let (_d, e) = fresh();
        let sid = e.create_session().unwrap();
        e.execute(
            sid,
            "CREATE TABLE big (k INT PRIMARY KEY, pad VARCHAR(100))",
        )
        .unwrap();
        for batch in 0..10 {
            let mut sql = String::from("INSERT INTO big VALUES ");
            for i in 0..100 {
                let k = batch * 100 + i;
                if i > 0 {
                    sql.push(',');
                }
                sql.push_str(&format!("({k}, 'xxxxxxxxxxxxxxxx')"));
            }
            e.execute(sid, &sql).unwrap();
        }
        let r = e.execute(sid, "SELECT TOP 5 * FROM big").unwrap();
        let ExecOutcome::Rows(cursor) = r.outcome else {
            panic!()
        };
        assert!(cursor.is_lazy());
        let rows: Result<Vec<_>> = cursor.collect();
        assert_eq!(rows.unwrap().len(), 5);
    }

    #[test]
    fn stored_procedure_roundtrip() {
        let (_d, e) = fresh();
        let sid = e.create_session().unwrap();
        setup_t(&e, sid);
        e.execute(
            sid,
            "CREATE PROCEDURE bump (@lo INT) AS UPDATE t SET x = x + 1 WHERE id >= @lo",
        )
        .unwrap();
        let r = e.execute(sid, "EXEC bump 2").unwrap();
        assert!(matches!(r.outcome, ExecOutcome::Affected(2)));
        let (_, rows) = e
            .execute_collect(sid, "SELECT x FROM t WHERE id = 3")
            .unwrap();
        assert_eq!(rows[0][0], crate::types::Value::Float(4.5));
    }

    #[test]
    fn insert_select_materializes_results_server_side() {
        let (_d, e) = fresh();
        let sid = e.create_session().unwrap();
        setup_t(&e, sid);
        e.execute(sid, "CREATE TABLE res (id INT, v VARCHAR(20))")
            .unwrap();
        let r = e
            .execute(sid, "INSERT INTO res SELECT id, v FROM t WHERE x > 1.6")
            .unwrap();
        assert!(matches!(r.outcome, ExecOutcome::Affected(2)));
        let (_, rows) = e
            .execute_collect(sid, "SELECT * FROM res ORDER BY id")
            .unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn aggregates_group_by_having() {
        let (_d, e) = fresh();
        let sid = e.create_session().unwrap();
        e.execute(sid, "CREATE TABLE s (g INT, v INT)").unwrap();
        e.execute(
            sid,
            "INSERT INTO s VALUES (1, 10), (1, 20), (2, 5), (2, 6), (3, 100)",
        )
        .unwrap();
        let (_, rows) = e
            .execute_collect(
                sid,
                "SELECT g, SUM(v) AS total, COUNT(*) AS n FROM s GROUP BY g \
                 HAVING SUM(v) > 20 ORDER BY total DESC",
            )
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][1], crate::types::Value::Int(100));
        assert_eq!(rows[1][1], crate::types::Value::Int(30));
    }

    #[test]
    fn scalar_agg_over_empty_input_yields_one_row() {
        let (_d, e) = fresh();
        let sid = e.create_session().unwrap();
        e.execute(sid, "CREATE TABLE s (v INT)").unwrap();
        let (_, rows) = e
            .execute_collect(sid, "SELECT COUNT(*), SUM(v) FROM s")
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], crate::types::Value::Int(0));
        assert_eq!(rows[0][1], crate::types::Value::Null);
    }

    #[test]
    fn joins_and_subqueries() {
        let (_d, e) = fresh();
        let sid = e.create_session().unwrap();
        e.execute(sid, "CREATE TABLE a (id INT PRIMARY KEY, name VARCHAR(10))")
            .unwrap();
        e.execute(sid, "CREATE TABLE b (a_id INT, amount FLOAT)")
            .unwrap();
        e.execute(sid, "INSERT INTO a VALUES (1,'x'),(2,'y'),(3,'z')")
            .unwrap();
        e.execute(sid, "INSERT INTO b VALUES (1, 10.0),(1, 5.0),(2, 7.0)")
            .unwrap();
        // Comma join.
        let (_, rows) = e
            .execute_collect(
                sid,
                "SELECT name, amount FROM a, b WHERE id = a_id ORDER BY amount",
            )
            .unwrap();
        assert_eq!(rows.len(), 3);
        // Left outer join + count.
        let (_, rows) = e
            .execute_collect(
                sid,
                "SELECT name, COUNT(amount) AS n FROM a LEFT OUTER JOIN b ON id = a_id \
                 GROUP BY name ORDER BY name",
            )
            .unwrap();
        assert_eq!(
            rows,
            vec![
                vec![
                    crate::types::Value::Str("x".into()),
                    crate::types::Value::Int(2)
                ],
                vec![
                    crate::types::Value::Str("y".into()),
                    crate::types::Value::Int(1)
                ],
                vec![
                    crate::types::Value::Str("z".into()),
                    crate::types::Value::Int(0)
                ],
            ]
        );
        // Correlated EXISTS.
        let (_, rows) = e
            .execute_collect(
                sid,
                "SELECT name FROM a WHERE EXISTS \
                 (SELECT 1 FROM b WHERE a_id = id AND amount > 6.0) ORDER BY name",
            )
            .unwrap();
        assert_eq!(rows.len(), 2);
        // Correlated scalar aggregate.
        let (_, rows) = e
            .execute_collect(
                sid,
                "SELECT name FROM a WHERE (SELECT SUM(amount) FROM b WHERE a_id = id) > 8.0",
            )
            .unwrap();
        assert_eq!(rows, vec![vec![crate::types::Value::Str("x".into())]]);
        // IN subquery.
        let (_, rows) = e
            .execute_collect(
                sid,
                "SELECT name FROM a WHERE id IN (SELECT a_id FROM b) ORDER BY name",
            )
            .unwrap();
        assert_eq!(rows.len(), 2);
        // Derived table.
        let (_, rows) = e
            .execute_collect(
                sid,
                "SELECT name, t.total FROM a, (SELECT a_id, SUM(amount) AS total FROM b GROUP BY a_id) t \
                 WHERE id = t.a_id AND t.total > 6.0 ORDER BY name",
            )
            .unwrap();
        assert_eq!(rows.len(), 2);
    }
}
