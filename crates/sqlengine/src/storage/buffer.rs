//! Buffer pool with pin counting, LRU-ish eviction and the WAL rule
//! (a dirty page is never written to disk before the log is flushed
//! through that page's LSN).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use super::disk::{page_image_ok, MemDisk, PageId, PAGE_SIZE};
use super::page::{Page, PageRef};
use crate::error::Result;
use crate::wal::log::{ClrAction, LogManager, LogRecord};

/// A cached page frame.
pub struct Frame {
    /// The cached page's id.
    pub id: PageId,
    data: RwLock<Box<[u8; PAGE_SIZE]>>,
    dirty: AtomicBool,
    pins: AtomicUsize,
    last_used: AtomicU64,
}

/// A pinned reference to a cached page. The pin is released on drop;
/// the frame cannot be evicted while pinned.
pub struct PageGuard {
    frame: Arc<Frame>,
}

impl PageGuard {
    /// The pinned page's id.
    pub fn id(&self) -> PageId {
        self.frame.id
    }

    /// Shared access to the raw page bytes.
    pub fn read(&self) -> RwLockReadGuard<'_, Box<[u8; PAGE_SIZE]>> {
        self.frame.data.read()
    }

    /// Exclusive access; marks the frame dirty.
    pub fn write(&self) -> RwLockWriteGuard<'_, Box<[u8; PAGE_SIZE]>> {
        self.frame.dirty.store(true, Ordering::Release);
        self.frame.data.write()
    }
}

impl Drop for PageGuard {
    fn drop(&mut self) {
        self.frame.pins.fetch_sub(1, Ordering::AcqRel);
    }
}

/// One lock stripe of the pool: pages hash here by id, and eviction is
/// local to the stripe (each stripe owns `shard_capacity` frames).
struct PoolShard {
    frames: HashMap<PageId, Arc<Frame>>,
    tick: u64,
}

/// The buffer pool, lock-striped into [`PoolShard`]s so concurrent
/// sessions touching different pages do not serialize on one latch.
pub struct BufferPool {
    disk: Arc<MemDisk>,
    log: Arc<LogManager>,
    capacity: usize,
    shard_capacity: usize,
    epoch: u64,
    shards: Vec<Mutex<PoolShard>>,
}

impl BufferPool {
    /// Pool over `disk` enforcing the WAL rule via `log`.
    pub fn new(disk: Arc<MemDisk>, log: Arc<LogManager>, capacity: usize) -> Self {
        let epoch = disk.current_epoch();
        let capacity = capacity.max(8);
        // Tiny pools (the eviction tests, min-size servers) keep one
        // stripe so their capacity semantics stay exact; big pools get
        // up to 8 stripes.
        let nshards = (capacity / 8).clamp(1, 8);
        let shards = (0..nshards)
            .map(|_| {
                Mutex::new(PoolShard {
                    frames: HashMap::new(),
                    tick: 0,
                })
            })
            .collect();
        BufferPool {
            disk,
            log,
            capacity,
            shard_capacity: capacity.div_ceil(nshards),
            epoch,
            shards,
        }
    }

    /// The underlying disk.
    pub fn disk(&self) -> &Arc<MemDisk> {
        &self.disk
    }

    /// Which stripe caches `id`.
    fn shard_of(&self, id: PageId) -> usize {
        id as usize % self.shards.len()
    }

    /// Fetch a page into the pool (reading from disk on miss) and pin it.
    pub fn fetch(&self, id: PageId) -> Result<PageGuard> {
        let si = self.shard_of(id);
        let mut shard = self.shards[si].lock();
        let _lw = obskit::lockcheck::held("BufferPool::shards");
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(frame) = shard.frames.get(&id) {
            frame.pins.fetch_add(1, Ordering::AcqRel);
            frame.last_used.store(tick, Ordering::Relaxed);
            return Ok(PageGuard {
                frame: Arc::clone(frame),
            });
        }
        self.make_room(&mut shard)?;
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        self.disk.read_page(id, &mut buf)?;
        // Every miss is a verification point: a torn or bit-flipped
        // durable image must never serve rows. Quarantine the corrupt
        // bytes (discard them) and rebuild the page from the log; the
        // repaired frame is dirty so a later flush re-stamps the disk.
        let mut dirty = false;
        if !page_image_ok(&buf) {
            buf = self.repair_page(id)?;
            dirty = true;
        }
        let frame = Arc::new(Frame {
            id,
            data: RwLock::new(buf),
            dirty: AtomicBool::new(dirty),
            pins: AtomicUsize::new(1),
            last_used: AtomicU64::new(tick),
        });
        shard.frames.insert(id, Arc::clone(&frame));
        Ok(PageGuard { frame })
    }

    /// Rebuild page `id` from the durable log: start from a zeroed image
    /// and replay every durable record touching the page, LSN-guarded
    /// exactly like restart redo. Sound because the caller holds no
    /// cached frame for the page (this runs on a pool miss), so the WAL
    /// rule guarantees every record for the last flushed image is
    /// durable. Counts `storage.corruption.{detected,repaired}` and
    /// times the rebuild as `recovery.repair`.
    fn repair_page(&self, id: PageId) -> Result<Box<[u8; PAGE_SIZE]>> {
        faultkit::crashpoint!("disk.repair");
        let metrics = obskit::metrics::global();
        metrics.counter("storage.corruption.detected").incr();
        obskit::event!("disk.page.corrupt", "page {id} failed checksum; rebuilding");
        let t_repair = Instant::now();
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        // Unlike restart redo, no LSN guard is needed: the image starts
        // from zero and the log holds its full clean history exactly
        // once, in LSN order (the very first record of the log has LSN
        // 0, which an `lsn() < lsn` guard would wrongly skip).
        for (lsn, rec) in self.log.store().records_from(0)? {
            match rec {
                LogRecord::AllocPage { table, page } if page == id => {
                    let mut p = Page::init(&mut buf, table);
                    p.set_lsn(lsn);
                }
                LogRecord::Insert {
                    page, slot, data, ..
                } if page == id => {
                    let mut p = Page::new(&mut buf);
                    p.insert_expect(slot, &data)?;
                    p.set_lsn(lsn);
                }
                LogRecord::Delete { page, slot, .. } if page == id => {
                    let mut p = Page::new(&mut buf);
                    p.tombstone(slot)?;
                    p.set_lsn(lsn);
                }
                LogRecord::Clr {
                    page, slot, action, ..
                } if page == id => {
                    let mut p = Page::new(&mut buf);
                    match action {
                        ClrAction::Tombstone => p.tombstone(slot)?,
                        ClrAction::Untombstone => p.untombstone(slot)?,
                    }
                    p.set_lsn(lsn);
                }
                _ => {}
            }
        }
        metrics.counter("storage.corruption.repaired").incr();
        metrics.record("recovery.repair", t_repair.elapsed());
        obskit::event!("recovery.repair", "page {id} rebuilt from wal redo");
        Ok(buf)
    }

    /// Allocate a brand-new page on disk, format it for `table_id`, and
    /// return it pinned and dirty.
    pub fn new_page(&self, table_id: u32) -> Result<(PageId, PageGuard)> {
        let id = self.disk.allocate(self.epoch)?;
        let si = self.shard_of(id);
        let mut shard = self.shards[si].lock();
        let _lw = obskit::lockcheck::held("BufferPool::shards");
        shard.tick += 1;
        let tick = shard.tick;
        self.make_room(&mut shard)?;
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        Page::init(&mut buf, table_id);
        let frame = Arc::new(Frame {
            id,
            data: RwLock::new(buf),
            dirty: AtomicBool::new(true),
            pins: AtomicUsize::new(1),
            last_used: AtomicU64::new(tick),
        });
        shard.frames.insert(id, Arc::clone(&frame));
        Ok((id, PageGuard { frame }))
    }

    /// Evict an unpinned frame if this stripe is at capacity.
    fn make_room(&self, shard: &mut PoolShard) -> Result<()> {
        while shard.frames.len() >= self.shard_capacity {
            let victim = shard
                .frames
                .values()
                .filter(|f| f.pins.load(Ordering::Acquire) == 0)
                .min_by_key(|f| f.last_used.load(Ordering::Relaxed))
                .map(|f| f.id);
            let Some(vid) = victim else {
                // Everything pinned: allow the stripe to grow past capacity
                // rather than deadlock. Large transactions at tiny pool
                // sizes are an accepted overflow case.
                return Ok(());
            };
            // The victim id was selected from this same map under the lock,
            // so the entry is still there; skip defensively if it is not.
            let Some(frame) = shard.frames.remove(&vid) else {
                continue;
            };
            if let Err(e) = self.flush_frame(&frame) {
                // The frame was already removed from the map; dropping it
                // here would lose the only copy of its (possibly dirty)
                // content. Put it back, still dirty, and surface the
                // error — a retry can evict it once the device behaves.
                frame.dirty.store(true, Ordering::Release);
                shard.frames.insert(vid, frame);
                return Err(e);
            }
        }
        Ok(())
    }

    fn flush_frame(&self, frame: &Frame) -> Result<()> {
        if !frame.dirty.swap(false, Ordering::AcqRel) {
            return Ok(());
        }
        let data = frame.data.read();
        let _lw = obskit::lockcheck::held("Frame::data");
        let lsn = PageRef::new(&data).lsn();
        // WAL rule.
        self.log.flush_to(lsn)?;
        self.disk.write_page(frame.id, &data, self.epoch)?;
        Ok(())
    }

    /// Flush every dirty frame (checkpoint path).
    pub fn flush_all(&self) -> Result<()> {
        let mut frames: Vec<Arc<Frame>> = Vec::new();
        for si in 0..self.shards.len() {
            let shard = self.shards[si].lock();
            let _lw = obskit::lockcheck::held("BufferPool::shards");
            frames.extend(shard.frames.values().cloned());
        }
        for f in frames {
            self.flush_frame(&f)?;
        }
        Ok(())
    }

    /// Number of cached frames (for tests/metrics).
    pub fn cached(&self) -> usize {
        self.shards.iter().map(|s| s.lock().frames.len()).sum()
    }

    /// Walk every allocated page verifying its durable checksum,
    /// repairing damage in place via WAL redo. Background-free: runs to
    /// completion on the caller's thread. Intended for quiet points
    /// (post-recovery hook, maintenance API) — concurrent writers are
    /// tolerated by re-verifying under the pool lock before repairing,
    /// but scrubbing a quiescent engine is the meaningful mode.
    pub fn scrub(&self) -> Result<ScrubReport> {
        faultkit::crashpoint!("disk.scrub");
        let t_scrub = Instant::now();
        let mut report = ScrubReport::default();
        for id in 0..self.disk.num_pages() {
            report.pages += 1;
            let mut buf = Box::new([0u8; PAGE_SIZE]);
            self.disk.read_page(id, &mut buf)?;
            if page_image_ok(&buf) {
                continue;
            }
            // Serialize against fetch/eviction of this page: under its
            // stripe's lock nobody can flush a newer image between our
            // re-check and the repair write-back.
            let si = self.shard_of(id);
            let _shard = self.shards[si].lock();
            let _lw = obskit::lockcheck::held("BufferPool::shards");
            self.disk.read_page(id, &mut buf)?;
            if !page_image_ok(&buf) {
                report.detected += 1;
                let repaired = self.repair_page(id)?;
                self.disk.write_page(id, &repaired, self.epoch)?;
                report.repaired += 1;
            }
        }
        obskit::metrics::global().record("storage.scrub", t_scrub.elapsed());
        obskit::event!(
            "disk.scrub.done",
            "{} pages, {} corrupt, {} repaired",
            report.pages,
            report.detected,
            report.repaired
        );
        Ok(report)
    }
}

/// What a [`BufferPool::scrub`] pass found and fixed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScrubReport {
    /// Allocated pages examined.
    pub pages: u32,
    /// Pages whose durable image failed checksum verification.
    pub detected: u32,
    /// Pages rebuilt from WAL redo and rewritten.
    pub repaired: u32,
}

// Errors from make_room can only originate in disk/log I/O.
impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("cached", &self.cached())
            .finish()
    }
}

/// Convenience: run `f` with a mutable [`Page`] view of the guard,
/// stamping `lsn` afterwards.
pub fn with_page_mut<R>(
    guard: &PageGuard,
    lsn: u64,
    f: impl FnOnce(&mut Page<'_>) -> Result<R>,
) -> Result<R> {
    let mut data = guard.write();
    let mut page = Page::new(&mut data);
    let r = f(&mut page)?;
    // Never move the page LSN backwards: redo passes record LSNs older
    // than the page when it skips already-applied records, and regressing
    // the LSN would make a later flush + recovery re-apply them.
    if lsn > page.lsn() {
        page.set_lsn(lsn);
    }
    Ok(r)
}

/// Convenience: run `f` with a read-only [`super::page::PageRef`] view,
/// holding only the frame's shared lock.
pub fn with_page<R>(guard: &PageGuard, f: impl FnOnce(&super::page::PageRef<'_>) -> R) -> R {
    let data = guard.read();
    let page = super::page::PageRef::new(&data);
    f(&page)
}

#[allow(dead_code)]
fn _assert_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<BufferPool>();
    check::<PageGuard>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::disk::DiskModel;
    use crate::wal::log::LogStore;
    use faultkit::disk::{DiskFaultKind, DiskPlan};

    fn pool(capacity: usize) -> BufferPool {
        let disk = Arc::new(MemDisk::new(DiskModel::default()));
        let store = Arc::new(LogStore::new());
        let log = Arc::new(LogManager::new(store));
        BufferPool::new(disk, log, capacity)
    }

    /// Drop every cached frame (force misses on the next fetch).
    fn evict_all(pool: &BufferPool) {
        for s in &pool.shards {
            s.lock().frames.clear();
        }
    }

    /// Build a pool whose page 0 is WAL-logged like the heap layer would
    /// log it, flushed to disk, and evicted — ready to be corrupted.
    fn logged_page(pool: &BufferPool) -> PageId {
        let (pid, g) = pool.new_page(7).unwrap();
        let l0 = pool.log.append(&LogRecord::AllocPage {
            table: 7,
            page: pid,
        });
        with_page_mut(&g, l0, |_| Ok(())).unwrap();
        for i in 0..3u8 {
            let data = vec![i; 20];
            let lsn = pool.log.append(&LogRecord::Insert {
                txn: 1,
                table: 7,
                page: pid,
                slot: i as u16,
                data: data.clone(),
            });
            with_page_mut(&g, lsn, |p| {
                p.insert_expect(i as u16, &data)?;
                Ok(())
            })
            .unwrap();
        }
        drop(g);
        pool.log.flush_all().unwrap();
        pool.flush_all().unwrap();
        pid
    }

    fn corrupt_on_disk(pool: &BufferPool, pid: PageId) {
        let mut raw = [0u8; PAGE_SIZE];
        pool.disk().read_page(pid, &mut raw).unwrap();
        pool.disk()
            .set_fault_plan(Some(DiskPlan::at(DiskFaultKind::BitFlip, 1)));
        pool.disk().write_page(pid, &raw, 0).unwrap();
        pool.disk().set_fault_plan(None);
    }

    #[test]
    fn fetch_miss_repairs_corrupt_page() {
        let pool = pool(16);
        let pid = logged_page(&pool);
        corrupt_on_disk(&pool, pid);
        // Evicted + corrupt on disk: force a miss.
        evict_all(&pool);
        let g = pool.fetch(pid).unwrap();
        with_page(&g, |p| {
            assert_eq!(p.table_id(), 7);
            for i in 0..3u8 {
                assert_eq!(p.get(i as u16).unwrap(), vec![i; 20].as_slice());
            }
        });
        // The repaired frame is dirty; flushing re-stamps the disk image.
        drop(g);
        pool.flush_all().unwrap();
        let mut raw = [0u8; PAGE_SIZE];
        pool.disk().read_page(pid, &mut raw).unwrap();
        assert!(page_image_ok(&raw));
    }

    #[test]
    fn scrub_detects_and_repairs_in_place() {
        let pool = pool(16);
        let pid = logged_page(&pool);
        corrupt_on_disk(&pool, pid);
        evict_all(&pool);
        let report = pool.scrub().unwrap();
        assert_eq!(report.detected, 1);
        assert_eq!(report.repaired, 1);
        assert!(report.pages >= 1);
        // Clean after repair: a second scrub finds nothing.
        let report2 = pool.scrub().unwrap();
        assert_eq!(report2.detected, 0);
        // And the disk image itself verifies again.
        let mut raw = [0u8; PAGE_SIZE];
        pool.disk().read_page(pid, &mut raw).unwrap();
        assert!(page_image_ok(&raw));
    }

    #[test]
    fn failed_eviction_flush_keeps_page_content() {
        let pool = pool(8);
        let mut pids = Vec::new();
        for i in 0..8u32 {
            let (pid, g) = pool.new_page(1).unwrap();
            with_page_mut(&g, i as u64 + 1, |p| {
                p.insert(format!("keep{i}").as_bytes()).unwrap();
                Ok(())
            })
            .unwrap();
            pids.push(pid);
        }
        // Next allocation must evict; the eviction write fails.
        pool.disk()
            .set_fault_plan(Some(DiskPlan::at(DiskFaultKind::WriteErr, 1)));
        assert!(pool.new_page(1).is_err());
        pool.disk().set_fault_plan(None);
        // No content was lost: every page still reads back, either from
        // the reinserted frame or from disk.
        for (i, pid) in pids.iter().enumerate() {
            let g = pool.fetch(*pid).unwrap();
            with_page(&g, |p| {
                assert_eq!(p.get(0).unwrap(), format!("keep{i}").as_bytes());
            });
        }
    }

    #[test]
    fn new_page_and_fetch() {
        let pool = pool(16);
        let (pid, guard) = pool.new_page(42).unwrap();
        with_page_mut(&guard, 1, |p| {
            p.insert(b"tuple").unwrap();
            Ok(())
        })
        .unwrap();
        drop(guard);
        let g2 = pool.fetch(pid).unwrap();
        with_page(&g2, |p| {
            assert_eq!(p.table_id(), 42);
            assert_eq!(p.get(0).unwrap(), b"tuple");
        });
    }

    #[test]
    fn eviction_persists_dirty_pages() {
        let pool = pool(8);
        let mut pids = Vec::new();
        for i in 0..32u32 {
            let (pid, g) = pool.new_page(1).unwrap();
            with_page_mut(&g, i as u64 + 1, |p| {
                p.insert(format!("row{i}").as_bytes()).unwrap();
                Ok(())
            })
            .unwrap();
            pids.push(pid);
        }
        assert!(pool.cached() <= 8);
        // All pages readable with their contents after eviction churn.
        for (i, pid) in pids.iter().enumerate() {
            let g = pool.fetch(*pid).unwrap();
            with_page(&g, |p| {
                assert_eq!(p.get(0).unwrap(), format!("row{i}").as_bytes());
            });
        }
    }

    #[test]
    fn pinned_frames_not_evicted() {
        let pool = pool(8);
        let mut guards = Vec::new();
        for _ in 0..12 {
            guards.push(pool.new_page(1).unwrap().1);
        }
        // Pool grew past capacity rather than evicting pinned frames.
        assert_eq!(pool.cached(), 12);
        drop(guards);
        // Subsequent allocations can now evict.
        for _ in 0..8 {
            pool.new_page(1).unwrap();
        }
        assert!(pool.cached() <= 12);
    }

    #[test]
    fn striped_pool_spreads_pages_and_bounds_capacity() {
        let pool = pool(64);
        assert_eq!(pool.shards.len(), 8);
        assert_eq!(pool.shard_capacity, 8);
        let mut pids = Vec::new();
        for i in 0..128u32 {
            let (pid, g) = pool.new_page(1).unwrap();
            with_page_mut(&g, i as u64 + 1, |p| {
                p.insert(format!("s{i}").as_bytes()).unwrap();
                Ok(())
            })
            .unwrap();
            pids.push(pid);
        }
        // Sequential page ids land round-robin: every stripe is in use
        // and per-stripe eviction bounds the total.
        assert!(pool.shards.iter().all(|s| !s.lock().frames.is_empty()));
        assert!(pool.cached() <= pool.capacity);
        // Nothing was lost to eviction churn across stripes.
        for (i, pid) in pids.iter().enumerate() {
            let g = pool.fetch(*pid).unwrap();
            with_page(&g, |p| {
                assert_eq!(p.get(0).unwrap(), format!("s{i}").as_bytes());
            });
        }
    }

    #[test]
    fn flush_all_writes_to_disk() {
        let pool = pool(16);
        let (pid, g) = pool.new_page(9).unwrap();
        with_page_mut(&g, 5, |p| {
            p.insert(b"persist me").unwrap();
            Ok(())
        })
        .unwrap();
        drop(g);
        pool.flush_all().unwrap();
        let mut raw = [0u8; PAGE_SIZE];
        pool.disk().read_page(pid, &mut raw).unwrap();
        let mut buf = Box::new(raw);
        let mut owned = Page::new(&mut buf);
        assert_eq!(owned.get(0).unwrap(), b"persist me");
        let _ = &mut owned;
    }
}
