//! Buffer pool with pin counting, LRU-ish eviction and the WAL rule
//! (a dirty page is never written to disk before the log is flushed
//! through that page's LSN).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use super::disk::{MemDisk, PageId, PAGE_SIZE};
use super::page::{Page, PageRef};
use crate::error::Result;
use crate::wal::log::LogManager;

/// A cached page frame.
pub struct Frame {
    /// The cached page's id.
    pub id: PageId,
    data: RwLock<Box<[u8; PAGE_SIZE]>>,
    dirty: AtomicBool,
    pins: AtomicUsize,
    last_used: AtomicU64,
}

/// A pinned reference to a cached page. The pin is released on drop;
/// the frame cannot be evicted while pinned.
pub struct PageGuard {
    frame: Arc<Frame>,
}

impl PageGuard {
    /// The pinned page's id.
    pub fn id(&self) -> PageId {
        self.frame.id
    }

    /// Shared access to the raw page bytes.
    pub fn read(&self) -> RwLockReadGuard<'_, Box<[u8; PAGE_SIZE]>> {
        self.frame.data.read()
    }

    /// Exclusive access; marks the frame dirty.
    pub fn write(&self) -> RwLockWriteGuard<'_, Box<[u8; PAGE_SIZE]>> {
        self.frame.dirty.store(true, Ordering::Release);
        self.frame.data.write()
    }
}

impl Drop for PageGuard {
    fn drop(&mut self) {
        self.frame.pins.fetch_sub(1, Ordering::AcqRel);
    }
}

struct PoolInner {
    frames: HashMap<PageId, Arc<Frame>>,
    tick: u64,
}

/// The buffer pool.
pub struct BufferPool {
    disk: Arc<MemDisk>,
    log: Arc<LogManager>,
    capacity: usize,
    epoch: u64,
    inner: Mutex<PoolInner>,
}

impl BufferPool {
    /// Pool over `disk` enforcing the WAL rule via `log`.
    pub fn new(disk: Arc<MemDisk>, log: Arc<LogManager>, capacity: usize) -> Self {
        let epoch = disk.current_epoch();
        BufferPool {
            disk,
            log,
            capacity: capacity.max(8),
            epoch,
            inner: Mutex::new(PoolInner {
                frames: HashMap::new(),
                tick: 0,
            }),
        }
    }

    /// The underlying disk.
    pub fn disk(&self) -> &Arc<MemDisk> {
        &self.disk
    }

    /// Fetch a page into the pool (reading from disk on miss) and pin it.
    pub fn fetch(&self, id: PageId) -> Result<PageGuard> {
        let mut inner = self.inner.lock();
        let _lw = obskit::lockcheck::held("BufferPool::inner");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(frame) = inner.frames.get(&id) {
            frame.pins.fetch_add(1, Ordering::AcqRel);
            frame.last_used.store(tick, Ordering::Relaxed);
            return Ok(PageGuard {
                frame: Arc::clone(frame),
            });
        }
        self.make_room(&mut inner)?;
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        self.disk.read_page(id, &mut buf)?;
        let frame = Arc::new(Frame {
            id,
            data: RwLock::new(buf),
            dirty: AtomicBool::new(false),
            pins: AtomicUsize::new(1),
            last_used: AtomicU64::new(tick),
        });
        inner.frames.insert(id, Arc::clone(&frame));
        Ok(PageGuard { frame })
    }

    /// Allocate a brand-new page on disk, format it for `table_id`, and
    /// return it pinned and dirty.
    pub fn new_page(&self, table_id: u32) -> Result<(PageId, PageGuard)> {
        let id = self.disk.allocate(self.epoch)?;
        let mut inner = self.inner.lock();
        let _lw = obskit::lockcheck::held("BufferPool::inner");
        inner.tick += 1;
        let tick = inner.tick;
        self.make_room(&mut inner)?;
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        Page::init(&mut buf, table_id);
        let frame = Arc::new(Frame {
            id,
            data: RwLock::new(buf),
            dirty: AtomicBool::new(true),
            pins: AtomicUsize::new(1),
            last_used: AtomicU64::new(tick),
        });
        inner.frames.insert(id, Arc::clone(&frame));
        Ok((id, PageGuard { frame }))
    }

    /// Evict an unpinned frame if the pool is at capacity.
    fn make_room(&self, inner: &mut PoolInner) -> Result<()> {
        while inner.frames.len() >= self.capacity {
            let victim = inner
                .frames
                .values()
                .filter(|f| f.pins.load(Ordering::Acquire) == 0)
                .min_by_key(|f| f.last_used.load(Ordering::Relaxed))
                .map(|f| f.id);
            let Some(vid) = victim else {
                // Everything pinned: allow the pool to grow past capacity
                // rather than deadlock. Large transactions at tiny pool
                // sizes are an accepted overflow case.
                return Ok(());
            };
            // The victim id was selected from this same map under the lock,
            // so the entry is still there; skip defensively if it is not.
            let Some(frame) = inner.frames.remove(&vid) else {
                continue;
            };
            self.flush_frame(&frame)?;
        }
        Ok(())
    }

    fn flush_frame(&self, frame: &Frame) -> Result<()> {
        if !frame.dirty.swap(false, Ordering::AcqRel) {
            return Ok(());
        }
        let data = frame.data.read();
        let _lw = obskit::lockcheck::held("Frame::data");
        let lsn = PageRef::new(&data).lsn();
        // WAL rule.
        self.log.flush_to(lsn)?;
        self.disk.write_page(frame.id, &data, self.epoch)?;
        Ok(())
    }

    /// Flush every dirty frame (checkpoint path).
    pub fn flush_all(&self) -> Result<()> {
        let frames: Vec<Arc<Frame>> = {
            let inner = self.inner.lock();
            let _lw = obskit::lockcheck::held("BufferPool::inner");
            inner.frames.values().cloned().collect()
        };
        for f in frames {
            self.flush_frame(&f)?;
        }
        Ok(())
    }

    /// Number of cached frames (for tests/metrics).
    pub fn cached(&self) -> usize {
        self.inner.lock().frames.len()
    }
}

// Errors from make_room can only originate in disk/log I/O.
impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("cached", &self.cached())
            .finish()
    }
}

/// Convenience: run `f` with a mutable [`Page`] view of the guard,
/// stamping `lsn` afterwards.
pub fn with_page_mut<R>(
    guard: &PageGuard,
    lsn: u64,
    f: impl FnOnce(&mut Page<'_>) -> Result<R>,
) -> Result<R> {
    let mut data = guard.write();
    let mut page = Page::new(&mut data);
    let r = f(&mut page)?;
    // Never move the page LSN backwards: redo passes record LSNs older
    // than the page when it skips already-applied records, and regressing
    // the LSN would make a later flush + recovery re-apply them.
    if lsn > page.lsn() {
        page.set_lsn(lsn);
    }
    Ok(r)
}

/// Convenience: run `f` with a read-only [`super::page::PageRef`] view,
/// holding only the frame's shared lock.
pub fn with_page<R>(guard: &PageGuard, f: impl FnOnce(&super::page::PageRef<'_>) -> R) -> R {
    let data = guard.read();
    let page = super::page::PageRef::new(&data);
    f(&page)
}

#[allow(dead_code)]
fn _assert_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<BufferPool>();
    check::<PageGuard>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::disk::DiskModel;
    use crate::wal::log::LogStore;

    fn pool(capacity: usize) -> BufferPool {
        let disk = Arc::new(MemDisk::new(DiskModel::default()));
        let store = Arc::new(LogStore::new());
        let log = Arc::new(LogManager::new(store));
        BufferPool::new(disk, log, capacity)
    }

    #[test]
    fn new_page_and_fetch() {
        let pool = pool(16);
        let (pid, guard) = pool.new_page(42).unwrap();
        with_page_mut(&guard, 1, |p| {
            p.insert(b"tuple").unwrap();
            Ok(())
        })
        .unwrap();
        drop(guard);
        let g2 = pool.fetch(pid).unwrap();
        with_page(&g2, |p| {
            assert_eq!(p.table_id(), 42);
            assert_eq!(p.get(0).unwrap(), b"tuple");
        });
    }

    #[test]
    fn eviction_persists_dirty_pages() {
        let pool = pool(8);
        let mut pids = Vec::new();
        for i in 0..32u32 {
            let (pid, g) = pool.new_page(1).unwrap();
            with_page_mut(&g, i as u64 + 1, |p| {
                p.insert(format!("row{i}").as_bytes()).unwrap();
                Ok(())
            })
            .unwrap();
            pids.push(pid);
        }
        assert!(pool.cached() <= 8);
        // All pages readable with their contents after eviction churn.
        for (i, pid) in pids.iter().enumerate() {
            let g = pool.fetch(*pid).unwrap();
            with_page(&g, |p| {
                assert_eq!(p.get(0).unwrap(), format!("row{i}").as_bytes());
            });
        }
    }

    #[test]
    fn pinned_frames_not_evicted() {
        let pool = pool(8);
        let mut guards = Vec::new();
        for _ in 0..12 {
            guards.push(pool.new_page(1).unwrap().1);
        }
        // Pool grew past capacity rather than evicting pinned frames.
        assert_eq!(pool.cached(), 12);
        drop(guards);
        // Subsequent allocations can now evict.
        for _ in 0..8 {
            pool.new_page(1).unwrap();
        }
        assert!(pool.cached() <= 12);
    }

    #[test]
    fn flush_all_writes_to_disk() {
        let pool = pool(16);
        let (pid, g) = pool.new_page(9).unwrap();
        with_page_mut(&g, 5, |p| {
            p.insert(b"persist me").unwrap();
            Ok(())
        })
        .unwrap();
        drop(g);
        pool.flush_all().unwrap();
        let mut raw = [0u8; PAGE_SIZE];
        pool.disk().read_page(pid, &mut raw).unwrap();
        let mut buf = Box::new(raw);
        let mut owned = Page::new(&mut buf);
        assert_eq!(owned.get(0).unwrap(), b"persist me");
        let _ = &mut owned;
    }
}
