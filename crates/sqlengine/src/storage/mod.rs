//! Storage layer: simulated disk, slotted pages, buffer pool, heap files.

pub mod buffer;
pub mod checksum;
pub mod disk;
pub mod heap;
pub mod page;

pub use heap::{RowId, Storage};
