//! Slotted heap pages.
//!
//! Layout (all integers big-endian):
//!
//! ```text
//! 0..8    page LSN (u64)        — last log record applied to this page
//! 8..12   table id (u32)
//! 12..14  slot count (u16)
//! 14..16  free_end (u16)        — offset where tuple data begins
//! 16..    slot array, 4 B/slot  — offset u16, len|flags u16
//! ...     free space
//! ...PAGE_CONTENT  tuple data (grows downward from the content end)
//! PAGE_CONTENT..PAGE_SIZE  checksum trailer (u64, stamped by the disk)
//! ```
//!
//! Tuple space is append-only within a page: deleting a row *tombstones*
//! its slot but never reclaims its bytes. This makes undo (and redo) of
//! insert/delete trivially idempotent — undo-insert re-tombstones the slot,
//! undo-delete clears the tombstone and finds the bytes still in place —
//! at the cost of space amplification, which is acceptable at the scales
//! this reproduction runs.

use super::disk::PAGE_SIZE;
use crate::error::{Error, Result};

/// Bytes of a page usable by the slotted layout; the trailing 8 bytes
/// hold the CRC64 checksum the disk stamps on every write.
pub const PAGE_CONTENT: usize = PAGE_SIZE - 8;

const HEADER: usize = 16;
const SLOT_BYTES: usize = 4;
const TOMBSTONE: u16 = 0x8000;
const LEN_MASK: u16 = 0x7FFF;

/// Slot index within a page.
pub type SlotId = u16;

/// Copy `N` bytes out of `buf` starting at `at`. The compile-time width
/// sidesteps the fallible `try_into` that a slice conversion would need.
fn read_arr<const N: usize>(buf: &[u8], at: usize) -> [u8; N] {
    let mut out = [0u8; N];
    out.copy_from_slice(&buf[at..at + N]);
    out
}

/// A view over a page buffer providing slotted-page operations.
pub struct Page<'a> {
    buf: &'a mut [u8; PAGE_SIZE],
}

impl<'a> Page<'a> {
    /// View an existing (already formatted) page buffer.
    pub fn new(buf: &'a mut [u8; PAGE_SIZE]) -> Self {
        Page { buf }
    }

    /// Format a fresh page.
    pub fn init(buf: &'a mut [u8; PAGE_SIZE], table_id: u32) -> Self {
        buf.fill(0);
        let mut p = Page { buf };
        p.set_table_id(table_id);
        p.set_slot_count(0);
        p.set_free_end(PAGE_CONTENT as u16);
        p
    }

    /// LSN of the last log record applied to this page.
    pub fn lsn(&self) -> u64 {
        u64::from_be_bytes(read_arr(self.buf, 0))
    }

    /// Stamp the page LSN.
    pub fn set_lsn(&mut self, lsn: u64) {
        self.buf[0..8].copy_from_slice(&lsn.to_be_bytes());
    }

    /// Owning table.
    pub fn table_id(&self) -> u32 {
        u32::from_be_bytes(read_arr(self.buf, 8))
    }

    fn set_table_id(&mut self, id: u32) {
        self.buf[8..12].copy_from_slice(&id.to_be_bytes());
    }

    /// Number of slots (live + tombstoned).
    pub fn slot_count(&self) -> u16 {
        u16::from_be_bytes(read_arr(self.buf, 12))
    }

    fn set_slot_count(&mut self, n: u16) {
        self.buf[12..14].copy_from_slice(&n.to_be_bytes());
    }

    fn free_end(&self) -> u16 {
        u16::from_be_bytes(read_arr(self.buf, 14))
    }

    fn set_free_end(&mut self, v: u16) {
        self.buf[14..16].copy_from_slice(&v.to_be_bytes());
    }

    fn slot_entry(&self, slot: SlotId) -> (u16, u16) {
        let base = HEADER + slot as usize * SLOT_BYTES;
        let off = u16::from_be_bytes(read_arr(self.buf, base));
        let lf = u16::from_be_bytes(read_arr(self.buf, base + 2));
        (off, lf)
    }

    fn set_slot_entry(&mut self, slot: SlotId, off: u16, lf: u16) {
        let base = HEADER + slot as usize * SLOT_BYTES;
        self.buf[base..base + 2].copy_from_slice(&off.to_be_bytes());
        self.buf[base + 2..base + 4].copy_from_slice(&lf.to_be_bytes());
    }

    /// Free bytes available for a new tuple (accounting for its slot entry).
    pub fn free_space(&self) -> usize {
        let slots_end = HEADER + self.slot_count() as usize * SLOT_BYTES;
        (self.free_end() as usize).saturating_sub(slots_end)
    }

    /// Whether a tuple of `len` bytes fits.
    pub fn fits(&self, len: usize) -> bool {
        len <= LEN_MASK as usize && self.free_space() >= len + SLOT_BYTES
    }

    /// Insert tuple bytes, returning the new slot id, or `None` if full.
    pub fn insert(&mut self, data: &[u8]) -> Option<SlotId> {
        if !self.fits(data.len()) {
            return None;
        }
        let slot = self.slot_count();
        let new_end = self.free_end() - data.len() as u16;
        self.buf[new_end as usize..new_end as usize + data.len()].copy_from_slice(data);
        self.set_slot_entry(slot, new_end, data.len() as u16);
        self.set_slot_count(slot + 1);
        self.set_free_end(new_end);
        Some(slot)
    }

    /// Redo-path insert: must land on exactly `slot`. Because pages are
    /// modified strictly in LSN order and redo replays that order over a
    /// prefix state, the next free slot is always the expected one.
    pub fn insert_expect(&mut self, slot: SlotId, data: &[u8]) -> Result<()> {
        let got = self
            .insert(data)
            .ok_or_else(|| Error::Storage("redo insert: page full".into()))?;
        if got != slot {
            return Err(Error::Storage(format!(
                "redo insert landed on slot {got}, expected {slot}"
            )));
        }
        Ok(())
    }

    /// Read a live tuple. `None` for tombstoned slots.
    pub fn get(&self, slot: SlotId) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, lf) = self.slot_entry(slot);
        if lf & TOMBSTONE != 0 {
            return None;
        }
        let len = (lf & LEN_MASK) as usize;
        Some(&self.buf[off as usize..off as usize + len])
    }

    /// Read tuple bytes regardless of tombstone state (undo/debug path).
    pub fn get_raw(&self, slot: SlotId) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, lf) = self.slot_entry(slot);
        let len = (lf & LEN_MASK) as usize;
        Some(&self.buf[off as usize..off as usize + len])
    }

    /// Whether `slot` is tombstoned (`None` if missing).
    pub fn is_tombstoned(&self, slot: SlotId) -> Option<bool> {
        if slot >= self.slot_count() {
            return None;
        }
        Some(self.slot_entry(slot).1 & TOMBSTONE != 0)
    }

    /// Mark a slot dead (delete / undo-insert). Idempotent.
    pub fn tombstone(&mut self, slot: SlotId) -> Result<()> {
        if slot >= self.slot_count() {
            return Err(Error::Storage(format!("tombstone of missing slot {slot}")));
        }
        let (off, lf) = self.slot_entry(slot);
        self.set_slot_entry(slot, off, lf | TOMBSTONE);
        Ok(())
    }

    /// Resurrect a tombstoned slot (undo-delete). Idempotent.
    pub fn untombstone(&mut self, slot: SlotId) -> Result<()> {
        if slot >= self.slot_count() {
            return Err(Error::Storage(format!(
                "untombstone of missing slot {slot}"
            )));
        }
        let (off, lf) = self.slot_entry(slot);
        self.set_slot_entry(slot, off, lf & !TOMBSTONE);
        Ok(())
    }

    /// Iterate live slot ids.
    pub fn live_slots(&self) -> impl Iterator<Item = SlotId> + '_ {
        (0..self.slot_count()).filter(|&s| {
            let (_, lf) = self.slot_entry(s);
            lf & TOMBSTONE == 0
        })
    }
}

/// Read-only view over a page buffer (used by scans so readers can share
/// the frame lock).
pub struct PageRef<'a> {
    buf: &'a [u8; PAGE_SIZE],
}

impl<'a> PageRef<'a> {
    /// View a page buffer read-only.
    pub fn new(buf: &'a [u8; PAGE_SIZE]) -> Self {
        PageRef { buf }
    }

    /// LSN of the last log record applied to this page.
    pub fn lsn(&self) -> u64 {
        u64::from_be_bytes(read_arr(self.buf, 0))
    }

    /// Owning table.
    pub fn table_id(&self) -> u32 {
        u32::from_be_bytes(read_arr(self.buf, 8))
    }

    /// Number of slots (live + tombstoned).
    pub fn slot_count(&self) -> u16 {
        u16::from_be_bytes(read_arr(self.buf, 12))
    }

    fn slot_entry(&self, slot: SlotId) -> (u16, u16) {
        let base = HEADER + slot as usize * SLOT_BYTES;
        let off = u16::from_be_bytes(read_arr(self.buf, base));
        let lf = u16::from_be_bytes(read_arr(self.buf, base + 2));
        (off, lf)
    }

    /// Read a live tuple. `None` for tombstoned or missing slots.
    pub fn get(&self, slot: SlotId) -> Option<&'a [u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, lf) = self.slot_entry(slot);
        if lf & TOMBSTONE != 0 {
            return None;
        }
        let len = (lf & LEN_MASK) as usize;
        Some(&self.buf[off as usize..off as usize + len])
    }

    /// Iterate live (non-tombstoned) slot ids.
    pub fn live_slots(&self) -> impl Iterator<Item = SlotId> + '_ {
        (0..self.slot_count()).filter(|&s| {
            let (_, lf) = self.slot_entry(s);
            lf & TOMBSTONE == 0
        })
    }

    fn free_end(&self) -> u16 {
        u16::from_be_bytes(read_arr(self.buf, 14))
    }

    /// Free bytes between the slot array and the tuple space.
    pub fn free_space(&self) -> usize {
        let slots_end = HEADER + self.slot_count() as usize * SLOT_BYTES;
        (self.free_end() as usize).saturating_sub(slots_end)
    }

    /// Whether a tuple of `len` bytes fits.
    pub fn fits(&self, len: usize) -> bool {
        len <= LEN_MASK as usize && self.free_space() >= len + SLOT_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Box<[u8; PAGE_SIZE]> {
        Box::new([0u8; PAGE_SIZE])
    }

    #[test]
    fn insert_and_get() {
        let mut buf = fresh();
        let mut p = Page::init(&mut buf, 7);
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(p.get(0).unwrap(), b"hello");
        assert_eq!(p.get(1).unwrap(), b"world!");
        assert_eq!(p.table_id(), 7);
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn tombstone_lifecycle() {
        let mut buf = fresh();
        let mut p = Page::init(&mut buf, 1);
        p.insert(b"abc").unwrap();
        assert_eq!(p.is_tombstoned(0), Some(false));
        p.tombstone(0).unwrap();
        assert!(p.get(0).is_none());
        assert_eq!(p.get_raw(0).unwrap(), b"abc");
        // Idempotent.
        p.tombstone(0).unwrap();
        p.untombstone(0).unwrap();
        assert_eq!(p.get(0).unwrap(), b"abc");
        assert_eq!(p.live_slots().count(), 1);
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut buf = fresh();
        let mut p = Page::init(&mut buf, 1);
        let tuple = [0u8; 100];
        let mut n = 0;
        while p.insert(&tuple).is_some() {
            n += 1;
        }
        // 8168 usable / 104 per tuple ≈ 78.
        assert!(n >= 70, "inserted only {n}");
        assert!(!p.fits(100));
        assert!(p.fits(p.free_space().saturating_sub(SLOT_BYTES)) || p.free_space() <= SLOT_BYTES);
    }

    #[test]
    fn deleted_space_not_reclaimed() {
        let mut buf = fresh();
        let mut p = Page::init(&mut buf, 1);
        let tuple = [1u8; 1000];
        for _ in 0..7 {
            p.insert(&tuple).unwrap();
        }
        let free_before = p.free_space();
        for s in 0..7 {
            p.tombstone(s).unwrap();
        }
        assert_eq!(p.free_space(), free_before);
    }

    #[test]
    fn lsn_round_trip() {
        let mut buf = fresh();
        let mut p = Page::init(&mut buf, 1);
        assert_eq!(p.lsn(), 0);
        p.set_lsn(0xDEAD_BEEF_1234);
        assert_eq!(p.lsn(), 0xDEAD_BEEF_1234);
    }

    #[test]
    fn insert_expect_enforces_slot() {
        let mut buf = fresh();
        let mut p = Page::init(&mut buf, 1);
        p.insert_expect(0, b"a").unwrap();
        assert!(p.insert_expect(5, b"b").is_err());
    }

    #[test]
    fn zero_length_tuple_ok() {
        let mut buf = fresh();
        let mut p = Page::init(&mut buf, 1);
        let s = p.insert(b"").unwrap();
        assert_eq!(p.get(s).unwrap(), b"");
    }
}
