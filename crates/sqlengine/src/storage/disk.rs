//! Simulated durable disk.
//!
//! The paper's server had three SCSI disks and was disk-bound in the TPC-C
//! experiment. We model the disk as an in-memory page store that (a) is
//! *durable* across simulated server crashes — the `MemDisk` lives in the
//! server's durable half and survives `crash()` — and (b) charges a
//! configurable per-I/O latency so a workload can be made disk-bound, with
//! busy-time accounting from which the benchmark harness derives the paper's
//! DISK UTIL column.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use crate::error::{Error, Result};

/// Fixed page size, matching SQL Server 7.0's 8 KiB pages.
pub const PAGE_SIZE: usize = 8192;

/// Page identifier: index into the disk's page array.
pub type PageId = u32;

/// Per-I/O latency model. Zero by default (tests); benchmarks configure
/// small latencies to reproduce the paper's disk-limited server.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiskModel {
    /// Service time charged per page read.
    pub read_latency: Duration,
    /// Service time charged per page write.
    pub write_latency: Duration,
}

impl DiskModel {
    /// Same latency for reads and writes.
    pub fn uniform(latency: Duration) -> Self {
        DiskModel {
            read_latency: latency,
            write_latency: latency,
        }
    }
}

/// Cumulative I/O statistics (monotonic; survives crashes with the disk).
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
    /// Total busy time in nanoseconds (simulated service time).
    busy_nanos: AtomicU64,
}

/// A point-in-time copy of [`IoStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Page reads so far.
    pub reads: u64,
    /// Page writes so far.
    pub writes: u64,
    /// Accumulated simulated service time.
    pub busy: Duration,
}

impl IoSnapshot {
    /// Difference of two snapshots (self - earlier).
    pub fn delta(self, earlier: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            busy: self.busy.saturating_sub(earlier.busy),
        }
    }
}

impl IoStats {
    /// Point-in-time copy of the counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            busy: Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed)),
        }
    }

    fn record(&self, is_write: bool, service: Duration) {
        if is_write {
            self.writes.fetch_add(1, Ordering::Relaxed);
        } else {
            self.reads.fetch_add(1, Ordering::Relaxed);
        }
        self.busy_nanos
            .fetch_add(service.as_nanos() as u64, Ordering::Relaxed);
    }
}

/// In-memory "durable" disk: survives simulated crashes because the server
/// keeps it in its durable half. Pages are allocated monotonically.
///
/// **Epoch fencing.** Every server incarnation writes under an epoch; a
/// simulated crash bumps the epoch, so stragglers from the dead
/// incarnation (e.g. a buffer-pool flush racing the crash) are rejected
/// instead of corrupting state the recovered server now owns.
pub struct MemDisk {
    pages: RwLock<Vec<Box<[u8; PAGE_SIZE]>>>,
    model: DiskModel,
    stats: IoStats,
    epoch: AtomicU64,
}

impl MemDisk {
    /// Empty disk with the given latency model.
    pub fn new(model: DiskModel) -> Self {
        MemDisk {
            pages: RwLock::new(Vec::new()),
            model,
            stats: IoStats::default(),
            epoch: AtomicU64::new(0),
        }
    }

    /// Cumulative I/O statistics.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Current writer epoch.
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Fence off all writers of earlier epochs (simulated crash).
    pub fn bump_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    fn check_epoch(&self, epoch: u64) -> Result<()> {
        if epoch != self.current_epoch() {
            return Err(Error::ServerShutdown);
        }
        Ok(())
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> u32 {
        self.pages.read().len() as u32
    }

    /// Allocate a fresh zeroed page and return its id.
    pub fn allocate(&self, epoch: u64) -> Result<PageId> {
        let mut pages = self.pages.write();
        let _lw = obskit::lockcheck::held("MemDisk::pages");
        self.check_epoch(epoch)?;
        pages.push(Box::new([0u8; PAGE_SIZE]));
        Ok((pages.len() - 1) as PageId)
    }

    /// Ensure the disk has at least `n` pages (used by recovery when
    /// redoing page allocations that had not been flushed).
    pub fn ensure_capacity(&self, n: u32, epoch: u64) -> Result<()> {
        let mut pages = self.pages.write();
        let _lw = obskit::lockcheck::held("MemDisk::pages");
        self.check_epoch(epoch)?;
        while (pages.len() as u32) < n {
            pages.push(Box::new([0u8; PAGE_SIZE]));
        }
        Ok(())
    }

    /// Read a page into `out`, charging the latency model.
    pub fn read_page(&self, id: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()> {
        self.simulate(false);
        let pages = self.pages.read();
        let _lw = obskit::lockcheck::held("MemDisk::pages");
        let page = pages
            .get(id as usize)
            .ok_or_else(|| Error::Storage(format!("read of unallocated page {id}")))?;
        out.copy_from_slice(&page[..]);
        Ok(())
    }

    /// Write a page, charging the latency model. Rejects stale epochs.
    pub fn write_page(&self, id: PageId, data: &[u8; PAGE_SIZE], epoch: u64) -> Result<()> {
        self.simulate(true);
        let mut pages = self.pages.write();
        let _lw = obskit::lockcheck::held("MemDisk::pages");
        self.check_epoch(epoch)?;
        let page = pages
            .get_mut(id as usize)
            .ok_or_else(|| Error::Storage(format!("write of unallocated page {id}")))?;
        page.copy_from_slice(data);
        Ok(())
    }

    /// Charge the latency model: spin for short waits so benchmark
    /// measurements are not quantized by the OS timer, sleep for long ones.
    fn simulate(&self, is_write: bool) {
        let lat = if is_write {
            self.model.write_latency
        } else {
            self.model.read_latency
        };
        self.stats.record(is_write, lat);
        if lat.is_zero() {
            return;
        }
        if lat >= Duration::from_millis(2) {
            std::thread::sleep(lat);
        } else {
            let start = Instant::now();
            while start.elapsed() < lat {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_write_round_trip() {
        let disk = MemDisk::new(DiskModel::default());
        let p0 = disk.allocate(0).unwrap();
        let p1 = disk.allocate(0).unwrap();
        assert_eq!((p0, p1), (0, 1));

        let mut data = [0u8; PAGE_SIZE];
        data[0] = 0xAB;
        data[PAGE_SIZE - 1] = 0xCD;
        disk.write_page(p1, &data, 0).unwrap();

        let mut out = [0u8; PAGE_SIZE];
        disk.read_page(p1, &mut out).unwrap();
        assert_eq!(out[0], 0xAB);
        assert_eq!(out[PAGE_SIZE - 1], 0xCD);

        // p0 still zeroed.
        disk.read_page(p0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn unallocated_access_is_error() {
        let disk = MemDisk::new(DiskModel::default());
        let mut out = [0u8; PAGE_SIZE];
        assert!(disk.read_page(3, &mut out).is_err());
        assert!(disk.write_page(0, &out, 0).is_err());
    }

    #[test]
    fn stats_accumulate() {
        let disk = MemDisk::new(DiskModel::uniform(Duration::from_micros(10)));
        let p = disk.allocate(0).unwrap();
        let data = [0u8; PAGE_SIZE];
        let before = disk.stats().snapshot();
        disk.write_page(p, &data, 0).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        disk.read_page(p, &mut out).unwrap();
        let d = disk.stats().snapshot().delta(before);
        assert_eq!(d.reads, 1);
        assert_eq!(d.writes, 1);
        assert!(d.busy >= Duration::from_micros(20));
    }

    #[test]
    fn epoch_fencing_rejects_stale_writers() {
        let disk = MemDisk::new(DiskModel::default());
        let p = disk.allocate(0).unwrap();
        let data = [0u8; PAGE_SIZE];
        assert_eq!(disk.bump_epoch(), 1);
        assert_eq!(
            disk.write_page(p, &data, 0),
            Err(crate::error::Error::ServerShutdown)
        );
        assert!(disk.allocate(0).is_err());
        // Current epoch still works.
        disk.write_page(p, &data, 1).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        disk.read_page(p, &mut out).unwrap();
    }

    #[test]
    fn ensure_capacity_grows_only() {
        let disk = MemDisk::new(DiskModel::default());
        disk.ensure_capacity(4, 0).unwrap();
        assert_eq!(disk.num_pages(), 4);
        disk.ensure_capacity(2, 0).unwrap();
        assert_eq!(disk.num_pages(), 4);
    }
}
