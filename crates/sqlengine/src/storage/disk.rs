//! Simulated durable disk.
//!
//! The paper's server had three SCSI disks and was disk-bound in the TPC-C
//! experiment. We model the disk as an in-memory page store that (a) is
//! *durable* across simulated server crashes — the `MemDisk` lives in the
//! server's durable half and survives `crash()` — and (b) charges a
//! configurable per-I/O latency so a workload can be made disk-bound, with
//! busy-time accounting from which the benchmark harness derives the paper's
//! DISK UTIL column.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use faultkit::crashpoint;
use faultkit::disk::{DiskDevice, DiskFault, DiskOp, DiskPlan, DiskSchedule};
use parking_lot::{Mutex, RwLock};

use super::checksum;
use super::page::PAGE_CONTENT;
use crate::error::{Error, Result};

/// Fixed page size, matching SQL Server 7.0's 8 KiB pages.
pub const PAGE_SIZE: usize = 8192;

/// Minimum bytes a torn write persists: the slotted-page header, so the
/// new LSN always lands and a torn image always fails verification.
const TORN_MIN: usize = 16;

/// Whether a raw page image passes checksum verification. All-zero
/// pages (freshly allocated, never written) are vacuously valid: the
/// disk has not stamped them yet.
pub fn page_image_ok(buf: &[u8; PAGE_SIZE]) -> bool {
    let mut stored = [0u8; 8];
    stored.copy_from_slice(&buf[PAGE_CONTENT..]);
    let stored = u64::from_be_bytes(stored);
    if stored == 0 && buf.iter().all(|&b| b == 0) {
        return true;
    }
    checksum::crc64(&buf[..PAGE_CONTENT]) == stored
}

/// Page identifier: index into the disk's page array.
pub type PageId = u32;

/// Per-I/O latency model. Zero by default (tests); benchmarks configure
/// small latencies to reproduce the paper's disk-limited server.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiskModel {
    /// Service time charged per page read.
    pub read_latency: Duration,
    /// Service time charged per page write.
    pub write_latency: Duration,
}

impl DiskModel {
    /// Same latency for reads and writes.
    pub fn uniform(latency: Duration) -> Self {
        DiskModel {
            read_latency: latency,
            write_latency: latency,
        }
    }
}

/// Cumulative I/O statistics (monotonic; survives crashes with the disk).
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
    /// Total busy time in nanoseconds (simulated service time).
    busy_nanos: AtomicU64,
}

/// A point-in-time copy of [`IoStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Page reads so far.
    pub reads: u64,
    /// Page writes so far.
    pub writes: u64,
    /// Accumulated simulated service time.
    pub busy: Duration,
}

impl IoSnapshot {
    /// Difference of two snapshots (self - earlier).
    pub fn delta(self, earlier: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            busy: self.busy.saturating_sub(earlier.busy),
        }
    }
}

impl IoStats {
    /// Point-in-time copy of the counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            busy: Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed)),
        }
    }

    fn record(&self, is_write: bool, service: Duration) {
        if is_write {
            self.writes.fetch_add(1, Ordering::Relaxed);
        } else {
            self.reads.fetch_add(1, Ordering::Relaxed);
        }
        self.busy_nanos
            .fetch_add(service.as_nanos() as u64, Ordering::Relaxed);
    }
}

/// In-memory "durable" disk: survives simulated crashes because the server
/// keeps it in its durable half. Pages are allocated monotonically.
///
/// **Epoch fencing.** Every server incarnation writes under an epoch; a
/// simulated crash bumps the epoch, so stragglers from the dead
/// incarnation (e.g. a buffer-pool flush racing the crash) are rejected
/// instead of corrupting state the recovered server now owns.
pub struct MemDisk {
    pages: RwLock<Vec<Box<[u8; PAGE_SIZE]>>>,
    model: DiskModel,
    stats: IoStats,
    epoch: AtomicU64,
    /// Injected fault schedule (`faultkit::disk`). Lives with the disk —
    /// the *hardware* is faulty, not the process — so a schedule
    /// installed before a simulated crash keeps firing after recovery.
    /// Never held across another lock: the draw happens before `pages`.
    faults: Mutex<Option<DiskSchedule>>,
}

impl MemDisk {
    /// Empty disk with the given latency model.
    pub fn new(model: DiskModel) -> Self {
        MemDisk {
            pages: RwLock::new(Vec::new()),
            model,
            stats: IoStats::default(),
            epoch: AtomicU64::new(0),
            faults: Mutex::new(None),
        }
    }

    /// Install (or clear) a storage fault schedule for the data device.
    pub fn set_fault_plan(&self, plan: Option<DiskPlan>) {
        *self.faults.lock() = plan.map(|p| p.schedule(DiskDevice::Data));
    }

    /// Draw the next injected fault for an I/O of class `op`, recording
    /// it in obskit when one fires. The guard is scoped: the draw never
    /// overlaps the `pages` lock.
    fn draw_fault(&self, op: DiskOp) -> Option<DiskFault> {
        match op {
            DiskOp::Read => crashpoint!("disk.read"),
            DiskOp::Write => crashpoint!("disk.write"),
            DiskOp::Flush => {}
        }
        let fault = self.faults.lock().as_mut().and_then(|s| s.next_fault(op));
        if let Some(f) = fault {
            obskit::metrics::global()
                .counter("storage.fault.injected")
                .incr();
            obskit::event!("disk.fault.inject", "data {}", f.kind().name());
        }
        fault
    }

    /// Cumulative I/O statistics.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Current writer epoch.
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Fence off all writers of earlier epochs (simulated crash).
    pub fn bump_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    fn check_epoch(&self, epoch: u64) -> Result<()> {
        if epoch != self.current_epoch() {
            return Err(Error::ServerShutdown);
        }
        Ok(())
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> u32 {
        self.pages.read().len() as u32
    }

    /// Allocate a fresh zeroed page and return its id.
    pub fn allocate(&self, epoch: u64) -> Result<PageId> {
        let mut pages = self.pages.write();
        let _lw = obskit::lockcheck::held("MemDisk::pages");
        self.check_epoch(epoch)?;
        pages.push(Box::new([0u8; PAGE_SIZE]));
        Ok((pages.len() - 1) as PageId)
    }

    /// Ensure the disk has at least `n` pages (used by recovery when
    /// redoing page allocations that had not been flushed).
    pub fn ensure_capacity(&self, n: u32, epoch: u64) -> Result<()> {
        let mut pages = self.pages.write();
        let _lw = obskit::lockcheck::held("MemDisk::pages");
        self.check_epoch(epoch)?;
        while (pages.len() as u32) < n {
            pages.push(Box::new([0u8; PAGE_SIZE]));
        }
        Ok(())
    }

    /// Read a page into `out`, charging the latency model. An injected
    /// `ReadErr` surfaces as a storage error with the bytes intact; the
    /// caller may retry.
    pub fn read_page(&self, id: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()> {
        if self.draw_fault(DiskOp::Read).is_some() {
            // Only ReadErr applies to reads.
            return Err(Error::Storage(format!("injected read error on page {id}")));
        }
        self.simulate(false);
        let pages = self.pages.read();
        let _lw = obskit::lockcheck::held("MemDisk::pages");
        let page = pages
            .get(id as usize)
            .ok_or_else(|| Error::Storage(format!("read of unallocated page {id}")))?;
        out.copy_from_slice(&page[..]);
        Ok(())
    }

    /// Write a page, charging the latency model. Rejects stale epochs.
    ///
    /// The disk owns the trailer: the caller's last 8 bytes are replaced
    /// with the CRC64 of the content area, so every durably written page
    /// is self-verifying. Injected faults apply *after* stamping —
    /// `TornWrite` persists a prefix of the stamped image (old trailer
    /// retained), `BitFlip` flips one stored bit — both claim success
    /// and are discovered later by verification.
    pub fn write_page(&self, id: PageId, data: &[u8; PAGE_SIZE], epoch: u64) -> Result<()> {
        let fault = self.draw_fault(DiskOp::Write);
        if matches!(fault, Some(DiskFault::WriteErr)) {
            return Err(Error::Storage(format!("injected write error on page {id}")));
        }
        self.simulate(true);
        let mut stamped = *data;
        let crc = checksum::crc64(&stamped[..PAGE_CONTENT]);
        stamped[PAGE_CONTENT..].copy_from_slice(&crc.to_be_bytes());
        let mut pages = self.pages.write();
        let _lw = obskit::lockcheck::held("MemDisk::pages");
        self.check_epoch(epoch)?;
        let page = pages
            .get_mut(id as usize)
            .ok_or_else(|| Error::Storage(format!("write of unallocated page {id}")))?;
        match fault {
            Some(DiskFault::TornWrite { frac_pm }) => {
                // Persist a prefix of the stamped image. The prefix
                // always covers the 16-byte header (so a lost update is
                // visible in the LSN) and never reaches the trailer (so
                // the old checksum stays behind): the torn image can
                // never verify.
                let split = TORN_MIN + (frac_pm as usize * (PAGE_CONTENT - TORN_MIN)) / 1000;
                let split = split.min(PAGE_CONTENT);
                page[..split].copy_from_slice(&stamped[..split]);
            }
            Some(DiskFault::BitFlip { offset_seed, bit }) => {
                page.copy_from_slice(&stamped);
                let off = (offset_seed % PAGE_SIZE as u64) as usize;
                page[off] ^= 1 << (bit & 7);
            }
            _ => page.copy_from_slice(&stamped),
        }
        Ok(())
    }

    /// Charge the latency model: spin for short waits so benchmark
    /// measurements are not quantized by the OS timer, sleep for long ones.
    fn simulate(&self, is_write: bool) {
        let lat = if is_write {
            self.model.write_latency
        } else {
            self.model.read_latency
        };
        self.stats.record(is_write, lat);
        if lat.is_zero() {
            return;
        }
        if lat >= Duration::from_millis(2) {
            std::thread::sleep(lat);
        } else {
            let start = Instant::now();
            while start.elapsed() < lat {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_write_round_trip() {
        let disk = MemDisk::new(DiskModel::default());
        let p0 = disk.allocate(0).unwrap();
        let p1 = disk.allocate(0).unwrap();
        assert_eq!((p0, p1), (0, 1));

        let mut data = [0u8; PAGE_SIZE];
        data[0] = 0xAB;
        data[PAGE_CONTENT - 1] = 0xCD;
        disk.write_page(p1, &data, 0).unwrap();

        let mut out = [0u8; PAGE_SIZE];
        disk.read_page(p1, &mut out).unwrap();
        assert_eq!(out[0], 0xAB);
        assert_eq!(out[PAGE_CONTENT - 1], 0xCD);
        // The disk stamped the trailer; the image verifies.
        assert!(page_image_ok(&out));

        // p0 still zeroed (and vacuously valid).
        disk.read_page(p0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
        assert!(page_image_ok(&out));
    }

    #[test]
    fn unallocated_access_is_error() {
        let disk = MemDisk::new(DiskModel::default());
        let mut out = [0u8; PAGE_SIZE];
        assert!(disk.read_page(3, &mut out).is_err());
        assert!(disk.write_page(0, &out, 0).is_err());
    }

    #[test]
    fn stats_accumulate() {
        let disk = MemDisk::new(DiskModel::uniform(Duration::from_micros(10)));
        let p = disk.allocate(0).unwrap();
        let data = [0u8; PAGE_SIZE];
        let before = disk.stats().snapshot();
        disk.write_page(p, &data, 0).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        disk.read_page(p, &mut out).unwrap();
        let d = disk.stats().snapshot().delta(before);
        assert_eq!(d.reads, 1);
        assert_eq!(d.writes, 1);
        assert!(d.busy >= Duration::from_micros(20));
    }

    #[test]
    fn epoch_fencing_rejects_stale_writers() {
        let disk = MemDisk::new(DiskModel::default());
        let p = disk.allocate(0).unwrap();
        let data = [0u8; PAGE_SIZE];
        assert_eq!(disk.bump_epoch(), 1);
        assert_eq!(
            disk.write_page(p, &data, 0),
            Err(crate::error::Error::ServerShutdown)
        );
        assert!(disk.allocate(0).is_err());
        // Current epoch still works.
        disk.write_page(p, &data, 1).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        disk.read_page(p, &mut out).unwrap();
    }

    #[test]
    fn injected_read_error_fires_once_then_clears() {
        use faultkit::disk::DiskFaultKind;
        let disk = MemDisk::new(DiskModel::default());
        let p = disk.allocate(0).unwrap();
        disk.set_fault_plan(Some(DiskPlan::at(DiskFaultKind::ReadErr, 1)));
        let mut out = [0u8; PAGE_SIZE];
        assert!(disk.read_page(p, &mut out).is_err());
        // Retry succeeds: the bytes were never damaged.
        disk.read_page(p, &mut out).unwrap();
    }

    #[test]
    fn injected_write_error_leaves_old_image() {
        use faultkit::disk::DiskFaultKind;
        let disk = MemDisk::new(DiskModel::default());
        let p = disk.allocate(0).unwrap();
        let mut data = [0u8; PAGE_SIZE];
        data[0] = 1;
        disk.write_page(p, &data, 0).unwrap();
        disk.set_fault_plan(Some(DiskPlan::at(DiskFaultKind::WriteErr, 1)));
        data[0] = 2;
        assert!(disk.write_page(p, &data, 0).is_err());
        let mut out = [0u8; PAGE_SIZE];
        disk.read_page(p, &mut out).unwrap();
        assert_eq!(out[0], 1);
        assert!(page_image_ok(&out));
    }

    #[test]
    fn torn_write_never_verifies() {
        use faultkit::disk::DiskFaultKind;
        // Sweep the torn-offset space via the nth-write parameter: every
        // torn image must fail verification, whatever the split.
        for nth in 1..=8u64 {
            let disk = MemDisk::new(DiskModel::default());
            let p = disk.allocate(0).unwrap();
            let mut data = [0u8; PAGE_SIZE];
            data[0] = 0x11;
            disk.write_page(p, &data, 0).unwrap();
            disk.set_fault_plan(Some(DiskPlan::at(DiskFaultKind::TornWrite, nth)));
            for round in 0..nth {
                data[0] = 0x22 + round as u8;
                data[100] = round as u8;
                // LSN bytes move forward like a real dirty flush.
                data[7] = round as u8 + 1;
                disk.write_page(p, &data, 0).unwrap();
            }
            let mut out = [0u8; PAGE_SIZE];
            disk.read_page(p, &mut out).unwrap();
            assert!(!page_image_ok(&out), "torn write at nth={nth} verified");
        }
    }

    #[test]
    fn bit_flip_never_verifies() {
        use faultkit::disk::DiskFaultKind;
        let disk = MemDisk::new(DiskModel::default());
        let p = disk.allocate(0).unwrap();
        disk.set_fault_plan(Some(DiskPlan::at(DiskFaultKind::BitFlip, 1)));
        let mut data = [0u8; PAGE_SIZE];
        data[42] = 0xFF;
        disk.write_page(p, &data, 0).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        disk.read_page(p, &mut out).unwrap();
        assert!(!page_image_ok(&out));
    }

    #[test]
    fn ensure_capacity_grows_only() {
        let disk = MemDisk::new(DiskModel::default());
        disk.ensure_capacity(4, 0).unwrap();
        assert_eq!(disk.num_pages(), 4);
        disk.ensure_capacity(2, 0).unwrap();
        assert_eq!(disk.num_pages(), 4);
    }
}
