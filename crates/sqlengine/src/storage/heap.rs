//! Heap-file row operations, primary-key hash indexes, and the [`Storage`]
//! kernel that ties the catalog, buffer pool, WAL, locks and transactions
//! together.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use super::buffer::{with_page, with_page_mut, BufferPool};
use super::disk::PageId;
use super::page::Page;
use crate::catalog::Catalog;
use crate::error::{Error, Result};
use crate::schema::{decode_row, encode_row, TableId, TableSchema};
use crate::txn::locks::{LockManager, LockMode, LockTarget};
use crate::txn::{TxnHandle, TxnManager, UndoEntry};
use crate::types::{Row, Value};
use crate::wal::log::{ClrAction, LogManager, LogRecord};

/// Physical row address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId {
    /// Page containing the row.
    pub page: PageId,
    /// Slot within the page.
    pub slot: u16,
}

/// Volatile unique hash indexes over primary keys. Rebuilt at recovery.
/// One table's PK index: encoded key bytes → row location.
type PkIndex = Arc<Mutex<HashMap<Vec<u8>, RowId>>>;

#[derive(Default)]
pub struct IndexManager {
    maps: RwLock<HashMap<TableId, PkIndex>>,
}

impl IndexManager {
    fn index_for(&self, table: TableId) -> PkIndex {
        if let Some(m) = self.maps.read().get(&table) {
            return Arc::clone(m);
        }
        let mut maps = self.maps.write();
        Arc::clone(maps.entry(table).or_default())
    }

    fn drop_table(&self, table: TableId) {
        self.maps.write().remove(&table);
    }
}

/// Encode a primary-key tuple into canonical index-key bytes.
pub fn pk_key_bytes(schema: &TableSchema, row: &[Value]) -> Option<Vec<u8>> {
    if schema.primary_key.is_empty() {
        return None;
    }
    let key: Row = schema.primary_key.iter().map(|&i| row[i].clone()).collect();
    let mut out = Vec::new();
    encode_row(&key, &mut out);
    Some(out)
}

/// Encode lookup values (already in PK column order) as index-key bytes,
/// coercing to the key columns' types.
pub fn pk_lookup_bytes(schema: &TableSchema, key_vals: &[Value]) -> Result<Vec<u8>> {
    if key_vals.len() != schema.primary_key.len() {
        return Err(Error::Internal("pk lookup arity mismatch".into()));
    }
    let key: Row = key_vals
        .iter()
        .zip(&schema.primary_key)
        .map(|(v, &i)| v.clone().coerce(schema.columns[i].dtype))
        .collect::<Result<_>>()?;
    let mut out = Vec::new();
    encode_row(&key, &mut out);
    Ok(out)
}

/// The storage kernel: everything volatile the engine needs to run SQL.
pub struct Storage {
    /// Durable table metadata.
    pub catalog: Arc<Catalog>,
    /// Page cache.
    pub pool: Arc<BufferPool>,
    /// Write-ahead log front end.
    pub log: Arc<LogManager>,
    /// Multi-granularity lock manager.
    pub locks: LockManager,
    /// Transaction-id issuer.
    pub txns: TxnManager,
    indexes: IndexManager,
}

impl Storage {
    /// Assemble a storage kernel from recovered parts.
    pub fn new(
        catalog: Arc<Catalog>,
        pool: Arc<BufferPool>,
        log: Arc<LogManager>,
        txns: TxnManager,
    ) -> Self {
        Storage {
            catalog,
            pool,
            log,
            locks: LockManager::default(),
            txns,
            indexes: IndexManager::default(),
        }
    }

    // -- transactions --------------------------------------------------------

    /// Begin a transaction (logs `Begin`).
    pub fn begin(&self) -> TxnHandle {
        let txn = self.txns.begin();
        self.log.append(&LogRecord::Begin { txn: txn.id });
        txn
    }

    /// Commit: log, force the log (possibly riding a group-commit
    /// batch leader's fsync), release locks.
    pub fn commit(&self, txn: &TxnHandle) -> Result<()> {
        let lsn = self.log.append(&LogRecord::Commit { txn: txn.id });
        self.log.commit_flush(lsn)?;
        // Undo info no longer needed.
        txn.take_undo_reversed();
        self.locks.release_all(txn.id, txn.take_locks());
        Ok(())
    }

    /// Abort: apply undo actions (logging CLRs), log Abort, release locks.
    pub fn abort(&self, txn: &TxnHandle) -> Result<()> {
        for e in txn.take_undo_reversed() {
            self.apply_undo(txn, &e)?;
        }
        let lsn = self.log.append(&LogRecord::Abort { txn: txn.id });
        self.log.flush_to(lsn)?;
        self.locks.release_all(txn.id, txn.take_locks());
        Ok(())
    }

    fn apply_undo(&self, txn: &TxnHandle, e: &UndoEntry) -> Result<()> {
        let guard = self.pool.fetch(e.page)?;
        let schema_has_pk = self
            .catalog
            .get(e.table)
            .map(|m| !m.read().schema.primary_key.is_empty())
            .unwrap_or(false);
        // CLR append + page action atomically under the page latch; index
        // maintenance afterwards (page latch → index lock ordering would
        // otherwise invert against insert_row).
        let row_bytes = {
            let mut data = guard.write();
            let mut page = Page::new(&mut data);
            let lsn = self.log.append(&LogRecord::Clr {
                txn: txn.id,
                undoes: e.lsn,
                action: e.action,
                table: e.table,
                page: e.page,
                slot: e.slot,
            });
            let bytes = if schema_has_pk {
                page.get_raw(e.slot).map(|b| b.to_vec())
            } else {
                None
            };
            match e.action {
                ClrAction::Tombstone => page.tombstone(e.slot)?,
                ClrAction::Untombstone => page.untombstone(e.slot)?,
            }
            page.set_lsn(lsn);
            bytes
        };
        if let Some(bytes) = row_bytes {
            let row = decode_row(&bytes)?;
            match e.action {
                ClrAction::Tombstone => self.index_remove(e.table, &row)?,
                ClrAction::Untombstone => self.index_add_unchecked(
                    e.table,
                    &row,
                    RowId {
                        page: e.page,
                        slot: e.slot,
                    },
                )?,
            }
        }
        Ok(())
    }

    // -- DDL (top actions: logged, applied, and immediately durable) ---------

    /// Create a table (top action: survives even a following crash).
    pub fn create_table(&self, schema: TableSchema) -> Result<TableId> {
        let id = self.catalog.create_table(schema.clone())?;
        let lsn = self.log.append(&LogRecord::CreateTable {
            table_id: id,
            schema,
        });
        self.log.flush_to(lsn)?;
        Ok(id)
    }

    /// Drop a table by name (top action).
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let meta = self
            .catalog
            .resolve(name)
            .ok_or_else(|| Error::NotFound(format!("table {name}")))?;
        let id = meta.read().id;
        self.catalog.drop_table(id)?;
        self.indexes.drop_table(id);
        let lsn = self.log.append(&LogRecord::DropTable { table_id: id });
        self.log.flush_to(lsn)?;
        Ok(())
    }

    /// Create (or replace) a stored procedure (top action).
    pub fn create_proc(&self, name: &str, body: &str, replace: bool) -> Result<()> {
        self.catalog.create_proc(name, body, replace)?;
        let lsn = self.log.append(&LogRecord::CreateProc {
            name: name.to_string(),
            body: body.to_string(),
        });
        self.log.flush_to(lsn)?;
        Ok(())
    }

    /// Drop a stored procedure (top action).
    pub fn drop_proc(&self, name: &str) -> Result<()> {
        self.catalog.drop_proc(name)?;
        let lsn = self.log.append(&LogRecord::DropProc {
            name: name.to_string(),
        });
        self.log.flush_to(lsn)?;
        Ok(())
    }

    // -- DML ------------------------------------------------------------------

    /// Insert a conformed row. Caller holds the table X lock.
    pub fn insert_row(&self, txn: &TxnHandle, table: TableId, row: &[Value]) -> Result<RowId> {
        let meta = self
            .catalog
            .get(table)
            .ok_or_else(|| Error::NotFound(format!("table id {table}")))?;
        let (schema, last_page) = {
            let m = meta.read();
            (m.schema.clone(), m.pages.last().copied())
        };

        // PK uniqueness.
        let key = pk_key_bytes(&schema, row);
        if let Some(k) = &key {
            let idx = self.indexes.index_for(table);
            if idx.lock().contains_key(k) {
                return Err(Error::DuplicateKey(format!(
                    "table {} pk {:?}",
                    schema.name,
                    schema
                        .primary_key
                        .iter()
                        .map(|&i| row[i].to_string())
                        .collect::<Vec<_>>()
                )));
            }
        }

        let mut bytes = Vec::new();
        encode_row(row, &mut bytes);

        // Apply: the log append and the page mutation must be atomic under
        // the page's write latch — with row-level locking, transactions on
        // different rows interleave on the same page, and redo correctness
        // depends on page LSNs increasing in application order.
        let mut candidate = last_page;
        let rid = loop {
            let (pid, guard) = match candidate.take() {
                Some(pid) => (pid, self.pool.fetch(pid)?),
                None => {
                    // Allocate a fresh page (top action).
                    let (pid, guard) = self.pool.new_page(table)?;
                    let lsn = self.log.append(&LogRecord::AllocPage { table, page: pid });
                    with_page_mut(&guard, lsn, |_| Ok(()))?;
                    self.catalog.add_page(table, pid)?;
                    (pid, guard)
                }
            };
            let mut data = guard.write();
            let mut page = Page::new(&mut data);
            if !page.fits(bytes.len()) {
                continue; // allocate a new page next iteration
            }
            let slot = page.slot_count();
            let lsn = self.log.append(&LogRecord::Insert {
                txn: txn.id,
                table,
                page: pid,
                slot,
                data: bytes.clone(),
            });
            page.insert_expect(slot, &bytes)?;
            page.set_lsn(lsn);
            drop(data);
            txn.push_undo(UndoEntry {
                lsn,
                action: ClrAction::Tombstone,
                table,
                page: pid,
                slot,
            });
            break RowId { page: pid, slot };
        };
        if let Some(k) = key {
            self.indexes.index_for(table).lock().insert(k, rid);
        }
        Ok(rid)
    }

    /// Delete the row at `rid`, returning its old contents.
    pub fn delete_row(&self, txn: &TxnHandle, table: TableId, rid: RowId) -> Result<Row> {
        let guard = self.pool.fetch(rid.page)?;
        // Log append + tombstone atomically under the page latch (see
        // `insert_row` for why).
        let old = {
            let mut data = guard.write();
            let mut page = Page::new(&mut data);
            let old = page
                .get(rid.slot)
                .map(|b| b.to_vec())
                .ok_or_else(|| Error::Storage(format!("delete of missing row {rid:?}")))?;
            let lsn = self.log.append(&LogRecord::Delete {
                txn: txn.id,
                table,
                page: rid.page,
                slot: rid.slot,
            });
            page.tombstone(rid.slot)?;
            page.set_lsn(lsn);
            txn.push_undo(UndoEntry {
                lsn,
                action: ClrAction::Untombstone,
                table,
                page: rid.page,
                slot: rid.slot,
            });
            old
        };
        let old_row = decode_row(&old)?;
        self.index_remove(table, &old_row)?;
        Ok(old_row)
    }

    /// Update = delete + insert (rows are immutable in place; see page.rs).
    pub fn update_row(
        &self,
        txn: &TxnHandle,
        table: TableId,
        rid: RowId,
        new_row: &[Value],
    ) -> Result<RowId> {
        self.delete_row(txn, table, rid)?;
        self.insert_row(txn, table, new_row)
    }

    fn index_remove(&self, table: TableId, row: &[Value]) -> Result<()> {
        let Some(meta) = self.catalog.get(table) else {
            return Ok(());
        };
        let schema = meta.read().schema.clone();
        if let Some(k) = pk_key_bytes(&schema, row) {
            self.indexes.index_for(table).lock().remove(&k);
        }
        Ok(())
    }

    fn index_add_unchecked(&self, table: TableId, row: &[Value], rid: RowId) -> Result<()> {
        let Some(meta) = self.catalog.get(table) else {
            return Ok(());
        };
        let schema = meta.read().schema.clone();
        if let Some(k) = pk_key_bytes(&schema, row) {
            self.indexes.index_for(table).lock().insert(k, rid);
        }
        Ok(())
    }

    // -- reads ----------------------------------------------------------------

    /// Fetch a single live row.
    pub fn fetch_row(&self, rid: RowId) -> Result<Option<Row>> {
        let guard = self.pool.fetch(rid.page)?;
        let bytes = with_page(&guard, |p| p.get(rid.slot).map(|b| b.to_vec()));
        match bytes {
            Some(b) => Ok(Some(decode_row(&b)?)),
            None => Ok(None),
        }
    }

    /// Primary-key point lookup.
    pub fn pk_lookup(&self, table: TableId, key_vals: &[Value]) -> Result<Option<RowId>> {
        let meta = self
            .catalog
            .get(table)
            .ok_or_else(|| Error::NotFound(format!("table id {table}")))?;
        let schema = meta.read().schema.clone();
        let k = pk_lookup_bytes(&schema, key_vals)?;
        Ok(self.indexes.index_for(table).lock().get(&k).copied())
    }

    /// Sequential scan. Materializes one page at a time; the iterator owns
    /// a reference to the storage so it can outlive the calling frame
    /// (lazy result-set streaming).
    pub fn scan(self: &Arc<Self>, table: TableId) -> Result<ScanIter> {
        let meta = self
            .catalog
            .get(table)
            .ok_or_else(|| Error::NotFound(format!("table id {table}")))?;
        let pages = meta.read().pages.clone();
        Ok(ScanIter {
            storage: Arc::clone(self),
            pages,
            page_idx: 0,
            buffered: Vec::new(),
            buf_idx: 0,
        })
    }

    /// Convenience: scan fully into memory (does not require `Arc`).
    pub fn scan_all(&self, table: TableId) -> Result<Vec<(RowId, Row)>> {
        let meta = self
            .catalog
            .get(table)
            .ok_or_else(|| Error::NotFound(format!("table id {table}")))?;
        let pages = meta.read().pages.clone();
        let mut out = Vec::new();
        for pid in pages {
            let guard = self.pool.fetch(pid)?;
            let entries: Vec<(u16, Vec<u8>)> = with_page(&guard, |p| {
                p.live_slots()
                    .filter_map(|s| p.get(s).map(|b| (s, b.to_vec())))
                    .collect()
            });
            for (slot, bytes) in entries {
                out.push((RowId { page: pid, slot }, decode_row(&bytes)?));
            }
        }
        Ok(out)
    }

    /// Rebuild every PK index by scanning heaps (restart path).
    pub fn rebuild_indexes(&self) -> Result<()> {
        for name in self.catalog.table_names() {
            // Names come from the catalog itself, but a concurrent DROP can
            // remove the entry between the two calls — skip it if so.
            let Some(meta) = self.catalog.resolve(&name) else {
                continue;
            };
            let (id, schema, pages) = {
                let m = meta.read();
                (m.id, m.schema.clone(), m.pages.clone())
            };
            if schema.primary_key.is_empty() {
                continue;
            }
            let idx = self.indexes.index_for(id);
            let mut map = idx.lock();
            map.clear();
            for pid in pages {
                let guard = self.pool.fetch(pid)?;
                let entries: Vec<(u16, Vec<u8>)> = with_page(&guard, |p| {
                    p.live_slots()
                        .filter_map(|s| p.get(s).map(|b| (s, b.to_vec())))
                        .collect()
                });
                for (slot, bytes) in entries {
                    let row = decode_row(&bytes)?;
                    if let Some(k) = pk_key_bytes(&schema, &row) {
                        map.insert(k, RowId { page: pid, slot });
                    }
                }
            }
        }
        Ok(())
    }

    // -- checkpoint -----------------------------------------------------------

    /// Quiesced checkpoint: flush data pages, snapshot the catalog, write
    /// the checkpoint record, update the master record. The caller must
    /// ensure no transactions are active.
    pub fn checkpoint(&self) -> Result<()> {
        faultkit::crashpoint!("wal.checkpoint.pre");
        let t_ckpt = std::time::Instant::now();
        self.log.flush_all()?;
        self.pool.flush_all()?;
        let snapshot = self.catalog.snapshot();
        let lsn = self.log.append(&LogRecord::Checkpoint { snapshot });
        self.log.flush_all()?;
        self.log.store().set_checkpoint(lsn);
        obskit::metrics::global().record("sqlengine.wal.checkpoint", t_ckpt.elapsed());
        obskit::trace::emit_span("sqlengine.wal.checkpoint", t_ckpt.elapsed(), String::new());
        faultkit::crashpoint!("wal.checkpoint.post");
        Ok(())
    }

    /// Verify every allocated page's checksum, repairing corrupt pages
    /// from WAL redo. See [`BufferPool::scrub`].
    pub fn scrub(&self) -> Result<crate::storage::buffer::ScrubReport> {
        self.pool.scrub()
    }

    // -- lock helpers ----------------------------------------------------------

    /// Table-granularity lock, remembered on the transaction for release.
    pub fn lock_table(&self, txn: &TxnHandle, table: TableId, mode: LockMode) -> Result<()> {
        let target = LockTarget::table(table);
        self.locks.lock(txn.id, target, mode)?;
        txn.note_lock(target);
        Ok(())
    }

    /// Row-granularity lock (key = hashed PK bytes). The caller must hold
    /// the matching intention lock on the table.
    pub fn lock_row(
        &self,
        txn: &TxnHandle,
        table: TableId,
        key: u64,
        mode: LockMode,
    ) -> Result<()> {
        let target = LockTarget::row(table, key);
        self.locks.lock(txn.id, target, mode)?;
        txn.note_lock(target);
        Ok(())
    }
}

/// FNV-1a hash of PK bytes → row-lock key.
pub fn row_key_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Page-at-a-time scan iterator. Owns its storage handle so lazy result
/// cursors can carry it across call frames.
pub struct ScanIter {
    storage: Arc<Storage>,
    pages: Vec<PageId>,
    page_idx: usize,
    buffered: Vec<(RowId, Vec<u8>)>,
    buf_idx: usize,
}

impl Iterator for ScanIter {
    type Item = Result<(RowId, Row)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.buf_idx < self.buffered.len() {
                let (rid, bytes) = &self.buffered[self.buf_idx];
                self.buf_idx += 1;
                return Some(decode_row(bytes).map(|r| (*rid, r)));
            }
            if self.page_idx >= self.pages.len() {
                return None;
            }
            let pid = self.pages[self.page_idx];
            self.page_idx += 1;
            let guard = match self.storage.pool.fetch(pid) {
                Ok(g) => g,
                Err(e) => return Some(Err(e)),
            };
            self.buffered = with_page(&guard, |p| {
                p.live_slots()
                    .filter_map(|s| p.get(s).map(|b| (RowId { page: pid, slot: s }, b.to_vec())))
                    .collect()
            });
            self.buf_idx = 0;
        }
    }
}
