//! Checksums for the durable layer.
//!
//! Two polynomials, two jobs:
//!
//! * [`crc64`] (ECMA-182) guards **pages**: an 8-byte trailer at
//!   `PAGE_SIZE - 8` over the content area, stamped by the disk on every
//!   page write and verified on every buffer-pool miss. CRC64's minimum
//!   distance guarantees every single-bit flip (and every burst ≤ 64
//!   bits) in an 8 KiB page changes the checksum.
//! * [`crc32`] (IEEE 802.3) guards **WAL records**: a 4-byte field in
//!   each record frame over `payload ++ LSN`, verified during scan and
//!   replay. Embedding the record's LSN means a record that was shifted
//!   within the stream (a lying fsync dropped its predecessor) fails
//!   verification even though its bytes are individually intact.
//!
//! Both tables are built in `const` context: no lazy init, no locks, no
//! first-use latency on the recovery path.

/// CRC-64/ECMA-182 table (poly 0x42F0E1EBA9EA3693, reflected form).
const CRC64_POLY: u64 = 0xC96C_5795_D787_0F42;

const fn crc64_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ CRC64_POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC64_TABLE: [u64; 256] = crc64_table();

/// CRC-64/ECMA-182 over `data` (init/xorout all-ones).
pub fn crc64(data: &[u8]) -> u64 {
    let mut crc = u64::MAX;
    for &b in data {
        let idx = ((crc as u8) ^ b) as usize;
        crc = (crc >> 8) ^ CRC64_TABLE[idx];
    }
    !crc
}

/// CRC-32/IEEE table (poly 0x04C11DB7, reflected form 0xEDB88320).
const CRC32_POLY: u32 = 0xEDB8_8320;

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ CRC32_POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32/IEEE over `data` (init/xorout all-ones).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in data {
        let idx = ((crc as u8) ^ b) as usize;
        crc = (crc >> 8) ^ CRC32_TABLE[idx];
    }
    !crc
}

/// CRC-32 of a WAL record: `payload ++ lsn.to_le_bytes()`. The LSN is
/// folded in *after* the payload so verification needs no copy.
pub fn wal_record_crc(payload: &[u8], lsn: u64) -> u32 {
    let mut crc = u32::MAX;
    for &b in payload.iter().chain(lsn.to_le_bytes().iter()) {
        let idx = ((crc as u8) ^ b) as usize;
        crc = (crc >> 8) ^ CRC32_TABLE[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_answer() {
        // CRC-32/IEEE of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc64_known_answer() {
        // CRC-64/XZ (reflected ECMA-182) of "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn single_bit_flips_change_both_crcs() {
        let data = vec![0xA5u8; 512];
        let base32 = crc32(&data);
        let base64 = crc64(&data);
        for byte in [0usize, 100, 511] {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base32, "crc32 missed {byte}:{bit}");
                assert_ne!(crc64(&flipped), base64, "crc64 missed {byte}:{bit}");
            }
        }
    }

    #[test]
    fn wal_record_crc_binds_the_lsn() {
        let payload = b"record payload";
        let a = wal_record_crc(payload, 10);
        let b = wal_record_crc(payload, 11);
        assert_ne!(a, b);
        // Equivalent to hashing the concatenation explicitly.
        let mut concat = payload.to_vec();
        concat.extend_from_slice(&10u64.to_le_bytes());
        assert_eq!(a, crc32(&concat));
    }
}
