//! Error type shared across the engine.

use std::fmt;
use std::time::Duration;

/// Engine-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the SQL engine.
///
/// The variants are deliberately coarse: they correspond to the error
/// classes a client (and, above it, Phoenix) must distinguish — syntax
/// problems, semantic problems, transaction aborts (deadlock victims),
/// and server-side faults such as a shutdown in progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// SQL text failed to lex or parse.
    Syntax(String),
    /// Statement referenced a missing table/column, mismatched types, etc.
    Semantic(String),
    /// Named catalog object does not exist.
    NotFound(String),
    /// Catalog object already exists.
    AlreadyExists(String),
    /// Primary-key uniqueness violation.
    DuplicateKey(String),
    /// The transaction was chosen as a deadlock (wait-die) victim and
    /// has been rolled back. The client should retry.
    Deadlock,
    /// The transaction was rolled back for a non-deadlock reason.
    TxnAborted(String),
    /// The server is shutting down or has shut down; volatile state is gone.
    ServerShutdown,
    /// A request did not complete within the caller's deadline. Raised by
    /// the client/wire layers; Phoenix treats it as a possible server
    /// failure and starts probing.
    Timeout,
    /// The session handle is no longer valid (e.g. server restarted).
    NoSuchSession,
    /// Phoenix's recovery budget (attempts and/or deadline) ran out
    /// before the server came back. The virtual session state is
    /// preserved: the call is *retryable*, and a later call on the same
    /// connection resumes recovery where it left off.
    RecoveryExhausted,
    /// The server shed the request under overload (session registry
    /// full, pending-accept queue full, or the session's memory budget
    /// exceeded). Nothing was torn down and nothing executed: the call
    /// is *retryable*, and `retry_after` is the server's hint for when
    /// capacity is expected back (clients clip it to their own recovery
    /// budget and add jitter before honoring it).
    ServerBusy {
        /// Server hint: earliest useful retry time.
        retry_after: Duration,
    },
    /// Storage-layer invariant violation (page full bookkeeping, etc.).
    Storage(String),
    /// Durable bytes failed verification: a page checksum or WAL record
    /// CRC mismatch that could not be (or was not allowed to be)
    /// repaired. Not retryable — the damage is in the durable state, so
    /// retrying the statement would re-read the same corrupt bytes.
    Corruption {
        /// The durable device the corruption was detected on
        /// (`"data"`, `"wal"`, or a finer-grained site label).
        device: String,
        /// Human-readable description of what failed verification.
        detail: String,
    },
    /// Internal invariant violation; indicates an engine bug.
    Internal(String),
}

impl Error {
    /// True when the error indicates the server process itself is gone,
    /// as opposed to a statement- or transaction-level failure.
    pub fn is_connection_fatal(&self) -> bool {
        matches!(
            self,
            Error::ServerShutdown | Error::NoSuchSession | Error::Timeout
        )
    }

    /// True when the failed call can simply be issued again on the same
    /// handle: nothing about the session was torn down, the failure was
    /// a scheduling outcome (deadlock victim) or an exhausted recovery
    /// budget that a later attempt may get past.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Error::Deadlock | Error::RecoveryExhausted | Error::ServerBusy { .. }
        )
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Syntax(m) => write!(f, "syntax error: {m}"),
            Error::Semantic(m) => write!(f, "semantic error: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::AlreadyExists(m) => write!(f, "already exists: {m}"),
            Error::DuplicateKey(m) => write!(f, "duplicate key: {m}"),
            Error::Deadlock => write!(f, "transaction deadlock victim; retry"),
            Error::TxnAborted(m) => write!(f, "transaction aborted: {m}"),
            Error::ServerShutdown => write!(f, "server shutdown"),
            Error::Timeout => write!(f, "request timed out"),
            Error::NoSuchSession => write!(f, "no such session"),
            Error::RecoveryExhausted => {
                write!(
                    f,
                    "recovery budget exhausted; session preserved, retry later"
                )
            }
            Error::ServerBusy { retry_after } => {
                write!(
                    f,
                    "server busy; shed under overload, retry after {}ms",
                    retry_after.as_millis()
                )
            }
            Error::Storage(m) => write!(f, "storage error: {m}"),
            Error::Corruption { device, detail } => {
                write!(f, "corruption on {device}: {detail}")
            }
            Error::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for Error {}
