//! Value and data-type model.
//!
//! The engine supports the handful of SQL types the TPC workloads and
//! Phoenix need: 64-bit integers, 64-bit floats (standing in for DECIMAL),
//! variable-length strings, and dates stored as days since 1970-01-01.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{Error, Result};

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum DataType {
    /// 64-bit signed integer (INT/BIGINT/...).
    Int,
    /// 64-bit float (FLOAT/DECIMAL/...).
    Float,
    /// UTF-8 string (VARCHAR/CHAR/TEXT).
    Str,
    /// Days since 1970-01-01.
    Date,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Str => write!(f, "VARCHAR"),
            DataType::Date => write!(f, "DATE"),
        }
    }
}

/// A runtime SQL value.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum Value {
    /// SQL NULL.
    Null,
    Int(i64),
    Float(f64),
    Str(String),
    /// Days since 1970-01-01 (may be negative).
    Date(i32),
}

impl Value {
    /// The value's type; `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// Whether this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view used by arithmetic and aggregation.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Date(d) => Some(*d as f64),
            _ => None,
        }
    }

    /// Integer view (truncating floats), `None` for non-numerics.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            Value::Date(d) => Some(*d as i64),
            _ => None,
        }
    }

    /// String view, `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL comparison. Returns `None` when either side is NULL or the
    /// types are incomparable (three-valued logic: unknown).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Str(a), Str(b)) => Some(a.as_str().cmp(b.as_str())),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            // String literals compared against dates coerce to dates.
            (Str(s), Date(d)) => parse_date(s).ok().map(|x| x.cmp(d)),
            (Date(d), Str(s)) => parse_date(s).ok().map(|x| d.cmp(&x)),
            _ => None,
        }
    }

    /// Total order used for sorting and grouping keys: NULL sorts first,
    /// cross-type falls back to a type rank so sort is total.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Float(_) | Value::Date(_) => 1,
                Value::Str(_) => 2,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            _ => match (rank(self), rank(other)) {
                (a, b) if a != b => a.cmp(&b),
                _ => self.sql_cmp(other).unwrap_or(Ordering::Equal),
            },
        }
    }

    /// Equality for grouping/joins: NULL groups with NULL.
    pub fn group_eq(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }

    /// Coerce this value to `to` when cheaply possible (used on INSERT).
    pub fn coerce(self, to: DataType) -> Result<Value> {
        match (self, to) {
            (Value::Null, _) => Ok(Value::Null),
            (Value::Int(i), DataType::Int) => Ok(Value::Int(i)),
            (Value::Int(i), DataType::Float) => Ok(Value::Float(i as f64)),
            (Value::Float(f), DataType::Float) => Ok(Value::Float(f)),
            (Value::Float(f), DataType::Int) => Ok(Value::Int(f as i64)),
            (Value::Str(s), DataType::Str) => Ok(Value::Str(s)),
            (Value::Str(s), DataType::Date) => Ok(Value::Date(parse_date(&s)?)),
            (Value::Date(d), DataType::Date) => Ok(Value::Date(d)),
            (Value::Date(d), DataType::Str) => Ok(Value::Str(format_date(d))),
            (Value::Int(i), DataType::Date) => Ok(Value::Date(i as i32)),
            (v, t) => Err(Error::Semantic(format!("cannot coerce {v} to {t}"))),
        }
    }

    /// Stable hash key for hash joins/grouping (mirrors `group_eq`).
    pub fn hash_key(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        match self {
            Value::Null => 0u8.hash(&mut h),
            Value::Int(i) => {
                1u8.hash(&mut h);
                (*i as f64).to_bits().hash(&mut h);
            }
            Value::Float(f) => {
                1u8.hash(&mut h);
                f.to_bits().hash(&mut h);
            }
            Value::Date(d) => {
                1u8.hash(&mut h);
                (*d as f64).to_bits().hash(&mut h);
            }
            Value::Str(s) => {
                2u8.hash(&mut h);
                s.hash(&mut h);
            }
        }
        h.finish()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{}", format_date(*d)),
        }
    }
}

/// A tuple of values.
pub type Row = Vec<Value>;

const DAYS_PER_400Y: i64 = 146_097;

/// Parse `YYYY-MM-DD` into days since 1970-01-01 (proleptic Gregorian).
pub fn parse_date(s: &str) -> Result<i32> {
    let err = || Error::Semantic(format!("invalid date literal '{s}'"));
    let b: Vec<&str> = s.split('-').collect();
    if b.len() != 3 {
        return Err(err());
    }
    let y: i64 = b[0].parse().map_err(|_| err())?;
    let m: i64 = b[1].parse().map_err(|_| err())?;
    let d: i64 = b[2].parse().map_err(|_| err())?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return Err(err());
    }
    Ok(civil_to_days(y, m, d) as i32)
}

/// Format days-since-epoch as `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let (y, m, d) = days_to_civil(days as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Howard Hinnant's civil-from-days / days-from-civil algorithms.
fn civil_to_days(y: i64, m: i64, d: i64) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (m + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * DAYS_PER_400Y + doe - 719_468
}

fn days_to_civil(z: i64) -> (i64, i64, i64) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - DAYS_PER_400Y + 1 } / DAYS_PER_400Y;
    let doe = z - era * DAYS_PER_400Y;
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Extract the calendar year from a days-since-epoch date.
pub fn date_year(days: i32) -> i64 {
    days_to_civil(days as i64).0
}

/// Add whole months to a date (used to precompute TPC-H interval bounds).
pub fn date_add_months(days: i32, months: i32) -> i32 {
    let (y, m, d) = days_to_civil(days as i64);
    let total = y * 12 + (m - 1) + months as i64;
    let (ny, nm) = (total.div_euclid(12), total.rem_euclid(12) + 1);
    // Clamp day to the target month's length.
    let max_d = month_len(ny, nm);
    civil_to_days(ny, nm, d.min(max_d)) as i32
}

fn month_len(y: i64, m: i64) -> i64 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (y % 4 == 0 && y % 100 != 0) || y % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => 30,
    }
}

/// SQL LIKE with `%` and `_` wildcards.
pub fn sql_like(text: &str, pattern: &str) -> bool {
    fn rec(t: &[u8], p: &[u8]) -> bool {
        if p.is_empty() {
            return t.is_empty();
        }
        match p[0] {
            b'%' => {
                // Collapse consecutive %.
                let p = &p[1..];
                if p.is_empty() {
                    return true;
                }
                (0..=t.len()).any(|i| rec(&t[i..], p))
            }
            b'_' => !t.is_empty() && rec(&t[1..], &p[1..]),
            c => !t.is_empty() && t[0] == c && rec(&t[1..], &p[1..]),
        }
    }
    rec(text.as_bytes(), pattern.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_round_trip() {
        for s in [
            "1970-01-01",
            "1992-01-01",
            "1998-12-01",
            "2026-07-04",
            "1900-02-28",
        ] {
            let d = parse_date(s).unwrap();
            assert_eq!(format_date(d), s);
        }
    }

    #[test]
    fn date_epoch_is_zero() {
        assert_eq!(parse_date("1970-01-01").unwrap(), 0);
        assert_eq!(parse_date("1970-01-02").unwrap(), 1);
        assert_eq!(parse_date("1969-12-31").unwrap(), -1);
    }

    #[test]
    fn date_known_offsets() {
        // 1992-01-01 is 8035 days after epoch.
        assert_eq!(parse_date("1992-01-01").unwrap(), 8035);
        assert_eq!(date_year(8035), 1992);
    }

    #[test]
    fn date_month_arithmetic() {
        let d = parse_date("1995-01-31").unwrap();
        assert_eq!(format_date(date_add_months(d, 1)), "1995-02-28");
        assert_eq!(format_date(date_add_months(d, 12)), "1996-01-31");
        let d2 = parse_date("1998-12-01").unwrap();
        assert_eq!(format_date(date_add_months(d2, -3)), "1998-09-01");
    }

    #[test]
    fn invalid_dates_rejected() {
        assert!(parse_date("hello").is_err());
        assert!(parse_date("1992-13-01").is_err());
        assert!(parse_date("1992-00-10").is_err());
        assert!(parse_date("1992-01").is_err());
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_mixed_numeric() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn sql_cmp_string_date_coercion() {
        let d = Value::Date(parse_date("1995-06-01").unwrap());
        assert_eq!(
            Value::Str("1995-06-01".into()).sql_cmp(&d),
            Some(Ordering::Equal)
        );
        assert_eq!(
            d.sql_cmp(&Value::Str("1995-07-01".into())),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn total_cmp_null_first() {
        let mut v = [Value::Int(3), Value::Null, Value::Int(1)];
        v.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(v[0], Value::Null);
        assert_eq!(v[1], Value::Int(1));
    }

    #[test]
    fn coerce_rules() {
        assert_eq!(
            Value::Int(5).coerce(DataType::Float).unwrap(),
            Value::Float(5.0)
        );
        assert_eq!(
            Value::Str("1992-01-01".into())
                .coerce(DataType::Date)
                .unwrap(),
            Value::Date(8035)
        );
        assert!(Value::Str("x".into()).coerce(DataType::Int).is_err());
    }

    #[test]
    fn like_patterns() {
        assert!(sql_like("PROMO BURNISHED", "PROMO%"));
        assert!(sql_like("forest green", "%green%"));
        assert!(!sql_like("steel", "%green%"));
        assert!(sql_like("abc", "a_c"));
        assert!(sql_like("", "%"));
        assert!(!sql_like("", "_"));
        assert!(sql_like("a%b", "a%b"));
        assert!(sql_like("xxyy", "%x%y%"));
    }

    #[test]
    fn hash_key_consistent_with_group_eq() {
        let a = Value::Int(42);
        let b = Value::Float(42.0);
        assert!(a.group_eq(&b));
        assert_eq!(a.hash_key(), b.hash_key());
    }
}
