//! Server-side session state.
//!
//! A session owns its temp tables (volatile — they vanish on crash, which
//! is the proxy Phoenix probes to detect that a database session died) and
//! at most one explicit transaction.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::exec::TempTables;
use crate::txn::TxnHandle;

/// Identifies a session within one engine incarnation. Session ids are
/// NOT stable across crashes: a restarted engine issues fresh ids and all
/// old ids dangle (`Error::NoSuchSession`), exactly like a real server.
pub type SessionId = u64;

/// Name prefix of Phoenix persisted-result tables
/// (`phx_res_<conn>_<seq>`). Shared between the client that names them
/// (`phoenix::intercept`) and the server's admission controller, which
/// charges their materialized rows against the session memory budget.
pub const RESULT_TABLE_PREFIX: &str = "phx_res_";

/// State the engine tracks per session.
pub struct SessionState {
    /// Session-local temp tables.
    pub temps: Arc<Mutex<TempTables>>,
    /// Explicit transaction opened with `BEGIN TRAN`, if any.
    pub txn: Option<Arc<TxnHandle>>,
}

impl SessionState {
    /// Fresh session state.
    pub fn new() -> Self {
        SessionState {
            temps: Arc::new(Mutex::new(TempTables::default())),
            txn: None,
        }
    }
}

impl Default for SessionState {
    fn default() -> Self {
        Self::new()
    }
}
