//! The catalog: durable table metadata, page lists, and stored procedures.
//!
//! The catalog object itself is volatile (rebuilt at recovery); durability
//! comes from checkpoint snapshots plus redo of DDL / page-allocation log
//! records. Table names are case-insensitive (stored lowercased).

use std::collections::HashMap;
use std::sync::Arc;

use bytes::{Buf, BufMut};
use parking_lot::RwLock;

use crate::error::{Error, Result};
use crate::schema::{decode_schema, encode_schema, get_str, put_str, TableId, TableSchema};
use crate::storage::disk::PageId;

/// Metadata for one table: schema plus its heap page list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableMeta {
    /// Catalog-assigned id.
    pub id: TableId,
    /// The table's schema.
    pub schema: TableSchema,
    /// Heap pages, in allocation order.
    pub pages: Vec<PageId>,
}

struct CatInner {
    tables: HashMap<TableId, Arc<RwLock<TableMeta>>>,
    by_name: HashMap<String, TableId>,
    procs: HashMap<String, String>,
    next_table_id: TableId,
}

/// The catalog. Cheap to share (`Arc<Catalog>`); internally locked.
pub struct Catalog {
    inner: RwLock<CatInner>,
}

fn norm(name: &str) -> String {
    name.to_ascii_lowercase()
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog {
            inner: RwLock::new(CatInner {
                tables: HashMap::new(),
                by_name: HashMap::new(),
                procs: HashMap::new(),
                next_table_id: 1,
            }),
        }
    }

    /// Create a table, assigning a fresh id.
    pub fn create_table(&self, schema: TableSchema) -> Result<TableId> {
        let mut inner = self.inner.write();
        let key = norm(&schema.name);
        if inner.by_name.contains_key(&key) {
            return Err(Error::AlreadyExists(format!("table {}", schema.name)));
        }
        let id = inner.next_table_id;
        inner.next_table_id += 1;
        inner.by_name.insert(key, id);
        inner.tables.insert(
            id,
            Arc::new(RwLock::new(TableMeta {
                id,
                schema,
                pages: Vec::new(),
            })),
        );
        Ok(id)
    }

    /// Redo path: recreate a table under a known id. Idempotent.
    pub fn create_table_with_id(&self, id: TableId, schema: TableSchema) {
        let mut inner = self.inner.write();
        let key = norm(&schema.name);
        if inner.tables.contains_key(&id) {
            return;
        }
        inner.next_table_id = inner.next_table_id.max(id + 1);
        inner.by_name.insert(key, id);
        inner.tables.insert(
            id,
            Arc::new(RwLock::new(TableMeta {
                id,
                schema,
                pages: Vec::new(),
            })),
        );
    }

    /// Drop a table by id.
    pub fn drop_table(&self, id: TableId) -> Result<()> {
        let mut inner = self.inner.write();
        let meta = inner
            .tables
            .remove(&id)
            .ok_or_else(|| Error::NotFound(format!("table id {id}")))?;
        let name = norm(&meta.read().schema.name);
        inner.by_name.remove(&name);
        Ok(())
    }

    /// Redo path: drop-if-exists.
    pub fn drop_table_if_exists(&self, id: TableId) {
        let _ = self.drop_table(id);
    }

    /// Look up a table by (case-insensitive) name.
    pub fn resolve(&self, name: &str) -> Option<Arc<RwLock<TableMeta>>> {
        let inner = self.inner.read();
        let id = *inner.by_name.get(&norm(name))?;
        inner.tables.get(&id).cloned()
    }

    /// Look up a table by id.
    pub fn get(&self, id: TableId) -> Option<Arc<RwLock<TableMeta>>> {
        self.inner.read().tables.get(&id).cloned()
    }

    /// Names of all tables (unordered).
    pub fn table_names(&self) -> Vec<String> {
        self.inner
            .read()
            .tables
            .values()
            .map(|t| t.read().schema.name.clone())
            .collect()
    }

    /// Append a page to a table's heap. Idempotent (redo may replay).
    pub fn add_page(&self, table: TableId, page: PageId) -> Result<()> {
        let meta = self
            .get(table)
            .ok_or_else(|| Error::NotFound(format!("table id {table}")))?;
        let mut m = meta.write();
        if !m.pages.contains(&page) {
            m.pages.push(page);
        }
        Ok(())
    }

    // -- stored procedures ---------------------------------------------------

    /// Store a procedure's text.
    pub fn create_proc(&self, name: &str, body: &str, replace: bool) -> Result<()> {
        let mut inner = self.inner.write();
        let key = norm(name);
        if !replace && inner.procs.contains_key(&key) {
            return Err(Error::AlreadyExists(format!("procedure {name}")));
        }
        inner.procs.insert(key, body.to_string());
        Ok(())
    }

    /// Remove a procedure.
    pub fn drop_proc(&self, name: &str) -> Result<()> {
        self.inner
            .write()
            .procs
            .remove(&norm(name))
            .map(|_| ())
            .ok_or_else(|| Error::NotFound(format!("procedure {name}")))
    }

    /// Fetch a procedure's stored text.
    pub fn get_proc(&self, name: &str) -> Option<String> {
        self.inner.read().procs.get(&norm(name)).cloned()
    }

    // -- checkpoint snapshot -------------------------------------------------

    /// Serialize the full catalog for a checkpoint record.
    pub fn snapshot(&self) -> Vec<u8> {
        let inner = self.inner.read();
        let mut out = Vec::new();
        out.put_u32(inner.next_table_id);
        out.put_u32(inner.tables.len() as u32);
        let mut ids: Vec<_> = inner.tables.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let meta = inner.tables[&id].read();
            out.put_u32(meta.id);
            encode_schema(&meta.schema, &mut out);
            out.put_u32(meta.pages.len() as u32);
            for p in &meta.pages {
                out.put_u32(*p);
            }
        }
        out.put_u32(inner.procs.len() as u32);
        let mut names: Vec<_> = inner.procs.keys().cloned().collect();
        names.sort();
        for n in names {
            put_str(&mut out, &n);
            put_str(&mut out, &inner.procs[&n]);
        }
        out
    }

    /// Rebuild a catalog from a checkpoint snapshot.
    pub fn restore(bytes: &[u8]) -> Result<Catalog> {
        let corrupt = || Error::Corruption {
            device: "wal".into(),
            detail: "corrupt catalog snapshot".into(),
        };
        let mut buf = bytes;
        if buf.remaining() < 8 {
            return Err(corrupt());
        }
        let next_table_id = buf.get_u32();
        let ntables = buf.get_u32() as usize;
        let mut tables = HashMap::new();
        let mut by_name = HashMap::new();
        for _ in 0..ntables {
            if buf.remaining() < 4 {
                return Err(corrupt());
            }
            let id = buf.get_u32();
            let schema = decode_schema(&mut buf)?;
            if buf.remaining() < 4 {
                return Err(corrupt());
            }
            let npages = buf.get_u32() as usize;
            let mut pages = Vec::with_capacity(npages);
            for _ in 0..npages {
                if buf.remaining() < 4 {
                    return Err(corrupt());
                }
                pages.push(buf.get_u32());
            }
            by_name.insert(norm(&schema.name), id);
            tables.insert(id, Arc::new(RwLock::new(TableMeta { id, schema, pages })));
        }
        if buf.remaining() < 4 {
            return Err(corrupt());
        }
        let nprocs = buf.get_u32() as usize;
        let mut procs = HashMap::new();
        for _ in 0..nprocs {
            let name = get_str(&mut buf)?;
            let body = get_str(&mut buf)?;
            procs.insert(name, body);
        }
        Ok(Catalog {
            inner: RwLock::new(CatInner {
                tables,
                by_name,
                procs,
                next_table_id,
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::types::DataType;

    fn schema(name: &str) -> TableSchema {
        TableSchema::new(
            name,
            vec![
                Column::new("id", DataType::Int),
                Column::new("v", DataType::Str),
            ],
        )
        .with_primary_key(vec![0])
    }

    #[test]
    fn create_resolve_drop() {
        let cat = Catalog::new();
        let id = cat.create_table(schema("Orders")).unwrap();
        assert!(cat.resolve("ORDERS").is_some());
        assert!(cat.resolve("orders").is_some());
        assert_eq!(cat.resolve("orders").unwrap().read().id, id);
        assert!(cat.create_table(schema("orders")).is_err());
        cat.drop_table(id).unwrap();
        assert!(cat.resolve("orders").is_none());
        assert!(cat.drop_table(id).is_err());
    }

    #[test]
    fn ids_are_unique_after_restore() {
        let cat = Catalog::new();
        let a = cat.create_table(schema("a")).unwrap();
        let snap = cat.snapshot();
        let cat2 = Catalog::restore(&snap).unwrap();
        let b = cat2.create_table(schema("b")).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn add_page_idempotent() {
        let cat = Catalog::new();
        let id = cat.create_table(schema("t")).unwrap();
        cat.add_page(id, 7).unwrap();
        cat.add_page(id, 7).unwrap();
        cat.add_page(id, 9).unwrap();
        assert_eq!(cat.get(id).unwrap().read().pages, vec![7, 9]);
    }

    #[test]
    fn snapshot_round_trip() {
        let cat = Catalog::new();
        let id1 = cat.create_table(schema("t1")).unwrap();
        let id2 = cat.create_table(schema("t2")).unwrap();
        cat.add_page(id1, 3).unwrap();
        cat.add_page(id2, 4).unwrap();
        cat.create_proc("p", "SELECT 1", false).unwrap();

        let snap = cat.snapshot();
        let back = Catalog::restore(&snap).unwrap();
        assert_eq!(
            *back.get(id1).unwrap().read(),
            *cat.get(id1).unwrap().read()
        );
        assert_eq!(
            *back.get(id2).unwrap().read(),
            *cat.get(id2).unwrap().read()
        );
        assert_eq!(back.get_proc("P").unwrap(), "SELECT 1");
    }

    #[test]
    fn create_with_id_idempotent() {
        let cat = Catalog::new();
        cat.create_table_with_id(5, schema("x"));
        cat.create_table_with_id(5, schema("x"));
        assert_eq!(cat.resolve("x").unwrap().read().id, 5);
        // Fresh ids skip past replayed ones.
        let id = cat.create_table(schema("y")).unwrap();
        assert!(id > 5);
    }

    #[test]
    fn proc_lifecycle() {
        let cat = Catalog::new();
        cat.create_proc("advance", "body1", false).unwrap();
        assert!(cat.create_proc("ADVANCE", "body2", false).is_err());
        cat.create_proc("advance", "body2", true).unwrap();
        assert_eq!(cat.get_proc("advance").unwrap(), "body2");
        cat.drop_proc("Advance").unwrap();
        assert!(cat.get_proc("advance").is_none());
    }
}
