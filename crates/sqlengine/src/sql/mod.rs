//! SQL front end: lexer, AST, parser.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{Expr, SelectStmt, Stmt};
pub use parser::{parse_one, parse_statements};
