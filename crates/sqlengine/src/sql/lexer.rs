//! SQL lexer. Produces a token stream with source offsets (the parser
//! slices procedure bodies out of the original text).
//!
//! Token variants are named after their lexemes; per-variant docs would
//! repeat the names.
#![allow(missing_docs)]

use crate::error::{Error, Result};

#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords are matched case-insensitively by
    /// the parser against the identifier text).
    Ident(String),
    /// `@name` parameter reference.
    Param(String),
    /// `#name` temp-table identifier (kept distinct so the engine can
    /// route it to session-local storage).
    TempIdent(String),
    Int(i64),
    Float(f64),
    Str(String),
    // punctuation
    LParen,
    RParen,
    Comma,
    Semi,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    Dot,
    Eof,
}

#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    /// Byte offset of the token start in the source text.
    pub start: usize,
}

pub fn lex(src: &str) -> Result<Vec<Token>> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        let start = i;
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'-' if i + 1 < b.len() && b[i + 1] == b'-' => {
                // line comment
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                i += 2;
                while i + 1 < b.len() && !(b[i] == b'*' && b[i + 1] == b'/') {
                    i += 1;
                }
                if i + 1 >= b.len() {
                    return Err(Error::Syntax("unterminated block comment".into()));
                }
                i += 2;
            }
            b'\'' => {
                // string literal with '' escape
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= b.len() {
                        return Err(Error::Syntax("unterminated string literal".into()));
                    }
                    if b[i] == b'\'' {
                        if i + 1 < b.len() && b[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(b[i] as char);
                        i += 1;
                    }
                }
                toks.push(Token {
                    tok: Tok::Str(s),
                    start,
                });
            }
            b'0'..=b'9' => {
                let mut j = i;
                let mut is_float = false;
                while j < b.len() && (b[j].is_ascii_digit()) {
                    j += 1;
                }
                if j < b.len() && b[j] == b'.' && j + 1 < b.len() && b[j + 1].is_ascii_digit() {
                    is_float = true;
                    j += 1;
                    while j < b.len() && b[j].is_ascii_digit() {
                        j += 1;
                    }
                }
                if j < b.len() && (b[j] == b'e' || b[j] == b'E') {
                    let mut k = j + 1;
                    if k < b.len() && (b[k] == b'+' || b[k] == b'-') {
                        k += 1;
                    }
                    if k < b.len() && b[k].is_ascii_digit() {
                        is_float = true;
                        j = k;
                        while j < b.len() && b[j].is_ascii_digit() {
                            j += 1;
                        }
                    }
                }
                let text = &src[i..j];
                let tok = if is_float {
                    Tok::Float(
                        text.parse()
                            .map_err(|_| Error::Syntax(format!("bad number '{text}'")))?,
                    )
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => Tok::Int(v),
                        Err(_) => Tok::Float(
                            text.parse()
                                .map_err(|_| Error::Syntax(format!("bad number '{text}'")))?,
                        ),
                    }
                };
                toks.push(Token { tok, start });
                i = j;
            }
            b'@' | b'#' => {
                let mut j = i + 1;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                if j == i + 1 {
                    return Err(Error::Syntax(format!(
                        "dangling '{}' at byte {i}",
                        c as char
                    )));
                }
                let name = src[i + 1..j].to_string();
                toks.push(Token {
                    tok: if c == b'@' {
                        Tok::Param(name)
                    } else {
                        Tok::TempIdent(name)
                    },
                    start,
                });
                i = j;
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                toks.push(Token {
                    tok: Tok::Ident(src[i..j].to_string()),
                    start,
                });
                i = j;
            }
            b'[' => {
                // bracket-quoted identifier (T-SQL style)
                let mut j = i + 1;
                while j < b.len() && b[j] != b']' {
                    j += 1;
                }
                if j >= b.len() {
                    return Err(Error::Syntax("unterminated [identifier]".into()));
                }
                toks.push(Token {
                    tok: Tok::Ident(src[i + 1..j].to_string()),
                    start,
                });
                i = j + 1;
            }
            b'(' => {
                toks.push(Token {
                    tok: Tok::LParen,
                    start,
                });
                i += 1;
            }
            b')' => {
                toks.push(Token {
                    tok: Tok::RParen,
                    start,
                });
                i += 1;
            }
            b',' => {
                toks.push(Token {
                    tok: Tok::Comma,
                    start,
                });
                i += 1;
            }
            b';' => {
                toks.push(Token {
                    tok: Tok::Semi,
                    start,
                });
                i += 1;
            }
            b'*' => {
                toks.push(Token {
                    tok: Tok::Star,
                    start,
                });
                i += 1;
            }
            b'+' => {
                toks.push(Token {
                    tok: Tok::Plus,
                    start,
                });
                i += 1;
            }
            b'-' => {
                toks.push(Token {
                    tok: Tok::Minus,
                    start,
                });
                i += 1;
            }
            b'/' => {
                toks.push(Token {
                    tok: Tok::Slash,
                    start,
                });
                i += 1;
            }
            b'%' => {
                toks.push(Token {
                    tok: Tok::Percent,
                    start,
                });
                i += 1;
            }
            b'.' => {
                toks.push(Token {
                    tok: Tok::Dot,
                    start,
                });
                i += 1;
            }
            b'=' => {
                toks.push(Token {
                    tok: Tok::Eq,
                    start,
                });
                i += 1;
            }
            b'!' if i + 1 < b.len() && b[i + 1] == b'=' => {
                toks.push(Token {
                    tok: Tok::Neq,
                    start,
                });
                i += 2;
            }
            b'<' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    toks.push(Token {
                        tok: Tok::Le,
                        start,
                    });
                    i += 2;
                } else if i + 1 < b.len() && b[i + 1] == b'>' {
                    toks.push(Token {
                        tok: Tok::Neq,
                        start,
                    });
                    i += 2;
                } else {
                    toks.push(Token {
                        tok: Tok::Lt,
                        start,
                    });
                    i += 1;
                }
            }
            b'>' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    toks.push(Token {
                        tok: Tok::Ge,
                        start,
                    });
                    i += 2;
                } else {
                    toks.push(Token {
                        tok: Tok::Gt,
                        start,
                    });
                    i += 1;
                }
            }
            other => {
                return Err(Error::Syntax(format!(
                    "unexpected character '{}' at byte {i}",
                    other as char
                )))
            }
        }
    }
    toks.push(Token {
        tok: Tok::Eof,
        start: src.len(),
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_select() {
        let t = kinds("SELECT a, b FROM t WHERE a >= 10.5");
        assert_eq!(
            t,
            vec![
                Tok::Ident("SELECT".into()),
                Tok::Ident("a".into()),
                Tok::Comma,
                Tok::Ident("b".into()),
                Tok::Ident("FROM".into()),
                Tok::Ident("t".into()),
                Tok::Ident("WHERE".into()),
                Tok::Ident("a".into()),
                Tok::Ge,
                Tok::Float(10.5),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds("'it''s'"), vec![Tok::Str("it's".into()), Tok::Eof]);
        assert!(lex("'open").is_err());
    }

    #[test]
    fn params_and_temp_idents() {
        assert_eq!(
            kinds("@p1 #tmp"),
            vec![
                Tok::Param("p1".into()),
                Tok::TempIdent("tmp".into()),
                Tok::Eof
            ]
        );
        assert!(lex("@ x").is_err());
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("a -- comment\n b /* block */ c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
        assert!(lex("/* open").is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("<> != <= >= < > ="),
            vec![
                Tok::Neq,
                Tok::Neq,
                Tok::Le,
                Tok::Ge,
                Tok::Lt,
                Tok::Gt,
                Tok::Eq,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("1 2.5 1e3 0.001"),
            vec![
                Tok::Int(1),
                Tok::Float(2.5),
                Tok::Float(1000.0),
                Tok::Float(0.001),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn bracket_identifiers() {
        assert_eq!(
            kinds("[order line]"),
            vec![Tok::Ident("order line".into()), Tok::Eof]
        );
    }

    #[test]
    fn offsets_track_source() {
        let toks = lex("SELECT x").unwrap();
        assert_eq!(toks[0].start, 0);
        assert_eq!(toks[1].start, 7);
    }
}
